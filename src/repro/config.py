"""Runtime configuration: every ``REPRO_*`` knob resolved in one place.

Historically each subsystem consulted its own environment variable at its own
call site — ``REPRO_KERNEL`` in :mod:`repro.kernels`, ``REPRO_INDEX`` in
:mod:`repro.index.registry`, ``REPRO_FRAME`` in :mod:`repro.data.columns`,
``REPRO_WORKERS``/``REPRO_MERGE`` in :mod:`repro.parallel.executor` and
``REPRO_BENCH_PROFILE`` in :mod:`repro.bench.runner`.  The resolvers now live
here, all following the same precedence:

    explicit argument  >  CLI flag  >  ``REPRO_*`` environment variable  >  default

The old import paths (``repro.data.columns.resolve_frame_mode``,
``repro.parallel.executor.resolve_workers`` / ``resolve_merge_strategy``)
remain as thin deprecation shims delegating to this module, and the env-var
name constants are re-exported from their historical homes.

:class:`RuntimeConfig` bundles one resolved choice of every knob — kernel,
spatial index, frame mode, workers, shards, partitioner, merge strategy, and
the storage-plane knobs (store path + mmap mode) — as a frozen dataclass, so
a whole engine/service construction can be described, logged and forwarded as
a single value.  The public facade (:mod:`repro.api`) and the CLI build their
engines through it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any

from repro.exceptions import ExperimentError

__all__ = [
    "BENCH_PROFILE_ENV_VAR",
    "COMPACT_THRESHOLD_ENV_VAR",
    "CRC_ENV_VAR",
    "CRC_MODES",
    "DEFAULT_COMPACT_THRESHOLD",
    "FAULTS_ENV_VAR",
    "FRAME_ENV_VAR",
    "INDEX_ENV_VAR",
    "KERNEL_ENV_VAR",
    "MERGE_ENV_VAR",
    "MERGE_STRATEGIES",
    "MMAP_ENV_VAR",
    "STORE_ENV_VAR",
    "WORKERS_ENV_VAR",
    "RuntimeConfig",
    "env_text",
    "resolve_compact_threshold",
    "resolve_crc_mode",
    "resolve_faults",
    "resolve_frame_mode",
    "resolve_merge_strategy",
    "resolve_mmap_mode",
    "resolve_workers",
]

#: Environment variable selecting the dominance kernel backend.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Environment variable selecting the spatial index backend.
INDEX_ENV_VAR = "REPRO_INDEX"

#: Environment variable selecting the columnar frame data plane.
FRAME_ENV_VAR = "REPRO_FRAME"

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment variable selecting the cross-shard merge strategy.
MERGE_ENV_VAR = "REPRO_MERGE"

#: Environment variable selecting the benchmark parameter grid.
BENCH_PROFILE_ENV_VAR = "REPRO_BENCH_PROFILE"

#: Environment variable naming a packed dataset store to open.
STORE_ENV_VAR = "REPRO_STORE"

#: Environment variable selecting mmap vs. load for packed stores.
MMAP_ENV_VAR = "REPRO_MMAP"

#: Environment variable setting the delta-plane auto-compaction threshold.
COMPACT_THRESHOLD_ENV_VAR = "REPRO_COMPACT_THRESHOLD"

#: Environment variable selecting eager vs. lazy store checksum verification.
CRC_ENV_VAR = "REPRO_CRC"

#: Environment variable carrying a fault-injection spec (see :mod:`repro.faults`).
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: The recognized cross-shard merge strategies.
MERGE_STRATEGIES = ("sort-merge", "all-pairs")

#: The recognized store checksum-verification modes.
CRC_MODES = ("eager", "lazy")

#: Pending mutations (inserts + tombstoned deletes) that trigger an automatic
#: delta-plane compaction; ``0`` (or any value ``<= 0``) disables auto-compaction.
DEFAULT_COMPACT_THRESHOLD = 8192

_TRUE_WORDS = frozenset({"1", "true", "on", "yes"})
_FALSE_WORDS = frozenset({"0", "false", "off", "no"})


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def env_text(variable: str) -> str | None:
    """The raw value of one environment knob, or ``None`` when unset/blank.

    The single ``os.environ`` gateway of the library: every ``REPRO_*`` read
    funnels through here so the precedence rules live in one module.
    """
    raw = os.environ.get(variable)
    if raw is None or not raw.strip():
        return None
    return raw


def resolve_workers(workers: int | str | None = None) -> int:
    """Coerce a worker-count argument (int, string, or ``None`` for the env).

    ``0`` means in-process execution (no pool); ``None`` falls back to the
    ``REPRO_WORKERS`` environment variable, else ``0``.
    """
    source = ""
    if workers is None:
        raw = env_text(WORKERS_ENV_VAR)
        if raw is None:
            return 0
        workers = raw
        source = f" (from the {WORKERS_ENV_VAR} environment variable)"
    try:
        count = int(workers)
    except (TypeError, ValueError):
        raise ExperimentError(
            f"worker count must be an integer, got {workers!r}{source}"
        ) from None
    if count < 0:
        raise ExperimentError(f"worker count must be >= 0, got {count}{source}")
    return count


def resolve_merge_strategy(strategy: str | None = None) -> str:
    """Coerce a merge-strategy argument (``None`` falls back to the env).

    Mirrors :func:`resolve_workers`: an explicit value wins, ``None``
    consults the ``REPRO_MERGE`` environment variable, and the default is
    ``"sort-merge"``.
    """
    source = ""
    if strategy is None:
        raw = env_text(MERGE_ENV_VAR)
        if raw is None:
            return MERGE_STRATEGIES[0]
        strategy = raw
        source = f" (from the {MERGE_ENV_VAR} environment variable)"
    strategy = str(strategy).strip().lower()
    if strategy not in MERGE_STRATEGIES:
        raise ExperimentError(
            f"merge strategy must be one of {', '.join(MERGE_STRATEGIES)}; "
            f"got {strategy!r}{source}"
        )
    return strategy


def _resolve_switch(
    mode: bool | str | None, variable: str, *, default: bool, what: str
) -> bool:
    """Shared on/off resolver: explicit bool > env words > ``default``."""
    source = ""
    if mode is None:
        raw = env_text(variable)
        if raw is None:
            return default
        mode = raw
        source = f" (from the {variable} environment variable)"
    if isinstance(mode, bool):
        return mode
    word = str(mode).strip().lower()
    if word in _TRUE_WORDS:
        return True
    if word in _FALSE_WORDS:
        return False
    raise ExperimentError(
        f"{what} must be one of {sorted(_TRUE_WORDS | _FALSE_WORDS)}; "
        f"got {mode!r}{source}"
    )


def resolve_frame_mode(mode: bool | str | None = None) -> bool:
    """Coerce a frame-mode argument (``None`` falls back to the env).

    An explicit boolean wins; ``None`` consults the ``REPRO_FRAME``
    environment variable (``1/true/on/yes`` or ``0/false/off/no``); unset,
    the columnar path is on exactly when NumPy is importable (forcing it on
    without NumPy uses the tuple-backed fallback columns).
    """
    return _resolve_switch(
        mode, FRAME_ENV_VAR, default=_numpy_available(), what="frame mode"
    )


def resolve_mmap_mode(mode: bool | str | None = None) -> bool:
    """Coerce the store mmap/load switch (``None`` falls back to the env).

    ``True`` memory-maps a packed store's arrays zero-copy (requires NumPy);
    ``False`` loads them into process memory.  Default: mmap exactly when
    NumPy is importable — the tuple backend always loads.
    """
    return _resolve_switch(
        mode, MMAP_ENV_VAR, default=_numpy_available(), what="store mmap mode"
    )


def resolve_compact_threshold(threshold: int | str | None = None) -> int:
    """Coerce the delta-plane auto-compaction threshold.

    An explicit value wins; ``None`` consults the ``REPRO_COMPACT_THRESHOLD``
    environment variable, else :data:`DEFAULT_COMPACT_THRESHOLD`.  Values
    ``<= 0`` disable automatic compaction (explicit ``compact()`` still works)
    and are normalized to ``0``.
    """
    source = ""
    if threshold is None:
        raw = env_text(COMPACT_THRESHOLD_ENV_VAR)
        if raw is None:
            return DEFAULT_COMPACT_THRESHOLD
        threshold = raw
        source = f" (from the {COMPACT_THRESHOLD_ENV_VAR} environment variable)"
    try:
        value = int(threshold)
    except (TypeError, ValueError):
        raise ExperimentError(
            f"compaction threshold must be an integer, got {threshold!r}{source}"
        ) from None
    return max(0, value)


def resolve_crc_mode(mode: str | None = None) -> str:
    """Coerce the store checksum-verification mode.

    ``"eager"`` verifies every section checksum at :meth:`DatasetStore.open`;
    ``"lazy"`` defers each section's checksum to its first touch, pushing
    replica cold start below the CRC pass.  ``None`` consults ``REPRO_CRC``,
    else the default is ``"eager"``.
    """
    source = ""
    if mode is None:
        raw = env_text(CRC_ENV_VAR)
        if raw is None:
            return CRC_MODES[0]
        mode = raw
        source = f" (from the {CRC_ENV_VAR} environment variable)"
    mode = str(mode).strip().lower()
    if mode not in CRC_MODES:
        raise ExperimentError(
            f"crc mode must be one of {', '.join(CRC_MODES)}; got {mode!r}{source}"
        )
    return mode


def resolve_faults(spec: str | None = None) -> str | None:
    """Coerce a fault-injection spec (``None`` falls back to ``REPRO_FAULTS``).

    Returns the validated spec string (or ``None`` when fault injection is
    off).  Validation delegates to :func:`repro.faults.parse_faults_spec`,
    which raises :class:`~repro.exceptions.ExperimentError` on malformed
    clauses — so a typo in ``REPRO_FAULTS`` fails loudly at resolve time
    instead of silently running fault-free.
    """
    source = ""
    if spec is None:
        spec = env_text(FAULTS_ENV_VAR)
        if spec is None:
            return None
        source = f" (from the {FAULTS_ENV_VAR} environment variable)"
    spec = spec.strip()
    if not spec:
        return None
    from repro.faults.registry import parse_faults_spec

    try:
        parse_faults_spec(spec)
    except ExperimentError as error:
        raise ExperimentError(f"{error}{source}") from None
    return spec


def env_kernel_name() -> str | None:
    """The ``REPRO_KERNEL`` override, or ``None`` (kernel registry hook)."""
    return env_text(KERNEL_ENV_VAR)


def env_index_name() -> str | None:
    """The ``REPRO_INDEX`` override, or ``None`` (index registry hook)."""
    return env_text(INDEX_ENV_VAR)


def env_store_path() -> str | None:
    """The ``REPRO_STORE`` default store path, or ``None``."""
    return env_text(STORE_ENV_VAR)


def env_bench_profile(variable: str = BENCH_PROFILE_ENV_VAR) -> str | None:
    """The requested benchmark profile name, or ``None`` when unset."""
    return env_text(variable)


@dataclass(frozen=True)
class RuntimeConfig:
    """One fully resolved choice of every runtime knob.

    Built with :meth:`resolve`, which applies the library-wide precedence
    (explicit argument > env var > default) to each field in one shot.
    ``kernel`` and ``index`` stay as *requested names* (``None`` = process
    default) because their availability checks live in the kernel/index
    registries; everything else is resolved to its final value.
    """

    kernel: str | None = None
    index: str | None = None
    frame: bool = True
    workers: int = 0
    shards: int | None = None
    partitioner: str = "round-robin"
    merge: str = "sort-merge"
    prefilter: bool = True
    cache_size: int | None = None
    max_entries: int = 32
    store: str | None = None
    mmap: bool = True
    crc: str = "eager"
    compact_threshold: int = DEFAULT_COMPACT_THRESHOLD
    faults: str | None = None

    @classmethod
    def resolve(
        cls,
        *,
        kernel: str | None = None,
        index: str | None = None,
        frame: bool | str | None = None,
        workers: int | str | None = None,
        shards: int | None = None,
        partitioner: str = "round-robin",
        merge: str | None = None,
        prefilter: bool = True,
        cache_size: int | None = None,
        max_entries: int = 32,
        store: str | os.PathLike[str] | None = None,
        mmap: bool | str | None = None,
        crc: str | None = None,
        compact_threshold: int | str | None = None,
        faults: str | None = None,
    ) -> "RuntimeConfig":
        """Resolve every knob: explicit arguments win, then ``REPRO_*`` vars,
        then defaults.  Raises :class:`~repro.exceptions.ExperimentError` on
        malformed values (naming the env var when it was the source)."""
        if store is None:
            store = env_store_path()
        return cls(
            kernel=kernel if kernel is not None else env_kernel_name(),
            index=index if index is not None else env_index_name(),
            frame=resolve_frame_mode(frame),
            workers=resolve_workers(workers),
            shards=shards,
            partitioner=partitioner,
            merge=resolve_merge_strategy(merge),
            prefilter=prefilter,
            cache_size=cache_size,
            max_entries=max_entries,
            store=None if store is None else os.fspath(store),
            mmap=resolve_mmap_mode(mmap),
            crc=resolve_crc_mode(crc),
            compact_threshold=resolve_compact_threshold(compact_threshold),
            faults=resolve_faults(faults),
        )

    def install_faults(self) -> None:
        """Install this config's fault spec into :mod:`repro.faults`.

        A no-op when :attr:`faults` is ``None`` (the registry keeps lazily
        resolving ``REPRO_FAULTS`` itself), so config-built engines without an
        explicit spec behave identically to direct construction.
        """
        if self.faults is not None:
            from repro.faults.registry import install

            install(self.faults)

    def with_overrides(self, **changes: Any) -> "RuntimeConfig":
        """A copy with the given fields replaced (facade keyword overrides)."""
        return replace(self, **changes)

    def engine_options(self) -> dict[str, Any]:
        """Keyword arguments for :class:`~repro.engine.batch.BatchQueryEngine`."""
        options: dict[str, Any] = {
            "kernel": self.kernel,
            "index": self.index,
            "use_frame": self.frame,
            "workers": self.workers,
            "num_shards": self.shards,
            "partitioner": self.partitioner,
            "merge_strategy": self.merge,
            "prefilter": self.prefilter,
            "max_entries": self.max_entries,
            "mmap": self.mmap,
            "crc": self.crc,
            "compact_threshold": self.compact_threshold,
        }
        if self.cache_size is not None:
            options["cache_size"] = self.cache_size
        return options
