"""Named, reproducible workload specifications mirroring the paper's grid.

Table III of the paper lists the experimental parameters:

==============================  =============================
Parameter                        Range
==============================  =============================
Data cardinality (N)             100K, 500K, 1M, 5M, 10M
Number of TO attributes (|TO|)   2, 3, 4
Number of PO attributes (|PO|)   1, 2
DAG height (h)                   2, 4, 6, 8, 10
DAG density (d)                  0.2, 0.4, 0.6, 0.8, 1
==============================  =============================

Defaults (static): N = 1M, |TO| = 2, |PO| = 2, h = 8, d = 0.8.
Defaults (dynamic): N = 1M, |TO| = 3, |PO| = 1, h = 6, d = 0.8.

A pure-Python reproduction cannot run million-tuple experiments inside a
benchmark suite, so :func:`scale_cardinality` maps the paper's cardinalities
onto a laptop-scale grid while preserving their relative proportions; the
original values remain available by constructing :class:`WorkloadSpec`
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.data.dataset import Dataset
from repro.data.generator import generate_dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.exceptions import ExperimentError
from repro.order.dag import PartialOrderDAG
from repro.order.lattice import lattice_domain

#: Paper parameter ranges (Table III).
PAPER_CARDINALITIES = (100_000, 500_000, 1_000_000, 5_000_000, 10_000_000)
PAPER_TO_COUNTS = (2, 3, 4)
PAPER_PO_COUNTS = (1, 2)
PAPER_DAG_HEIGHTS = (2, 4, 6, 8, 10)
PAPER_DAG_DENSITIES = (0.2, 0.4, 0.6, 0.8, 1.0)

#: Scale factor applied by :func:`scale_cardinality` (paper N / this factor).
DEFAULT_SCALE_FACTOR = 500


def scale_cardinality(paper_cardinality: int, scale_factor: int = DEFAULT_SCALE_FACTOR) -> int:
    """Map a paper-scale cardinality to a laptop-scale one, preserving ratios."""
    if paper_cardinality <= 0 or scale_factor <= 0:
        raise ExperimentError("cardinality and scale factor must be positive")
    return max(50, paper_cardinality // scale_factor)


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully specified synthetic workload (schema + data parameters)."""

    name: str
    distribution: str = "independent"
    cardinality: int = 2000
    num_total_order: int = 2
    num_partial_order: int = 2
    dag_height: int = 8
    dag_density: float = 0.8
    to_domain_size: int = 10_000
    seed: int = 7
    lattice_seeds: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.num_total_order < 0 or self.num_partial_order < 0:
            raise ExperimentError("attribute counts must be non-negative")
        if self.num_total_order + self.num_partial_order == 0:
            raise ExperimentError("a workload needs at least one attribute")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def build_dags(self) -> list[PartialOrderDAG]:
        """One sampled subset-lattice DAG per PO attribute."""
        seeds = self.lattice_seeds or tuple(
            self.seed * 1000 + i for i in range(self.num_partial_order)
        )
        if len(seeds) != self.num_partial_order:
            raise ExperimentError("lattice_seeds must have one entry per PO attribute")
        return [
            lattice_domain(self.dag_height, self.dag_density, seed=seed)
            for seed in seeds
        ]

    def build_schema(self, dags: list[PartialOrderDAG] | None = None) -> Schema:
        """The workload's schema: TO attributes first, then PO attributes."""
        dags = dags if dags is not None else self.build_dags()
        attributes: list[TotalOrderAttribute | PartialOrderAttribute] = [
            TotalOrderAttribute(f"to{i + 1}") for i in range(self.num_total_order)
        ]
        attributes.extend(
            PartialOrderAttribute(f"po{i + 1}", dag) for i, dag in enumerate(dags)
        )
        return Schema(attributes)

    def build(self) -> tuple[Schema, Dataset]:
        """Materialize the workload: schema plus generated dataset."""
        schema = self.build_schema()
        dataset = generate_dataset(
            schema,
            self.cardinality,
            distribution=self.distribution,
            to_domain_size=self.to_domain_size,
            seed=self.seed,
        )
        return schema, dataset

    # ------------------------------------------------------------------ #
    # Variation helpers used by the experiment sweeps
    # ------------------------------------------------------------------ #
    def with_(self, **changes) -> "WorkloadSpec":
        """A copy of the spec with some parameters replaced."""
        return replace(self, **changes)

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "distribution": self.distribution,
            "N": self.cardinality,
            "|TO|": self.num_total_order,
            "|PO|": self.num_partial_order,
            "h": self.dag_height,
            "d": self.dag_density,
            "seed": self.seed,
        }


def paper_defaults(
    *,
    distribution: str = "independent",
    dynamic: bool = False,
    scale_factor: int = DEFAULT_SCALE_FACTOR,
    seed: int = 7,
) -> WorkloadSpec:
    """The paper's default setting, scaled to laptop size.

    Static experiments default to ``N=1M, |TO|=2, |PO|=2, h=8, d=0.8``;
    dynamic experiments to ``N=1M, |TO|=3, |PO|=1, h=6, d=0.8``.
    """
    cardinality = scale_cardinality(1_000_000, scale_factor)
    if dynamic:
        return WorkloadSpec(
            name=f"paper-dynamic-{distribution}",
            distribution=distribution,
            cardinality=cardinality,
            num_total_order=3,
            num_partial_order=1,
            dag_height=6,
            dag_density=0.8,
            seed=seed,
        )
    return WorkloadSpec(
        name=f"paper-static-{distribution}",
        distribution=distribution,
        cardinality=cardinality,
        num_total_order=2,
        num_partial_order=2,
        dag_height=8,
        dag_density=0.8,
        seed=seed,
    )
