"""Schemas mixing totally ordered and partially ordered attributes.

A skyline query's criteria are described by a :class:`Schema`: an ordered list
of attributes, each either

* a :class:`TotalOrderAttribute` — numeric, with ``best="min"`` (the paper's
  convention: smaller is better, e.g. price, stops) or ``best="max"``; or
* a :class:`PartialOrderAttribute` — categorical, with preferences given by a
  :class:`~repro.order.dag.PartialOrderDAG` (e.g. airlines, set-valued
  attributes, hierarchies).

The schema knows how to *canonicalize* TO values so that, internally, every
algorithm can assume "smaller is better" on every totally ordered dimension.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import cast

from repro.exceptions import SchemaError
from repro.order.dag import PartialOrderDAG

Value = Hashable


@dataclass(frozen=True, slots=True)
class TotalOrderAttribute:
    """A totally ordered (numeric) skyline attribute."""

    name: str
    best: str = "min"

    def __post_init__(self) -> None:
        if self.best not in ("min", "max"):
            raise SchemaError(f"attribute {self.name!r}: best must be 'min' or 'max'")

    @property
    def is_partial(self) -> bool:
        return False

    def canonical(self, value: float) -> float:
        """Map the value so that smaller is always better."""
        return float(value) if self.best == "min" else -float(value)


@dataclass(frozen=True, slots=True)
class PartialOrderAttribute:
    """A partially ordered skyline attribute with an explicit preference DAG."""

    name: str
    dag: PartialOrderDAG = field(compare=False)

    @property
    def is_partial(self) -> bool:
        return True

    @property
    def domain(self) -> tuple[Value, ...]:
        return self.dag.values

    def validate(self, value: Value) -> None:
        if value not in self.dag:
            raise SchemaError(f"value {value!r} not in the domain of PO attribute {self.name!r}")


Attribute = TotalOrderAttribute | PartialOrderAttribute


class Schema:
    """An ordered collection of skyline attributes.

    Attribute order is significant: datasets store record values in the same
    order, and the mapped space used by every algorithm lists the totally
    ordered dimensions first followed by one (TSS) or two (baselines) mapped
    dimensions per partially ordered attribute.
    """

    __slots__ = ("_attributes", "_by_name")

    def __init__(self, attributes: Sequence[Attribute]) -> None:
        if not attributes:
            raise SchemaError("a schema needs at least one attribute")
        names = [attribute.name for attribute in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self._attributes: tuple[Attribute, ...] = tuple(attributes)
        self._by_name: dict[str, int] = {a.name: i for i, a in enumerate(attributes)}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, name: str) -> Attribute:
        return self._attributes[self.position(name)]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ", ".join(
            f"{a.name}:{'PO' if a.is_partial else 'TO'}" for a in self._attributes
        )
        return f"Schema({kinds})"

    def position(self, name: str) -> int:
        """Index of an attribute in the record layout."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SchemaError(f"unknown attribute {name!r}") from exc

    # ------------------------------------------------------------------ #
    # TO / PO views
    # ------------------------------------------------------------------ #
    @property
    def total_order_attributes(self) -> tuple[TotalOrderAttribute, ...]:
        return tuple(a for a in self._attributes if not a.is_partial)

    @property
    def partial_order_attributes(self) -> tuple[PartialOrderAttribute, ...]:
        return tuple(a for a in self._attributes if a.is_partial)

    @property
    def total_order_positions(self) -> tuple[int, ...]:
        return tuple(i for i, a in enumerate(self._attributes) if not a.is_partial)

    @property
    def partial_order_positions(self) -> tuple[int, ...]:
        return tuple(i for i, a in enumerate(self._attributes) if a.is_partial)

    @property
    def num_total_order(self) -> int:
        return len(self.total_order_positions)

    @property
    def num_partial_order(self) -> int:
        return len(self.partial_order_positions)

    # ------------------------------------------------------------------ #
    # Validation and canonicalization
    # ------------------------------------------------------------------ #
    def validate_row(self, row: Sequence[Value]) -> None:
        """Raise :class:`SchemaError` if ``row`` does not conform to the schema."""
        if len(row) != len(self._attributes):
            raise SchemaError(
                f"row has {len(row)} values but the schema has {len(self._attributes)} attributes"
            )
        for attribute, value in zip(self._attributes, row):
            if isinstance(attribute, PartialOrderAttribute):
                attribute.validate(value)
            else:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise SchemaError(
                        f"attribute {attribute.name!r} expects a number, got {value!r}"
                    )

    def canonical_to_values(self, row: Sequence[Value]) -> tuple[float, ...]:
        """The totally ordered values of ``row``, mapped so smaller is better."""
        return tuple(
            cast(TotalOrderAttribute, self._attributes[i]).canonical(cast(float, row[i]))
            for i in self.total_order_positions
        )

    def partial_values(self, row: Sequence[Value]) -> tuple[Value, ...]:
        """The partially ordered values of ``row`` in schema order."""
        return tuple(row[i] for i in self.partial_order_positions)

    def replace_partial_order(
        self, replacements: dict[str, PartialOrderDAG]
    ) -> "Schema":
        """Return a schema with the DAGs of some PO attributes replaced.

        Used by dynamic skyline queries, which re-specify preferences per
        query while the underlying data stays the same.
        """
        attributes: list[Attribute] = []
        unknown = set(replacements) - {a.name for a in self.partial_order_attributes}
        if unknown:
            raise SchemaError(f"cannot replace partial order of non-PO attributes: {sorted(unknown)}")
        for attribute in self._attributes:
            if attribute.is_partial and attribute.name in replacements:
                attributes.append(
                    PartialOrderAttribute(attribute.name, replacements[attribute.name])
                )
            else:
                attributes.append(attribute)
        return Schema(attributes)


def make_schema(
    total_order: Iterable[str | TotalOrderAttribute] = (),
    partial_order: Iterable[tuple[str, PartialOrderDAG] | PartialOrderAttribute] = (),
) -> Schema:
    """Convenience constructor: TO attributes first, then PO attributes."""
    attributes: list[Attribute] = []
    for spec in total_order:
        attributes.append(spec if isinstance(spec, TotalOrderAttribute) else TotalOrderAttribute(spec))
    for spec in partial_order:
        if isinstance(spec, PartialOrderAttribute):
            attributes.append(spec)
        else:
            name, dag = spec
            attributes.append(PartialOrderAttribute(name, dag))
    return Schema(attributes)
