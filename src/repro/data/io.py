"""Loading and saving datasets as CSV files.

Real deployments rarely start from a synthetic generator: the relation lives
in a CSV export and the preference DAGs are specified separately.  These
helpers read/write datasets against an existing :class:`~repro.data.schema.Schema`
(TO columns are parsed as numbers, PO columns are validated against their
domains) and can round-trip the preference DAGs themselves through a simple
edge-list format.
"""

from __future__ import annotations

import csv
from collections.abc import Hashable, Iterable
from pathlib import Path

from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.exceptions import DatasetError, PartialOrderError
from repro.order.dag import PartialOrderDAG

Value = Hashable


def load_csv_dataset(
    path: str | Path,
    schema: Schema,
    *,
    delimiter: str = ",",
    validate: bool = True,
) -> Dataset:
    """Load a CSV file with a header row into a schema-conforming dataset.

    The header must contain every schema attribute (extra columns are
    ignored).  Totally ordered columns are parsed as ``int`` when possible and
    ``float`` otherwise; partially ordered cells are matched against the
    attribute's domain — directly, or by string representation for domains of
    non-string values (e.g. integer lattice levels), so a dataset round-trips
    through :func:`save_csv_dataset` unchanged.  Unmatched PO cells are kept
    verbatim and rejected by validation unless ``validate=False``.
    """
    path = Path(path)
    by_text = {
        attribute.name: {str(value): value for value in attribute.domain}
        for attribute in schema.attributes
        if attribute.is_partial
    }
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise DatasetError(f"{path}: empty CSV file")
        missing = [name for name in schema.names if name not in reader.fieldnames]
        if missing:
            raise DatasetError(f"{path}: missing columns {missing}")
        rows = []
        for line_number, raw in enumerate(reader, start=2):
            row: list[Value] = []
            for attribute in schema.attributes:
                cell = raw[attribute.name]
                if attribute.is_partial:
                    row.append(by_text[attribute.name].get(cell, cell))
                else:
                    row.append(_parse_number(cell, attribute.name, path, line_number))
            rows.append(tuple(row))
    return Dataset(schema, rows, validate=validate)


def save_csv_dataset(dataset: Dataset, path: str | Path, *, delimiter: str = ",") -> None:
    """Write a dataset (with a header row) to a CSV file."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(dataset.schema.names)
        for record in dataset.records:
            writer.writerow(record.values)


def _parse_number(cell: str, column: str, path: Path, line_number: int) -> float | int:
    text = cell.strip()
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError as exc:
            raise DatasetError(
                f"{path}:{line_number}: column {column!r} expects a number, got {cell!r}"
            ) from exc


# --------------------------------------------------------------------- #
# Preference DAGs as edge lists
# --------------------------------------------------------------------- #
def load_preference_edges(path: str | Path, *, delimiter: str = ",") -> PartialOrderDAG:
    """Load a preference DAG from a two-column ``better,worse`` CSV edge list.

    Lines starting with ``#`` are comments.  Single-column lines declare an
    isolated value (useful for values with no preferences at all).
    """
    path = Path(path)
    values: list[Value] = []
    seen: set[Value] = set()
    edges: list[tuple[Value, Value]] = []

    def remember(value: str) -> None:
        if value not in seen:
            seen.add(value)
            values.append(value)

    with path.open(newline="", encoding="utf-8") as handle:
        for line_number, raw in enumerate(csv.reader(handle, delimiter=delimiter), start=1):
            cells = [cell.strip() for cell in raw if cell.strip()]
            if not cells or cells[0].startswith("#"):
                continue
            if len(cells) == 1:
                remember(cells[0])
            elif len(cells) == 2:
                remember(cells[0])
                remember(cells[1])
                edges.append((cells[0], cells[1]))
            else:
                raise PartialOrderError(
                    f"{path}:{line_number}: expected 'better,worse' or a single value, got {raw!r}"
                )
    return PartialOrderDAG(values, edges)


def save_preference_edges(dag: PartialOrderDAG, path: str | Path, *, delimiter: str = ",") -> None:
    """Write a preference DAG as a ``better,worse`` edge list (isolated values as single cells)."""
    path = Path(path)
    connected = {value for edge in dag.edges for value in edge}
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        for better, worse in dag.edges:
            writer.writerow([better, worse])
        for value in dag.values:
            if value not in connected:
                writer.writerow([value])


def dataset_from_rows(
    schema: Schema, rows: Iterable[dict[str, Value]], *, validate: bool = True
) -> Dataset:
    """Build a dataset from dict-rows (convenience mirror of ``Dataset.from_dicts``)."""
    ordered = [tuple(row[name] for name in schema.names) for row in rows]
    return Dataset(schema, ordered, validate=validate)
