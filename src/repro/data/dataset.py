"""In-memory relations of skyline records.

A :class:`Dataset` is an ordered collection of :class:`Record` objects that
conform to a :class:`~repro.data.schema.Schema`.  Records carry a stable
integer id (their position at insertion time) so algorithm outputs can be
compared set-wise regardless of the order results are produced in.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.data.schema import Schema
from repro.exceptions import DatasetError

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    import numpy as np

Value = Hashable


@dataclass(frozen=True, slots=True)
class Record:
    """One tuple of a dataset: a stable id plus its attribute values."""

    id: int
    values: tuple[Value, ...]

    def value(self, schema: Schema, name: str) -> Value:
        """The value of attribute ``name`` under ``schema``."""
        return self.values[schema.position(name)]

    def as_dict(self, schema: Schema) -> dict[str, Value]:
        return dict(zip(schema.names, self.values))


class Dataset:
    """An immutable, schema-validated collection of records."""

    __slots__ = ("_schema", "_records", "_numeric_matrix")

    def __init__(self, schema: Schema, rows: Iterable[Sequence[Value]], *, validate: bool = True) -> None:
        self._schema = schema
        records: list[Record] = []
        for row in rows:
            row_tuple = tuple(row)
            if validate:
                schema.validate_row(row_tuple)
            records.append(Record(id=len(records), values=row_tuple))
        self._records: tuple[Record, ...] = tuple(records)
        self._numeric_matrix: "np.ndarray | None" = None

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def records(self) -> tuple[Record, ...]:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, record_id: int) -> Record:
        try:
            record = self._records[record_id]
        except IndexError as exc:
            raise DatasetError(f"no record with id {record_id}") from exc
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset(n={len(self)}, schema={self._schema!r})"

    # ------------------------------------------------------------------ #
    # Column access
    # ------------------------------------------------------------------ #
    def column(self, name: str) -> list[Value]:
        """All values of one attribute, in record order."""
        position = self._schema.position(name)
        return [record.values[position] for record in self._records]

    def to_numeric_matrix(self) -> "np.ndarray":
        """The totally ordered attributes as a float matrix (canonical, min-is-best).

        Requires the optional NumPy dependency (``pip install repro[numpy]``).
        The matrix is assembled column-wise (no intermediate per-record row
        list), memoized on the instance (the dataset is immutable), and
        returned read-only so no caller can corrupt the shared copy.
        """
        if self._numeric_matrix is not None:
            return self._numeric_matrix
        try:
            import numpy as np
        except ImportError as exc:  # pragma: no cover - exercised in the no-numpy CI job
            raise DatasetError(
                "Dataset.to_numeric_matrix requires NumPy; install the [numpy] extra"
            ) from exc
        records = self._records
        matrix = np.empty((len(records), self._schema.num_total_order), dtype=float)
        for column, position in enumerate(self._schema.total_order_positions):
            matrix[:, column] = np.fromiter(
                (record.values[position] for record in records),
                dtype=float,
                count=len(records),
            )
            if self._schema.attributes[position].best == "max":  # type: ignore[union-attr]
                np.negative(matrix[:, column], out=matrix[:, column])
        matrix.flags.writeable = False
        self._numeric_matrix = matrix
        return matrix

    def partial_value_tuples(self) -> list[tuple[Value, ...]]:
        """The PO value combination of every record, in record order."""
        return [self._schema.partial_values(record.values) for record in self._records]

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def subset(self, record_ids: Iterable[int]) -> "Dataset":
        """A new dataset containing only the given records (ids are re-assigned)."""
        rows = [self[record_id].values for record_id in record_ids]
        return Dataset(self._schema, rows, validate=False)

    def with_schema(self, schema: Schema, *, validate: bool = True) -> "Dataset":
        """Re-interpret the same rows under a different (compatible) schema.

        Used by dynamic skyline queries that change PO preferences: the record
        values are unchanged, only the preference DAGs differ.
        """
        if len(schema) != len(self._schema):
            raise DatasetError("replacement schema must have the same number of attributes")
        return Dataset(schema, (record.values for record in self._records), validate=validate)

    @classmethod
    def from_dicts(cls, schema: Schema, rows: Iterable[dict[str, Value]]) -> "Dataset":
        """Build a dataset from dictionaries keyed by attribute name."""
        ordered_rows = []
        for row in rows:
            missing = set(schema.names) - set(row)
            if missing:
                raise DatasetError(f"row is missing attributes: {sorted(missing)}")
            ordered_rows.append(tuple(row[name] for name in schema.names))
        return cls(schema, ordered_rows)
