"""Synthetic data generation (Independent / Correlated / Anti-correlated).

The paper's evaluation (Section VI-A) uses a modified version of the public
``randdataset`` generator to create Independent and Anti-correlated data over
TO domains of size 10 000, plus PO attributes whose values are drawn from a
sampled subset lattice.  This module re-implements the distributions:

* ``independent`` — every TO attribute drawn uniformly at random.
* ``correlated`` — TO attributes cluster around a common "goodness" level.
* ``anticorrelated`` — records that are good in one TO dimension tend to be
  bad in the others (generated on a hyperplane with jitter, the standard
  construction from Börzsönyi et al.).

PO attribute values are drawn uniformly from their domain, independently of
the TO attributes, matching the paper's setup where only the TO attributes
follow the named distribution.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.exceptions import DatasetError

DISTRIBUTIONS = ("independent", "correlated", "anticorrelated")


def generate_dataset(
    schema: Schema,
    cardinality: int,
    *,
    distribution: str = "independent",
    to_domain_size: int = 10_000,
    seed: int | None = None,
) -> Dataset:
    """Generate a synthetic dataset conforming to ``schema``.

    Parameters
    ----------
    schema:
        Mixed TO/PO schema; PO attribute values are sampled uniformly from
        their preference DAG's domain.
    cardinality:
        Number of records ``N``.
    distribution:
        One of ``"independent"``, ``"correlated"``, ``"anticorrelated"``
        (applies to the TO attributes only).
    to_domain_size:
        TO values are integers in ``[0, to_domain_size)``; the paper uses
        10 000.
    seed:
        Seed for reproducible generation.
    """
    if cardinality < 0:
        raise DatasetError("cardinality must be non-negative")
    if distribution not in DISTRIBUTIONS:
        raise DatasetError(
            f"unknown distribution {distribution!r}; expected one of {DISTRIBUTIONS}"
        )
    if to_domain_size < 1:
        raise DatasetError("to_domain_size must be positive")

    rng = random.Random(seed)
    num_to = schema.num_total_order
    po_domains = [attribute.domain for attribute in schema.partial_order_attributes]
    if any(not domain for domain in po_domains):
        raise DatasetError("every PO attribute needs a non-empty domain")

    rows = []
    for _ in range(cardinality):
        to_values = _draw_to_values(rng, num_to, distribution, to_domain_size)
        po_values = [domain[rng.randrange(len(domain))] for domain in po_domains]
        rows.append(_interleave(schema, to_values, po_values))
    return Dataset(schema, rows, validate=False)


def _draw_to_values(
    rng: random.Random, num_to: int, distribution: str, domain_size: int
) -> list[int]:
    """One record's TO attribute values under the requested distribution."""
    if num_to == 0:
        return []
    if distribution == "independent":
        unit = [rng.random() for _ in range(num_to)]
    elif distribution == "correlated":
        unit = _correlated_unit(rng, num_to)
    else:
        unit = _anticorrelated_unit(rng, num_to)
    return [min(domain_size - 1, int(u * domain_size)) for u in unit]


def _correlated_unit(rng: random.Random, num_to: int) -> list[float]:
    """All attributes close to a common level (peaked around the diagonal)."""
    level = _peaked(rng)
    values = []
    for _ in range(num_to):
        value = level + rng.gauss(0.0, 0.05)
        values.append(min(1.0, max(0.0, value)))
    return values


def _anticorrelated_unit(rng: random.Random, num_to: int) -> list[float]:
    """Points scattered around the anti-diagonal hyperplane ``sum = num_to / 2``.

    Within a record, a small value in one dimension is compensated by larger
    values in the others, which inflates the skyline exactly as in the paper.
    """
    level = 0.5 + rng.gauss(0.0, 0.05)
    raw = [rng.random() for _ in range(num_to)]
    total = sum(raw)
    if total == 0.0:
        raw = [1.0] * num_to
        total = float(num_to)
    scale = level * num_to / total
    return [min(1.0, max(0.0, value * scale)) for value in raw]


def _peaked(rng: random.Random) -> float:
    """A value in [0, 1] peaked around 0.5 (sum of two uniforms / 2)."""
    return (rng.random() + rng.random()) / 2.0


def _interleave(
    schema: Schema, to_values: Sequence[int], po_values: Sequence[object]
) -> tuple[object, ...]:
    """Place TO and PO values at their schema positions."""
    row: list[object] = [None] * len(schema)
    for position, value in zip(schema.total_order_positions, to_values):
        row[position] = value
    for position, value in zip(schema.partial_order_positions, po_values):
        row[position] = value
    return tuple(row)
