"""Columnar encoded frames: the zero-copy data plane of the hot paths.

A :class:`EncodedFrame` holds a dataset *encoded once* as one contiguous
column per attribute — a float64 matrix of canonical TO values (shared with
:meth:`Dataset.to_numeric_matrix <repro.data.dataset.Dataset.to_numeric_matrix>`)
and one int32 code column per PO attribute — instead of a tuple-of-``Record``
objects walked one at a time.  Every consumer of the hot path (the batch
engine's prefilter, :class:`~repro.core.mapping.TSSMapping` construction,
SFS/LESS presorting, the sharded executor's worker shipping and cross-shard
merges) can then stream row blocks straight through the vectorized kernels
with zero per-record conversion.

Codes live in the *canonical* space of the frame's schema — position in each
PO attribute's ``dag.values`` tuple, exactly the space
:meth:`RecordTables.from_schema <repro.kernels.tables.RecordTables.from_schema>`
uses — so ground-truth dominance needs no translation.  Other code spaces
(a query's override DAGs, a topological-sort encoding) are reached through
:meth:`EncodedFrame.remap_codes`, an O(domain) permutation build plus one
vectorized gather, rather than re-encoding every record.

The frame path is selected like the kernel backend: an explicit argument
wins, then the ``REPRO_FRAME`` environment variable (mirroring
``REPRO_KERNEL``), then the default — on when NumPy is importable, off
otherwise.  Without NumPy the frame falls back to tuple-backed columns so a
forced ``REPRO_FRAME=1`` still works everywhere (the reference
representation the vectorized one must agree with).
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from typing import TYPE_CHECKING

from repro.config import FRAME_ENV_VAR  # noqa: F401  (historical home)
from repro.config import resolve_frame_mode as _resolve_frame_mode
from repro.data.schema import Schema
from repro.exceptions import DatasetError

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.data.dataset import Dataset

Value = Hashable


def _numpy_or_none():
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def resolve_frame_mode(mode: bool | str | None = None) -> bool:
    """Deprecated shim: delegates to :func:`repro.config.resolve_frame_mode`.

    Kept so existing imports stay green; the resolver (and the
    ``REPRO_FRAME`` read) now lives in :mod:`repro.config`.
    """
    return _resolve_frame_mode(mode)


def group_rows(matrix) -> tuple[object, list]:
    """Group equal rows of a 2-D array, preserving first-occurrence order.

    Returns ``(unique_rows, groups)`` where ``unique_rows[g]`` is the value of
    the ``g``-th distinct row *in order of first appearance* and ``groups[g]``
    the ascending indices of its occurrences — the exact contract of dict-based
    ``setdefault`` grouping over row tuples, shared by the engine's prefilter
    and the columnar :class:`~repro.core.mapping.TSSMapping` build.  A matrix
    with zero columns groups every row together.
    """
    np = _numpy_or_none()
    if np is None:  # pragma: no cover - callers hold ndarray-backed frames
        raise DatasetError("group_rows requires NumPy")
    matrix = np.asarray(matrix)
    if not len(matrix):
        return matrix[:0], []
    unique, first_seen, inverse = np.unique(
        matrix, axis=0, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)  # NumPy 2.x keeps the input's shape
    by_first = np.argsort(first_seen, kind="stable")
    position_of = np.empty(len(by_first), dtype=np.intp)
    position_of[by_first] = np.arange(len(by_first))
    group_of_row = position_of[inverse]
    rows_by_group = np.argsort(group_of_row, kind="stable")
    boundaries = np.cumsum(np.bincount(group_of_row))[:-1]
    return unique[by_first], np.split(rows_by_group, boundaries)


def ordered_rows(keys, tiebreak=None, *, uses_numpy: bool) -> list[int]:
    """Row positions sorted ascending by ``keys`` (stable), as a plain list.

    ``tiebreak`` optionally breaks key ties by a second integer sequence —
    the SFS merge phase orders equal monotone keys by stable record id.  The
    NumPy branch is bitwise-faithful to the historical call sites
    (``np.argsort(..., kind="stable")`` / ``np.lexsort``), and keeping it
    here keeps the numpy import inside the frame plane
    (reprolint: numpy-containment).
    """
    np = _numpy_or_none()
    if uses_numpy and np is not None:
        if tiebreak is None:
            return np.argsort(keys, kind="stable").tolist()
        return np.lexsort((np.asarray(tiebreak), keys)).tolist()
    if tiebreak is None:
        return sorted(range(len(keys)), key=keys.__getitem__)
    return sorted(range(len(keys)), key=lambda i: (keys[i], tiebreak[i]))


class ColumnCodec:
    """The value<->code tables of one schema's PO attributes.

    Codes are positions in each attribute's ``dag.values`` tuple — the same
    canonical space :meth:`RecordTables.from_schema
    <repro.kernels.tables.RecordTables.from_schema>` derives, so frames and
    ground-truth record tables of one schema always agree without remapping.
    """

    __slots__ = ("names", "domains", "code_of")

    def __init__(self, names: Sequence[str], domains: Sequence[tuple[Value, ...]]) -> None:
        self.names = tuple(names)
        self.domains = tuple(tuple(domain) for domain in domains)
        self.code_of = tuple(
            {value: code for code, value in enumerate(domain)} for domain in self.domains
        )

    @classmethod
    def from_schema(cls, schema: Schema) -> "ColumnCodec":
        attributes = schema.partial_order_attributes
        return cls(
            names=[attribute.name for attribute in attributes],
            domains=[attribute.dag.values for attribute in attributes],
        )

    def encode_column(self, attr_index: int, values: Sequence[Value]) -> list[int]:
        """Codes of one PO value column (clean error naming the attribute)."""
        code_of = self.code_of[attr_index]
        try:
            return [code_of[value] for value in values]
        except KeyError as exc:
            raise DatasetError(
                f"cannot encode PO attribute {self.names[attr_index]!r}: value "
                f"{exc.args[0]!r} is absent from the encoding domain"
            ) from None

    def permutation_to(
        self, attr_index: int, target_code_of: Mapping[Value, int]
    ) -> list[int]:
        """``perm[canonical code] -> target code`` for one attribute.

        Raises a clean :class:`~repro.exceptions.DatasetError` naming the
        attribute when the target space is missing one of the frame's domain
        values (e.g. a frame requested for an encoding over a shrunk domain).
        """
        perm: list[int] = []
        for value in self.domains[attr_index]:
            try:
                perm.append(target_code_of[value])
            except KeyError:
                raise DatasetError(
                    f"cannot remap PO attribute {self.names[attr_index]!r}: value "
                    f"{value!r} is absent from the encoding domain"
                ) from None
        return perm


class EncodedFrame:
    """One dataset encoded once as contiguous per-attribute columns.

    Attributes
    ----------
    schema:
        The schema the frame was encoded under.
    to:
        Canonical TO values, shape ``(n, num_total_order)`` — a read-only
        float64 array (NumPy backend, shared with the dataset's memoized
        numeric matrix) or a tuple of row tuples (fallback backend).
    codes:
        PO codes in the codec's canonical space, shape
        ``(n, num_partial_order)`` — an int32 array or a tuple of row tuples.
    codec:
        The :class:`ColumnCodec` defining the code space.
    """

    __slots__ = ("schema", "codec", "to", "codes", "_length")

    def __init__(self, schema: Schema, codec: ColumnCodec, to, codes, length: int) -> None:
        self.schema = schema
        self.codec = codec
        self.to = to
        self.codes = codes
        self._length = length

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dataset(cls, dataset: "Dataset") -> "EncodedFrame":
        """Encode a dataset column-wise (vectorized when NumPy is available)."""
        schema = dataset.schema
        codec = ColumnCodec.from_schema(schema)
        np = _numpy_or_none()
        length = len(dataset)
        if np is not None:
            to = (
                dataset.to_numeric_matrix()
                if schema.num_total_order
                else np.empty((length, 0), dtype=float)
            )
            codes = np.empty((length, schema.num_partial_order), dtype=np.int32)
            for attr_index, name in enumerate(codec.names):
                codes[:, attr_index] = codec.encode_column(
                    attr_index, dataset.column(name)
                )
            codes.flags.writeable = False
            return cls(schema, codec, to, codes, length)
        to_rows = tuple(
            schema.canonical_to_values(record.values)
            # Ingest boundary: records are encoded into a frame exactly once.
            for record in dataset.records  # reprolint: disable=no-record-hot-path -- ingest boundary
        )
        code_columns = [
            codec.encode_column(attr_index, dataset.column(name))
            for attr_index, name in enumerate(codec.names)
        ]
        codes = tuple(zip(*code_columns)) if code_columns else tuple(() for _ in range(length))
        return cls(schema, codec, to_rows, codes, length)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._length

    @property
    def num_total_order(self) -> int:
        return self.schema.num_total_order

    @property
    def num_partial_order(self) -> int:
        return len(self.codec.names)

    @property
    def uses_numpy(self) -> bool:
        return not isinstance(self.to, tuple)

    def row(self, index: int):
        """``(to_values, po_codes)`` of one row (views, no conversion)."""
        return self.to[index], self.codes[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backend = "numpy" if self.uses_numpy else "tuple"
        return f"EncodedFrame(n={self._length}, backend={backend}, schema={self.schema!r})"

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def take(self, indices: Sequence[int]) -> "EncodedFrame":
        """A row-subset frame (shard slicing; rows are re-numbered 0..n-1)."""
        if self.uses_numpy:
            np = _numpy_or_none()
            index_array = np.asarray(indices, dtype=np.intp)
            return EncodedFrame(
                self.schema,
                self.codec,
                self.to[index_array],
                self.codes[index_array],
                int(len(index_array)),
            )
        to = tuple(self.to[i] for i in indices)
        codes = tuple(self.codes[i] for i in indices)
        return EncodedFrame(self.schema, self.codec, to, codes, len(to))

    def gather_to(self, rows: Sequence[int] | None):
        """The TO matrix restricted to ``rows`` (``None`` = every row).

        The full-frame case stays zero-copy; a row subset is one vectorized
        gather (a transient per-call block, not a persistent reduced frame).
        """
        if rows is None:
            return self.to
        if self.uses_numpy:
            np = _numpy_or_none()
            return self.to[np.asarray(rows, dtype=np.intp)]
        return tuple(self.to[i] for i in rows)

    def remap_codes(
        self,
        code_maps: Sequence[Mapping[Value, int]],
        rows: Sequence[int] | None = None,
    ):
        """The code matrix translated into another per-attribute code space.

        ``code_maps`` holds one value-to-code mapping per PO attribute (e.g.
        ``table.code_of`` of a query's :class:`~repro.kernels.tables.
        RecordTables`, or an encoding's topological positions).  Identity
        remaps return the frame's own columns unchanged (zero-copy); anything
        else is one O(domain) permutation build plus a vectorized gather.
        ``rows`` restricts the result to a row subset (positions in the
        returned matrix follow the order of ``rows``) without materializing a
        reduced frame first.
        """
        if len(code_maps) != self.num_partial_order:
            raise DatasetError(
                f"remap_codes needs one code map per PO attribute "
                f"({self.num_partial_order}), got {len(code_maps)}"
            )
        perms = [
            self.codec.permutation_to(attr_index, code_map)
            for attr_index, code_map in enumerate(code_maps)
        ]
        np = _numpy_or_none() if self.uses_numpy else None
        if self.uses_numpy and rows is not None:
            codes = self.codes[np.asarray(rows, dtype=np.intp)]
        elif rows is not None:
            codes = tuple(self.codes[i] for i in rows)
        else:
            codes = self.codes
        if all(perm == list(range(len(perm))) for perm in perms):
            return codes
        if self.uses_numpy:
            remapped = np.empty_like(codes)
            remapped.flags.writeable = True
            for attr_index, perm in enumerate(perms):
                table = np.asarray(perm, dtype=np.int32)
                remapped[:, attr_index] = table[codes[:, attr_index]]
            return remapped
        return tuple(
            tuple(perm[code] for perm, code in zip(perms, row)) for row in codes
        )

    def monotone_keys(
        self,
        depth_columns: Sequence[Sequence[float]],
        rows: Sequence[int] | None = None,
    ):
        """The SFS monotone sort key of every row, bitwise identical to the
        record path's :func:`~repro.skyline.sfs.monotone_sort_key`.

        ``depth_columns`` holds, per PO attribute, the DAG depth of every
        *canonical-code* value.  Accumulation order matches the scalar key —
        TO columns left to right, then PO depths in attribute order — so the
        float results (and thus any sort built on them) are identical.
        ``rows`` restricts the keys to a row subset, in ``rows`` order.
        """
        if self.uses_numpy:
            np = _numpy_or_none()
            if rows is None:
                to, codes, length = self.to, self.codes, self._length
            else:
                index_array = np.asarray(rows, dtype=np.intp)
                to, codes, length = (
                    self.to[index_array],
                    self.codes[index_array],
                    int(len(index_array)),
                )
            keys = np.zeros(length, dtype=float)
            for column in range(self.num_total_order):
                keys += to[:, column]
            for attr_index, depths in enumerate(depth_columns):
                keys += np.asarray(depths, dtype=float)[codes[:, attr_index]]
            return keys
        row_iter = (
            zip(self.to, self.codes)
            if rows is None
            else ((self.to[i], self.codes[i]) for i in rows)
        )
        keys = []
        for to_row, code_row in row_iter:
            score = 0.0
            for value in to_row:
                score += value
            for depths, code in zip(depth_columns, code_row):
                score += depths[code]
            keys.append(score)
        return keys
