"""Data substrate: schemas, datasets and synthetic workload generators.

* :mod:`~repro.data.schema` — attribute specifications (totally ordered with a
  min/max preference, or partially ordered with a preference DAG) and the
  :class:`Schema` that ties a relation's attributes together.
* :mod:`~repro.data.dataset` — an in-memory relation (:class:`Dataset`) of
  records conforming to a schema.
* :mod:`~repro.data.generator` — synthetic data generators reproducing the
  Independent / Correlated / Anti-correlated distributions of the skyline
  literature (the paper uses the first and last).
* :mod:`~repro.data.io` — CSV loading/saving for datasets and preference DAGs.
* :mod:`~repro.data.columns` — the columnar data plane: datasets encoded once
  as contiguous per-attribute columns (:class:`EncodedFrame`) that stream
  through the vectorized kernels, mapping construction and shard shipping.
* :mod:`~repro.data.workloads` — the paper's experimental parameter grid
  expressed as named, reproducible workload specifications.
"""

from repro.data.columns import EncodedFrame, resolve_frame_mode
from repro.data.dataset import Dataset, Record
from repro.data.generator import generate_dataset
from repro.data.io import (
    load_csv_dataset,
    load_preference_edges,
    save_csv_dataset,
    save_preference_edges,
)
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.data.workloads import WorkloadSpec, paper_defaults

__all__ = [
    "Dataset",
    "EncodedFrame",
    "Record",
    "resolve_frame_mode",
    "Schema",
    "TotalOrderAttribute",
    "PartialOrderAttribute",
    "generate_dataset",
    "load_csv_dataset",
    "save_csv_dataset",
    "load_preference_edges",
    "save_preference_edges",
    "WorkloadSpec",
    "paper_defaults",
]
