"""Common result and statistics types shared by every skyline algorithm.

All algorithms in this library (TO-only, static PO, dynamic PO, baselines)
return a :class:`SkylineResult`: the set of skyline record ids, per-run
:class:`SkylineStats` (dominance checks, IOs, CPU/IO/total time under the
paper's cost model) and a progressiveness log (one :class:`ProgressEvent` per
output point), which is what Figure 11 of the paper plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.exceptions import QueryError
from repro.index.pager import DEFAULT_IO_COST_SECONDS, DiskSimulator


@dataclass(frozen=True, slots=True)
class ProgressEvent:
    """Snapshot taken the moment one more skyline point is reported."""

    results_so_far: int
    cpu_seconds: float
    io_reads: int
    dominance_checks: int

    def total_seconds(self, io_cost_seconds: float = DEFAULT_IO_COST_SECONDS) -> float:
        return self.cpu_seconds + self.io_reads * io_cost_seconds


@dataclass(slots=True)
class SkylineStats:
    """Work counters and (simulated) cost of one skyline computation."""

    dominance_checks: int = 0
    points_examined: int = 0
    nodes_expanded: int = 0
    io_reads: int = 0
    io_writes: int = 0
    cpu_seconds: float = 0.0
    io_cost_seconds: float = DEFAULT_IO_COST_SECONDS
    false_hits_removed: int = 0

    @property
    def io_seconds(self) -> float:
        return (self.io_reads + self.io_writes) * self.io_cost_seconds

    @property
    def total_seconds(self) -> float:
        """The paper's total time: measured CPU plus charged IO."""
        return self.cpu_seconds + self.io_seconds

    @property
    def total_ios(self) -> int:
        return self.io_reads + self.io_writes

    def as_dict(self) -> dict[str, float]:
        return {
            "dominance_checks": float(self.dominance_checks),
            "points_examined": float(self.points_examined),
            "nodes_expanded": float(self.nodes_expanded),
            "io_reads": float(self.io_reads),
            "io_writes": float(self.io_writes),
            "false_hits_removed": float(self.false_hits_removed),
            "cpu_seconds": self.cpu_seconds,
            "io_seconds": self.io_seconds,
            "total_seconds": self.total_seconds,
        }


@dataclass(slots=True)
class SkylineResult:
    """Outcome of a skyline computation."""

    skyline_ids: list[int]
    stats: SkylineStats
    progress: list[ProgressEvent] = field(default_factory=list)

    @property
    def skyline_set(self) -> frozenset[int]:
        return frozenset(self.skyline_ids)

    def __len__(self) -> int:
        return len(self.skyline_ids)

    def time_to_fraction(self, fraction: float) -> float:
        """Simulated seconds needed to report ``fraction`` of the skyline.

        Used to reproduce the progressiveness plot (Figure 11).  Returns the
        total (CPU + IO) time at which the first ``ceil(fraction * |skyline|)``
        results had been output; ``fraction=1.0`` equals the total time.
        """
        if not 0.0 <= fraction <= 1.0:
            raise QueryError("fraction must be in [0, 1]")
        if not self.progress or fraction == 0.0:
            return 0.0
        needed = max(1, int(round(fraction * len(self.progress))))
        event = self.progress[needed - 1]
        return event.total_seconds(self.stats.io_cost_seconds)


class RunClock:
    """Helper that algorithms use to populate stats and progress uniformly.

    It tracks wall-clock CPU time from construction, reads IO counters from an
    optional :class:`DiskSimulator`, and records a :class:`ProgressEvent`
    every time a result is reported.
    """

    def __init__(self, stats: SkylineStats, disk: DiskSimulator | None = None) -> None:
        self.stats = stats
        self.disk = disk
        self._start = time.perf_counter()
        self._io_reads_at_start = disk.stats.reads if disk else 0
        self._io_writes_at_start = disk.stats.writes if disk else 0
        self.progress: list[ProgressEvent] = []
        if disk is not None:
            stats.io_cost_seconds = disk.io_cost_seconds

    def elapsed_cpu(self) -> float:
        return time.perf_counter() - self._start

    def current_io_reads(self) -> int:
        if self.disk is None:
            return self.stats.io_reads
        return self.disk.stats.reads - self._io_reads_at_start

    def record_result(self) -> None:
        self.progress.append(
            ProgressEvent(
                results_so_far=len(self.progress) + 1,
                cpu_seconds=self.elapsed_cpu(),
                io_reads=self.current_io_reads(),
                dominance_checks=self.stats.dominance_checks,
            )
        )

    def finish(self) -> None:
        """Finalize CPU/IO counters on the stats object."""
        self.stats.cpu_seconds = self.elapsed_cpu()
        if self.disk is not None:
            self.stats.io_reads = self.disk.stats.reads - self._io_reads_at_start
            self.stats.io_writes = self.disk.stats.writes - self._io_writes_at_start
