"""Skyline algorithms for totally ordered domains (the classical substrate).

These are the algorithms the paper builds on and compares against in spirit:

* :mod:`~repro.skyline.dominance` — dominance checks: numeric (TO-only) and
  general record dominance in the presence of PO attributes (the ground-truth
  relation every other algorithm must agree with).
* :mod:`~repro.skyline.bruteforce` — the O(n²) reference implementation.
* :mod:`~repro.skyline.bnl` — Block Nested Loops (Börzsönyi et al.).
* :mod:`~repro.skyline.sfs` — Sort-Filter-Skyline (Chomicki et al.).
* :mod:`~repro.skyline.less` — Linear Elimination Sort for Skyline (Godfrey et al.).
* :mod:`~repro.skyline.salsa` — Sort and Limit Skyline algorithm (Bartolini et al.).
* :mod:`~repro.skyline.bbs` — Branch-and-Bound Skyline on an R-tree
  (Papadias et al.), the progressive, IO-optimal algorithm sTSS extends.
"""

from repro.skyline.base import ProgressEvent, SkylineResult, SkylineStats
from repro.skyline.bbs import bbs_skyline
from repro.skyline.bnl import bnl_skyline
from repro.skyline.bruteforce import brute_force_skyline, brute_force_skyline_records
from repro.skyline.dominance import (
    dominates_records,
    dominates_vectors,
    record_dominance_function,
)
from repro.skyline.less import less_skyline
from repro.skyline.salsa import salsa_skyline
from repro.skyline.sfs import sfs_skyline

__all__ = [
    "SkylineResult",
    "SkylineStats",
    "ProgressEvent",
    "dominates_vectors",
    "dominates_records",
    "record_dominance_function",
    "brute_force_skyline",
    "brute_force_skyline_records",
    "bnl_skyline",
    "sfs_skyline",
    "less_skyline",
    "salsa_skyline",
    "bbs_skyline",
]
