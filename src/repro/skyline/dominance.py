"""Dominance checks: numeric vectors and general records with PO attributes.

Two relations are defined here:

* :func:`dominates_vectors` — classical TO dominance between numeric vectors
  where smaller is better on every dimension.
* :func:`dominates_records` — the *ground-truth* dominance between two records
  of a mixed TO/PO schema: at least as good everywhere (TO: ``<=``; PO:
  preferred-or-equal per the attribute's DAG) and strictly better somewhere.
  This is the relation the skyline is defined by (Section I of the paper) and
  the oracle every algorithm's output is validated against.

The scalar functions here define the semantics; the scan algorithms
(BNL/SFS/LESS) evaluate the same relation in blocks through a pluggable
:mod:`~repro.kernels` backend — :func:`record_store_for` builds the
kernel-backed store they scan candidates against.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.data.dataset import Record
from repro.data.schema import Schema
from repro.kernels import RecordStore, RecordTables, resolve_kernel


def dominates_vectors(p: Sequence[float], q: Sequence[float]) -> bool:
    """True iff ``p`` dominates ``q``: no worse anywhere, strictly better somewhere."""
    strictly_better = False
    for a, b in zip(p, q):
        if a > b:
            return False
        if a < b:
            strictly_better = True
    return strictly_better


def weakly_dominates_vectors(p: Sequence[float], q: Sequence[float]) -> bool:
    """True iff ``p`` is no worse than ``q`` on every dimension (ties allowed)."""
    return all(a <= b for a, b in zip(p, q))


def dominates_records(schema: Schema, a: Record, b: Record) -> bool:
    """Ground-truth dominance of record ``a`` over record ``b`` under ``schema``.

    ``a`` dominates ``b`` iff it is at least as good on every TO attribute
    (after canonicalization, smaller is better), preferred-or-equal on every
    PO attribute according to its preference DAG, and strictly better on at
    least one attribute of either kind.
    """
    strictly_better = False

    for position in schema.total_order_positions:
        attribute = schema.attributes[position]
        value_a = attribute.canonical(a.values[position])  # type: ignore[union-attr]
        value_b = attribute.canonical(b.values[position])  # type: ignore[union-attr]
        if value_a > value_b:
            return False
        if value_a < value_b:
            strictly_better = True

    for position in schema.partial_order_positions:
        attribute = schema.attributes[position]
        value_a = a.values[position]
        value_b = b.values[position]
        if value_a == value_b:
            continue
        if attribute.dag.is_preferred(value_a, value_b):  # type: ignore[union-attr]
            strictly_better = True
        else:
            return False

    return strictly_better


def record_dominance_function(schema: Schema) -> Callable[[Record, Record], bool]:
    """A two-argument dominance predicate bound to ``schema`` (for BNL/SFS/brute force)."""

    def dominates(a: Record, b: Record) -> bool:
        return dominates_records(schema, a, b)

    return dominates


def incomparable_records(schema: Schema, a: Record, b: Record) -> bool:
    """True iff neither record dominates the other."""
    return not dominates_records(schema, a, b) and not dominates_records(schema, b, a)


class RecordEncoder:
    """Encode records of one schema for kernel-backed block dominance."""

    __slots__ = ("schema", "tables")

    def __init__(self, schema: Schema, tables: RecordTables | None = None) -> None:
        self.schema = schema
        self.tables = tables if tables is not None else RecordTables.from_schema(schema)

    def encode(self, record: Record) -> tuple[tuple[float, ...], tuple[int, ...]]:
        """``(canonical TO values, PO codes)`` of one record."""
        return (
            self.schema.canonical_to_values(record.values),
            self.tables.encode_po(self.schema.partial_values(record.values)),
        )


def record_store_for(
    schema: Schema, kernel=None, *, encoder: RecordEncoder | None = None
) -> tuple[RecordEncoder, RecordStore]:
    """A kernel-backed growing store evaluating ground-truth record dominance.

    Returns the encoder (reusable across stores of the same schema) and an
    empty store; scan algorithms append confirmed records and test each
    candidate against the whole block in one kernel call.
    """
    encoder = encoder if encoder is not None else RecordEncoder(schema)
    return encoder, resolve_kernel(kernel).record_store(encoder.tables)
