"""LESS: Linear Elimination Sort for Skyline (Godfrey, Shipley, Gryz).

LESS improves on SFS (Section II-A of the paper lists it among the scan-based
algorithms exhibiting *precedence*) by eliminating records already during the
sorting phase:

1. **Elimination-filter pass** — while the input is being read for sorting, a
   small window of the best records seen so far (lowest monotone score) is
   maintained; every incoming record is dropped immediately if a window
   record dominates it, and window records dominated by an incoming record
   with a better score are replaced.
2. **Filter pass** — the surviving records are sorted by the monotone
   preference function and filtered exactly like SFS: a record that is not
   dominated by any previously kept record is a skyline record and can be
   output immediately (optimal progressiveness).

Like the other scan-based algorithms in this package, LESS works on mixed
TO/PO schemas through the ground-truth record dominance predicate, so its
output is always the exact skyline.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.data.dataset import Dataset, Record
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.dominance import record_dominance_function
from repro.skyline.sfs import monotone_sort_key

#: Default size of the elimination-filter window (records).
DEFAULT_FILTER_WINDOW = 16


def less_skyline(
    dataset: Dataset,
    *,
    filter_window: int = DEFAULT_FILTER_WINDOW,
    dominates: Callable[[Record, Record], bool] | None = None,
    key: Callable[[Record], float] | None = None,
) -> SkylineResult:
    """Compute the skyline of ``dataset`` with LESS.

    Parameters
    ----------
    dataset:
        The input relation (mixed TO/PO schemas supported).
    filter_window:
        Maximum number of elite records kept in the elimination filter during
        the first pass; ``0`` disables elimination and makes LESS degenerate
        to SFS.
    dominates / key:
        Optional overrides for the dominance predicate and the monotone sort
        key (defaults: ground-truth record dominance and the canonical
        TO-sum + PO-depth score).
    """
    schema = dataset.schema
    dominates = dominates or record_dominance_function(schema)
    key = key or monotone_sort_key(schema)

    stats = SkylineStats()
    clock = RunClock(stats)

    # ------------------------------------------------------------------ #
    # Pass 1: elimination filter while "reading the input for sorting".
    # ------------------------------------------------------------------ #
    elite: list[tuple[float, Record]] = []
    survivors: list[Record] = []
    for record in dataset.records:
        stats.points_examined += 1
        score = key(record)
        eliminated = False
        for _, resident in elite:
            stats.dominance_checks += 1
            if dominates(resident, record):
                eliminated = True
                break
        if eliminated:
            continue
        survivors.append(record)
        if filter_window > 0:
            _update_filter(elite, record, score, filter_window)

    # ------------------------------------------------------------------ #
    # Pass 2: sort the survivors and filter like SFS.
    # ------------------------------------------------------------------ #
    survivors.sort(key=key)
    skyline: list[Record] = []
    skyline_ids: list[int] = []
    for record in survivors:
        dominated = False
        for resident in skyline:
            stats.dominance_checks += 1
            if dominates(resident, record):
                dominated = True
                break
        if not dominated:
            skyline.append(record)
            skyline_ids.append(record.id)
            clock.record_result()

    clock.finish()
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)


def _update_filter(
    elite: list[tuple[float, Record]], record: Record, score: float, capacity: int
) -> None:
    """Keep the elimination filter populated with the best-scoring records."""
    if len(elite) < capacity:
        elite.append((score, record))
        elite.sort(key=lambda item: item[0])
        return
    worst_score, _ = elite[-1]
    if score < worst_score:
        elite[-1] = (score, record)
        elite.sort(key=lambda item: item[0])
