"""LESS: Linear Elimination Sort for Skyline (Godfrey, Shipley, Gryz).

LESS improves on SFS (Section II-A of the paper lists it among the scan-based
algorithms exhibiting *precedence*) by eliminating records already during the
sorting phase:

1. **Elimination-filter pass** — while the input is being read for sorting, a
   small window of the best records seen so far (lowest monotone score) is
   maintained; every incoming record is dropped immediately if a window
   record dominates it, and window records dominated by an incoming record
   with a better score are replaced.
2. **Filter pass** — the surviving records are sorted by the monotone
   preference function and filtered exactly like SFS: a record that is not
   dominated by any previously kept record is a skyline record and can be
   output immediately (optimal progressiveness).

Like the other scan-based algorithms in this package, LESS works on mixed
TO/PO schemas through the ground-truth record dominance predicate, so its
output is always the exact skyline.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.data.columns import EncodedFrame, resolve_frame_mode
from repro.data.dataset import Dataset, Record
from repro.exceptions import DatasetError
from repro.kernels import resolve_kernel
from repro.kernels.tables import RecordTables
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.dominance import RecordEncoder, record_store_for
from repro.skyline.sfs import depth_columns, monotone_sort_key

#: Default size of the elimination-filter window (records).
DEFAULT_FILTER_WINDOW = 16


def less_skyline(
    dataset: Dataset | None = None,
    *,
    filter_window: int = DEFAULT_FILTER_WINDOW,
    dominates: Callable[[Record, Record], bool] | None = None,
    key: Callable[[Record], float] | None = None,
    kernel=None,
    frame: EncodedFrame | None = None,
    use_frame: bool | None = None,
) -> SkylineResult:
    """Compute the skyline of ``dataset`` with LESS.

    Parameters
    ----------
    dataset:
        The input relation (mixed TO/PO schemas supported).
    filter_window:
        Maximum number of elite records kept in the elimination filter during
        the first pass; ``0`` disables elimination and makes LESS degenerate
        to SFS.
    dominates / key:
        Optional overrides for the dominance predicate and the monotone sort
        key (defaults: ground-truth record dominance and the canonical
        TO-sum + PO-depth score).  Passing ``dominates`` falls back to the
        record-at-a-time reference path.
    kernel:
        Dominance kernel backend (instance, name or ``None`` for the process
        default) used for both the elimination filter and the SFS filter.
    frame / use_frame:
        Columnar inputs: an :class:`~repro.data.columns.EncodedFrame` to scan
        instead of the record tuples, and the frame-path toggle (``None``
        consults ``REPRO_FRAME``).  ``dataset`` may be ``None`` when a frame
        is supplied.
    """
    if dataset is None and frame is None:
        raise DatasetError("less_skyline needs a dataset or an encoded frame")
    schema = dataset.schema if dataset is not None else frame.schema
    if dominates is None and key is None:
        if frame is None and resolve_frame_mode(use_frame):
            frame = EncodedFrame.from_dataset(dataset)
        if frame is not None:
            return _less_skyline_frame(schema, frame, filter_window, kernel)
    if dataset is None:
        raise DatasetError(
            "less_skyline needs a dataset when a custom key or dominance "
            "predicate bypasses the columnar path"
        )
    key = key or monotone_sort_key(schema)
    if dominates is None:
        return _less_skyline_kernel(dataset, filter_window, key, kernel)
    return _less_skyline_predicate(dataset, filter_window, dominates, key)


def _less_skyline_frame(schema, frame, filter_window, kernel) -> SkylineResult:
    """Columnar LESS: both passes stream pre-encoded frame rows.

    Same verdict sequence as the record kernel path (identical ids and
    dominance-check counts) — the elimination filter and the SFS filter just
    read rows out of the frame instead of encoding records one at a time.
    """
    stats = SkylineStats()
    clock = RunClock(stats)
    tables = RecordTables.from_schema(schema)
    codes = frame.remap_codes([table.code_of for table in tables.attributes])
    keys = frame.monotone_keys(depth_columns(schema, frame))
    kern = resolve_kernel(kernel)
    to = frame.to

    # Pass 1: elimination filter while "reading the input for sorting".
    elite_store = kern.record_store(tables)
    elite_scores: list[float] = []
    survivors: list[int] = []
    for row in range(len(frame)):
        stats.points_examined += 1
        if elite_store.any_dominates(to[row], codes[row], counter=stats):
            continue
        survivors.append(row)
        if filter_window <= 0:
            continue
        score = keys[row]
        if len(elite_scores) < filter_window:
            elite_store.append(to[row], codes[row])
            elite_scores.append(score)
        else:
            worst = max(range(len(elite_scores)), key=elite_scores.__getitem__)
            if score < elite_scores[worst]:
                elite_store.compress([i != worst for i in range(len(elite_scores))])
                del elite_scores[worst]
                elite_store.append(to[row], codes[row])
                elite_scores.append(score)

    # Pass 2: sort the survivors and filter like SFS.
    survivors.sort(key=keys.__getitem__)
    skyline_store = kern.record_store(tables)
    skyline_ids: list[int] = []
    for row in survivors:
        if not skyline_store.any_dominates(to[row], codes[row], counter=stats):
            skyline_store.append(to[row], codes[row])
            skyline_ids.append(row)
            clock.record_result()

    clock.finish()
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)


def _less_skyline_kernel(dataset, filter_window, key, kernel) -> SkylineResult:
    """Kernel path: both passes scan blocks through the dominance kernel."""
    stats = SkylineStats()
    clock = RunClock(stats)
    encoder = RecordEncoder(dataset.schema)

    # ------------------------------------------------------------------ #
    # Pass 1: elimination filter while "reading the input for sorting".
    # The elite window is a kernel store plus a parallel score list; the
    # worst-scoring member is replaced when a better-scoring record arrives.
    # ------------------------------------------------------------------ #
    _, elite_store = record_store_for(dataset.schema, kernel, encoder=encoder)
    elite_scores: list[float] = []
    survivors: list[tuple[Record, tuple[tuple[float, ...], tuple[int, ...]]]] = []
    for record in dataset.records:
        stats.points_examined += 1
        score = key(record)
        encoded = encoder.encode(record)
        if elite_store.any_dominates(*encoded, counter=stats):
            continue
        survivors.append((record, encoded))
        if filter_window <= 0:
            continue
        if len(elite_scores) < filter_window:
            elite_store.append(*encoded)
            elite_scores.append(score)
        else:
            worst = max(range(len(elite_scores)), key=elite_scores.__getitem__)
            if score < elite_scores[worst]:
                keep = [i != worst for i in range(len(elite_scores))]
                elite_store.compress(keep)
                del elite_scores[worst]
                elite_store.append(*encoded)
                elite_scores.append(score)

    # ------------------------------------------------------------------ #
    # Pass 2: sort the survivors and filter like SFS.
    # ------------------------------------------------------------------ #
    survivors.sort(key=lambda item: key(item[0]))
    _, skyline_store = record_store_for(dataset.schema, kernel, encoder=encoder)
    skyline_ids: list[int] = []
    for record, encoded in survivors:
        if not skyline_store.any_dominates(*encoded, counter=stats):
            skyline_store.append(*encoded)
            skyline_ids.append(record.id)
            clock.record_result()

    clock.finish()
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)


def _less_skyline_predicate(dataset, filter_window, dominates, key) -> SkylineResult:
    """Reference path: record-at-a-time scans with a custom predicate."""
    stats = SkylineStats()
    clock = RunClock(stats)

    elite: list[tuple[float, Record]] = []
    survivors: list[Record] = []
    for record in dataset.records:
        stats.points_examined += 1
        score = key(record)
        eliminated = False
        for _, resident in elite:
            stats.dominance_checks += 1
            if dominates(resident, record):
                eliminated = True
                break
        if eliminated:
            continue
        survivors.append(record)
        if filter_window > 0:
            _update_filter(elite, record, score, filter_window)

    survivors.sort(key=key)
    skyline: list[Record] = []
    skyline_ids: list[int] = []
    for record in survivors:
        dominated = False
        for resident in skyline:
            stats.dominance_checks += 1
            if dominates(resident, record):
                dominated = True
                break
        if not dominated:
            skyline.append(record)
            skyline_ids.append(record.id)
            clock.record_result()

    clock.finish()
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)


def _update_filter(
    elite: list[tuple[float, Record]], record: Record, score: float, capacity: int
) -> None:
    """Keep the elimination filter populated with the best-scoring records."""
    if len(elite) < capacity:
        elite.append((score, record))
        elite.sort(key=lambda item: item[0])
        return
    worst_score, _ = elite[-1]
    if score < worst_score:
        elite[-1] = (score, record)
        elite.sort(key=lambda item: item[0])
