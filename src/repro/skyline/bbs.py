"""Branch-and-Bound Skyline (BBS) on an R-tree.

BBS (Papadias et al., TODS 2005) performs a best-first traversal of an R-tree
in ascending order of L1 mindist to the origin.  Entries (points or MBBs)
that are dominated by an already-found skyline point are pruned; every
non-dominated point popped from the heap is immediately a skyline point
(precedence holds because any potential dominator has a strictly smaller
mindist).  BBS is IO-optimal and optimally progressive.

Two entry points are provided:

* :func:`run_bbs` — the generic traversal loop, parameterized by the
  dominance predicates for points and rectangles.  sTSS, dTSS and the SDC
  baselines all reuse this loop with their own (t- or m-) dominance checks.
* :func:`bbs_skyline` — classical BBS for a dataset whose schema is entirely
  totally ordered, using a plain skyline-list dominance check.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable

from repro.data.dataset import Dataset
from repro.exceptions import SchemaError
from repro.index.pager import DiskSimulator
from repro.index.registry import resolve_index
from repro.index.rtree import NodeRef, RTree, RTreeEntry
from repro.kernels import resolve_kernel
from repro.skyline.base import RunClock, SkylineResult, SkylineStats

Payload = Hashable
Point = tuple[float, ...]


def vector_window(tree, store, *, exclude_equal: bool):
    """A bulk/suffix dominance window for :func:`run_bbs`, or ``None``.

    Flat trees test a popped node's children against ``store`` (a kernel
    :class:`~repro.kernels.base.VectorStore`) in one bulk call per
    expansion; pointer trees express the same tests through the per-item
    predicates, so they get no window.  ``store`` must stay append-only for
    the traversal (see :class:`~repro.index.flat.VectorDominanceWindow`).
    """
    if isinstance(tree, RTree):
        return None
    from repro.index.flat import VectorDominanceWindow

    return VectorDominanceWindow(store, exclude_equal=exclude_equal)


def run_bbs(
    tree: RTree,
    *,
    dominated_point: Callable[[Point, Payload], bool],
    dominated_rect: Callable[[Point, Point], bool],
    on_result: Callable[[Point, Payload], None],
    stats: SkylineStats,
    clock: RunClock | None = None,
    window=None,
) -> list[Payload]:
    """The generic BBS loop over one R-tree (pointer or flat).

    Parameters
    ----------
    tree:
        The R-tree to traverse (points indexed in a space where smaller
        coordinates are better on every dimension) — a pointer
        :class:`~repro.index.rtree.RTree` or an array-backed
        :class:`~repro.index.flat.FlatRTree`, which is handed to the
        columnar twin of this loop (:func:`repro.index.flat.run_bbs_flat`).
    dominated_point:
        Predicate deciding whether a data point is dominated by the results
        found so far.  It must update ``stats.dominance_checks`` itself if it
        performs pairwise checks.
    dominated_rect:
        Predicate deciding whether an MBB (given by its low/high corners) is
        dominated, i.e. whether *every* point inside it would be dominated.
    on_result:
        Callback invoked for every new skyline point (e.g. to insert virtual
        points into the main-memory R-tree).
    stats / clock:
        Work counters; ``clock.record_result()`` is called per result when a
        clock is supplied.
    window:
        Optional :class:`~repro.index.flat.VectorDominanceWindow` enabling
        the flat loop's one-kernel-call-per-expansion child testing when the
        dominance relation is plain vector dominance.  Ignored for pointer
        trees (their per-item predicates already express the same tests).

    Returns
    -------
    list
        Payloads of the skyline points in the order they were reported.
    """
    if not isinstance(tree, RTree):
        from repro.index.flat import run_bbs_flat

        return run_bbs_flat(
            tree,
            dominated_point=dominated_point,
            dominated_rect=dominated_rect,
            on_result=on_result,
            stats=stats,
            clock=clock,
            window=window,
        )
    results: list[Payload] = []
    traversal = tree.best_first()
    while traversal:
        _, item = traversal.pop()
        if isinstance(item, NodeRef):
            if dominated_rect(item.rect.low, item.rect.high):
                continue
            stats.nodes_expanded += 1
            traversal.expand(item)
            continue
        entry: RTreeEntry = item
        stats.points_examined += 1
        point = entry.rect.low
        if dominated_point(point, entry.payload):
            continue
        on_result(point, entry.payload)
        results.append(entry.payload)
        if clock is not None:
            clock.record_result()
    return results


def bbs_skyline(
    dataset: Dataset,
    *,
    max_entries: int = 32,
    disk: DiskSimulator | None = None,
    tree: RTree | None = None,
    kernel=None,
    index=None,
) -> SkylineResult:
    """Classical BBS for a totally ordered dataset.

    The dataset's schema must not contain PO attributes; use
    :func:`repro.core.stss.stss_skyline` for mixed schemas.  The skyline-list
    scans run through the block-dominance kernel (see :mod:`repro.kernels`);
    ``index`` selects the spatial backend (``"flat"``/``"pointer"`` or
    ``None`` for the process default, see :mod:`repro.index.registry`) — the
    flat tree bulk-loads straight off the dataset's numeric matrix and is
    traversed with one kernel bulk call per expanded node.
    """
    schema = dataset.schema
    if schema.num_partial_order:
        raise SchemaError("bbs_skyline handles TO-only schemas; use sTSS for PO attributes")

    stats = SkylineStats()
    if tree is None:
        if resolve_index(index) == "flat":
            from repro.index.flat import FlatRTree

            tree = FlatRTree.bulk_load(
                schema.num_total_order,
                dataset.to_numeric_matrix(),
                max_entries=max_entries,
                disk=disk,
            )
        else:
            entries = [
                (schema.canonical_to_values(record.values), record.id)
                for record in dataset.records
            ]
            tree = RTree.bulk_load(
                schema.num_total_order, entries, max_entries=max_entries, disk=disk
            )
    clock = RunClock(stats, disk)

    skyline_store = resolve_kernel(kernel).vector_store(schema.num_total_order)
    # Classical BBS must not prune an MBB whose best corner merely *equals*
    # a resident (the corner point itself could still be an equal, thus
    # undominated, skyline member inside the subtree).
    window = vector_window(tree, skyline_store, exclude_equal=True)

    def dominated_point(point: Point, payload: Payload) -> bool:
        return skyline_store.any_dominates(point, counter=stats)

    def dominated_rect(low: Point, high: Point) -> bool:
        # A resident equal to the MBB's best corner must not prune it: the
        # corner point itself could still be an (equal, thus undominated)
        # skyline member inside the subtree.
        return skyline_store.any_weakly_dominates(low, counter=stats, exclude_equal=True)

    def on_result(point: Point, payload: Payload) -> None:
        skyline_store.append(point)

    ordered = run_bbs(
        tree,
        dominated_point=dominated_point,
        dominated_rect=dominated_rect,
        on_result=on_result,
        stats=stats,
        clock=clock,
        window=window,
    )
    clock.finish()
    return SkylineResult(skyline_ids=[int(p) for p in ordered], stats=stats, progress=clock.progress)
