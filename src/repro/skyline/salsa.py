"""SaLSa: Sort and Limit Skyline algorithm (Bartolini, Ciaccia, Patella).

SaLSa is another pre-sorting skyline algorithm the paper cites among the
methods with the *precedence* property.  Its contribution over SFS is an
early-termination condition: records are sorted by a monotone function
(here ``minC``, the minimum canonical coordinate, with the sum as
tie-breaker) and the algorithm keeps track of a *stop point* — the skyline
record with the smallest maximum coordinate.  As soon as the sort key of the
next record is at least that stop value, no unread record can belong to the
skyline and the scan stops.

The early-termination reasoning relies on comparing coordinates across
dimensions, which is only meaningful for totally ordered attributes; SaLSa is
therefore restricted to TO-only schemas (sTSS covers the mixed case).
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.exceptions import SchemaError
from repro.kernels import resolve_kernel
from repro.skyline.base import RunClock, SkylineResult, SkylineStats


def salsa_skyline(dataset: Dataset, *, kernel=None) -> SkylineResult:
    """Compute the skyline of a TO-only dataset with SaLSa (early termination).

    Raises
    ------
    SchemaError
        If the schema contains partially ordered attributes.
    """
    schema = dataset.schema
    if schema.num_partial_order:
        raise SchemaError("salsa_skyline handles TO-only schemas; use sTSS for PO attributes")

    stats = SkylineStats()
    clock = RunClock(stats)

    points = [
        (schema.canonical_to_values(record.values), record.id) for record in dataset.records
    ]
    # Sort by (min coordinate, sum of coordinates): monotone w.r.t. dominance.
    points.sort(key=lambda item: (min(item[0]), sum(item[0])))

    skyline = resolve_kernel(kernel).vector_store(schema.num_total_order)
    skyline_ids: list[int] = []
    stop_value = float("inf")

    for coords, record_id in points:
        # Early termination: every unread record has a min coordinate at least
        # as large as this one.  Once that exceeds the stop value, the stop
        # point is at least as good on every dimension and strictly better on
        # the dimension realizing its maximum, so everything that follows is
        # dominated.  (The comparison is strict so that exact duplicates of
        # the stop point are still reported.)
        if min(coords) > stop_value:
            break
        stats.points_examined += 1
        if skyline.any_dominates(coords, counter=stats):
            continue
        skyline.append(coords)
        skyline_ids.append(record_id)
        stop_value = min(stop_value, max(coords))
        clock.record_result()

    clock.finish()
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
