"""Sort-Filter-Skyline (SFS) computation.

SFS (Chomicki et al., ICDE 2003) presorts the input by a monotone preference
function (here the sum of canonical TO values, optionally extended with a PO
"depth" score).  Presorting establishes the *precedence* property discussed in
Section III-A of the paper: once a record has been compared against all
earlier records it is guaranteed to be a skyline record, so SFS is optimally
progressive and its candidate list only ever contains true skyline records.

For mixed TO/PO schemas, the sort key must be monotone with respect to
ground-truth dominance.  We use the sum of canonical TO values plus, for each
PO attribute, the value's depth in its preference DAG (length of the longest
path from a root), which can only grow along preference edges.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable

from repro.data.columns import EncodedFrame, ordered_rows, resolve_frame_mode
from repro.data.dataset import Dataset, Record
from repro.data.schema import Schema
from repro.exceptions import DatasetError
from repro.kernels import resolve_kernel
from repro.kernels.tables import RecordTables
from repro.order.dag import PartialOrderDAG
from repro.order.toposort import topological_sort
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.dominance import record_store_for

Value = Hashable


def monotone_sort_key(schema: Schema) -> Callable[[Record], float]:
    """A preference function that is monotone w.r.t. ground-truth dominance.

    If record ``a`` dominates record ``b`` then ``key(a) < key(b)``; hence
    sorting by the key guarantees no record is preceded by a record it
    dominates.
    """
    depth_maps = [
        _depth_map(attribute.dag) for attribute in schema.partial_order_attributes
    ]
    po_positions = schema.partial_order_positions

    def key(record: Record) -> float:
        score = sum(schema.canonical_to_values(record.values))
        for depth_map, position in zip(depth_maps, po_positions):
            score += depth_map[record.values[position]]
        return score

    return key


def _depth_map(dag: PartialOrderDAG) -> dict[Value, int]:
    """Longest distance of every value from a root (monotone along edges)."""
    depth = {value: 0 for value in dag.values}
    for node in topological_sort(dag, strategy="kahn"):
        for child in dag.successors(node):
            depth[child] = max(depth[child], depth[node] + 1)
    return depth


def depth_columns(schema: Schema, frame: EncodedFrame) -> list[list[int]]:
    """Per PO attribute: DAG depth of every frame-canonical code.

    The columnar form of the :func:`monotone_sort_key` depth maps, indexed by
    the frame's code space so :meth:`EncodedFrame.monotone_keys
    <repro.data.columns.EncodedFrame.monotone_keys>` can gather them.
    """
    return [
        [
            _depth_map(attribute.dag)[value]
            for value in frame.codec.domains[attr_index]
        ]
        for attr_index, attribute in enumerate(schema.partial_order_attributes)
    ]


def _sfs_frame(schema: Schema, frame: EncodedFrame, kernel, rows=None) -> SkylineResult:
    """Columnar SFS: presort via ``argsort`` on the monotone key vector.

    The candidate scan is the same sequence of store queries as the record
    path — identical verdicts, discovery order and dominance-check counts —
    but the per-record encode step is gone: rows stream out of the frame.
    ``rows`` restricts the scan to a row subset without materializing a
    reduced frame; result ids are then positions within ``rows``, exactly as
    a ``frame.take(rows)`` run would number them.
    """
    stats = SkylineStats()
    clock = RunClock(stats)
    tables = RecordTables.from_schema(schema)
    codes = frame.remap_codes([table.code_of for table in tables.attributes], rows)
    keys = frame.monotone_keys(depth_columns(schema, frame), rows)
    order = ordered_rows(keys, uses_numpy=frame.uses_numpy)
    store = resolve_kernel(kernel).record_store(tables)
    to = frame.gather_to(rows)
    skyline_ids: list[int] = []
    for row in order:
        stats.points_examined += 1
        if not store.any_dominates(to[row], codes[row], counter=stats):
            store.append(to[row], codes[row])
            skyline_ids.append(row)
            clock.record_result()
    clock.finish()
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)


def sfs_skyline(
    dataset: Dataset | None = None,
    *,
    dominates: Callable[[Record, Record], bool] | None = None,
    key: Callable[[Record], float] | None = None,
    kernel=None,
    frame: EncodedFrame | None = None,
    rows=None,
    use_frame: bool | None = None,
) -> SkylineResult:
    """Compute the skyline of ``dataset`` with Sort-Filter-Skyline.

    The skyline-list scan runs through the block-dominance kernel (see
    :mod:`repro.kernels`); passing an explicit ``dominates`` predicate
    falls back to the record-at-a-time reference path.  With the frame path
    enabled (``frame`` given, or ``use_frame``/``REPRO_FRAME``, on by
    default when NumPy is available) the presort and scan run columnar over
    an :class:`~repro.data.columns.EncodedFrame`; ``dataset`` may then be
    ``None``.
    """
    if dataset is None and frame is None:
        raise DatasetError("sfs_skyline needs a dataset or an encoded frame")
    schema = dataset.schema if dataset is not None else frame.schema
    if dominates is None and key is None:
        if frame is None and resolve_frame_mode(use_frame):
            frame = EncodedFrame.from_dataset(dataset)
        if frame is not None:
            return _sfs_frame(schema, frame, kernel, rows)
    if dataset is None or rows is not None:
        raise DatasetError(
            "sfs_skyline needs a dataset (and no row subset) when a custom "
            "key or dominance predicate bypasses the columnar path"
        )
    key = key or monotone_sort_key(schema)

    stats = SkylineStats()
    clock = RunClock(stats)

    ordered = sorted(dataset.records, key=key)
    skyline_ids: list[int] = []
    if dominates is None:
        encoder, store = record_store_for(schema, kernel)
        for candidate in ordered:
            stats.points_examined += 1
            to_values, po_codes = encoder.encode(candidate)
            if not store.any_dominates(to_values, po_codes, counter=stats):
                store.append(to_values, po_codes)
                skyline_ids.append(candidate.id)
                clock.record_result()
    else:
        skyline: list[Record] = []
        for candidate in ordered:
            stats.points_examined += 1
            dominated = False
            for resident in skyline:
                stats.dominance_checks += 1
                if dominates(resident, candidate):
                    dominated = True
                    break
            if not dominated:
                skyline.append(candidate)
                skyline_ids.append(candidate.id)
                clock.record_result()
    clock.finish()
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
