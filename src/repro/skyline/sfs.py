"""Sort-Filter-Skyline (SFS) computation.

SFS (Chomicki et al., ICDE 2003) presorts the input by a monotone preference
function (here the sum of canonical TO values, optionally extended with a PO
"depth" score).  Presorting establishes the *precedence* property discussed in
Section III-A of the paper: once a record has been compared against all
earlier records it is guaranteed to be a skyline record, so SFS is optimally
progressive and its candidate list only ever contains true skyline records.

For mixed TO/PO schemas, the sort key must be monotone with respect to
ground-truth dominance.  We use the sum of canonical TO values plus, for each
PO attribute, the value's depth in its preference DAG (length of the longest
path from a root), which can only grow along preference edges.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable

from repro.data.dataset import Dataset, Record
from repro.data.schema import Schema
from repro.order.dag import PartialOrderDAG
from repro.order.toposort import topological_sort
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.dominance import record_store_for

Value = Hashable


def monotone_sort_key(schema: Schema) -> Callable[[Record], float]:
    """A preference function that is monotone w.r.t. ground-truth dominance.

    If record ``a`` dominates record ``b`` then ``key(a) < key(b)``; hence
    sorting by the key guarantees no record is preceded by a record it
    dominates.
    """
    depth_maps = [
        _depth_map(attribute.dag) for attribute in schema.partial_order_attributes
    ]
    po_positions = schema.partial_order_positions

    def key(record: Record) -> float:
        score = sum(schema.canonical_to_values(record.values))
        for depth_map, position in zip(depth_maps, po_positions):
            score += depth_map[record.values[position]]
        return score

    return key


def _depth_map(dag: PartialOrderDAG) -> dict[Value, int]:
    """Longest distance of every value from a root (monotone along edges)."""
    depth = {value: 0 for value in dag.values}
    for node in topological_sort(dag, strategy="kahn"):
        for child in dag.successors(node):
            depth[child] = max(depth[child], depth[node] + 1)
    return depth


def sfs_skyline(
    dataset: Dataset,
    *,
    dominates: Callable[[Record, Record], bool] | None = None,
    key: Callable[[Record], float] | None = None,
    kernel=None,
) -> SkylineResult:
    """Compute the skyline of ``dataset`` with Sort-Filter-Skyline.

    The skyline-list scan runs through the block-dominance kernel (see
    :mod:`repro.kernels`); passing an explicit ``dominates`` predicate
    falls back to the record-at-a-time reference path.
    """
    schema = dataset.schema
    key = key or monotone_sort_key(schema)

    stats = SkylineStats()
    clock = RunClock(stats)

    ordered = sorted(dataset.records, key=key)
    skyline_ids: list[int] = []
    if dominates is None:
        encoder, store = record_store_for(schema, kernel)
        for candidate in ordered:
            stats.points_examined += 1
            to_values, po_codes = encoder.encode(candidate)
            if not store.any_dominates(to_values, po_codes, counter=stats):
                store.append(to_values, po_codes)
                skyline_ids.append(candidate.id)
                clock.record_result()
    else:
        skyline: list[Record] = []
        for candidate in ordered:
            stats.points_examined += 1
            dominated = False
            for resident in skyline:
                stats.dominance_checks += 1
                if dominates(resident, candidate):
                    dominated = True
                    break
            if not dominated:
                skyline.append(candidate)
                skyline_ids.append(candidate.id)
                clock.record_result()
    clock.finish()
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
