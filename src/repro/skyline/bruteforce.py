"""Brute-force skyline computation — the correctness oracle.

The O(n²) nested-loop skyline over ground-truth record dominance.  Every other
algorithm in the library (BNL, SFS, BBS, sTSS, BBS+, SDC, SDC+, dTSS) is
validated against this implementation in the test suite.
"""

from __future__ import annotations

from repro.data.dataset import Dataset, Record
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.dominance import dominates_records


def brute_force_skyline_records(dataset: Dataset) -> list[Record]:
    """The skyline records of ``dataset`` by exhaustive pairwise comparison."""
    schema = dataset.schema
    records = dataset.records
    skyline: list[Record] = []
    for candidate in records:
        dominated = any(
            other is not candidate and dominates_records(schema, other, candidate)
            for other in records
        )
        if not dominated:
            skyline.append(candidate)
    return skyline


def brute_force_skyline(dataset: Dataset) -> SkylineResult:
    """Brute-force skyline with the standard result/stats envelope."""
    stats = SkylineStats()
    clock = RunClock(stats)
    schema = dataset.schema
    records = dataset.records
    skyline_ids: list[int] = []
    for candidate in records:
        stats.points_examined += 1
        dominated = False
        for other in records:
            if other is candidate:
                continue
            stats.dominance_checks += 1
            if dominates_records(schema, other, candidate):
                dominated = True
                break
        if not dominated:
            skyline_ids.append(candidate.id)
            clock.record_result()
    clock.finish()
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
