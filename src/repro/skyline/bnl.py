"""Block Nested Loops (BNL) skyline computation.

The original external-memory skyline algorithm of Börzsönyi, Kossmann and
Stocker (ICDE 2001).  A window of candidate skyline records is maintained;
each incoming record is compared against the window: it is discarded if
dominated, evicts window records it dominates, and otherwise joins the window
(or is written to a temporary file / overflow list when the window is full,
triggering another pass).

BNL is *not* progressive — no record can be reported before the pass in which
it entered the window completes — which is one of the motivations for the
index-based methods the paper builds on.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.data.dataset import Dataset, Record
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.dominance import record_dominance_function


def bnl_skyline(
    dataset: Dataset,
    *,
    window_size: int | None = None,
    dominates: Callable[[Record, Record], bool] | None = None,
) -> SkylineResult:
    """Compute the skyline of ``dataset`` with Block Nested Loops.

    Parameters
    ----------
    dataset:
        The input relation (mixed TO/PO schemas are supported through the
        ground-truth dominance predicate).
    window_size:
        Maximum number of candidate records kept in memory per pass; ``None``
        means unbounded (a single pass).
    dominates:
        Optional dominance predicate override (defaults to ground-truth
        record dominance for the dataset's schema).
    """
    dominates = dominates or record_dominance_function(dataset.schema)
    stats = SkylineStats()
    clock = RunClock(stats)

    # Window entries carry the sequence number at which they entered the
    # window.  A window record can only be confirmed at the end of a pass if
    # it entered *before* the first record of that pass was pushed to the
    # overflow file — otherwise it has not been compared against every
    # deferred record and must be carried into the next pass as a candidate.
    window: list[tuple[int, Record]] = []
    confirmed: list[Record] = []
    pending: list[Record] = list(dataset.records)

    while pending:
        overflow: list[Record] = []
        sequence = 0
        first_overflow_sequence: int | None = None
        for candidate in pending:
            sequence += 1
            stats.points_examined += 1
            dominated = False
            survivors: list[tuple[int, Record]] = []
            for entry in window:
                resident = entry[1]
                stats.dominance_checks += 1
                if dominates(resident, candidate):
                    dominated = True
                    survivors.append(entry)
                    continue
                stats.dominance_checks += 1
                if dominates(candidate, resident):
                    continue  # resident evicted
                survivors.append(entry)
            window = survivors
            if dominated:
                continue
            if window_size is None or len(window) < window_size:
                window.append((sequence, candidate))
            else:
                if first_overflow_sequence is None:
                    first_overflow_sequence = sequence
                overflow.append(candidate)

        carried: list[Record] = []
        for inserted_at, resident in window:
            if first_overflow_sequence is None or inserted_at < first_overflow_sequence:
                confirmed.append(resident)
                clock.record_result()
            else:
                carried.append(resident)
        window = []
        pending = carried + overflow

    clock.finish()
    skyline_ids = sorted(record.id for record in confirmed)
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
