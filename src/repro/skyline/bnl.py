"""Block Nested Loops (BNL) skyline computation.

The original external-memory skyline algorithm of Börzsönyi, Kossmann and
Stocker (ICDE 2001).  A window of candidate skyline records is maintained;
each incoming record is compared against the window: it is discarded if
dominated, evicts window records it dominates, and otherwise joins the window
(or is written to a temporary file / overflow list when the window is full,
triggering another pass).

BNL is *not* progressive — no record can be reported before the pass in which
it entered the window completes — which is one of the motivations for the
index-based methods the paper builds on.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.data.dataset import Dataset, Record
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.dominance import RecordEncoder, record_store_for


def bnl_skyline(
    dataset: Dataset,
    *,
    window_size: int | None = None,
    dominates: Callable[[Record, Record], bool] | None = None,
    kernel=None,
) -> SkylineResult:
    """Compute the skyline of ``dataset`` with Block Nested Loops.

    Parameters
    ----------
    dataset:
        The input relation (mixed TO/PO schemas are supported through the
        ground-truth dominance predicate).
    window_size:
        Maximum number of candidate records kept in memory per pass; ``None``
        means unbounded (a single pass).
    dominates:
        Optional dominance predicate override (defaults to ground-truth
        record dominance for the dataset's schema).  Passing a predicate
        falls back to the record-at-a-time reference path.
    kernel:
        Dominance kernel backend used for the window scans (instance, name
        or ``None`` for the process default).
    """
    if dominates is None:
        return _bnl_skyline_kernel(dataset, window_size, kernel)
    return _bnl_skyline_predicate(dataset, window_size, dominates)


def _bnl_skyline_kernel(dataset, window_size, kernel) -> SkylineResult:
    """Kernel path: the candidate-vs-window test is one block dominance call."""
    stats = SkylineStats()
    clock = RunClock(stats)
    encoder = RecordEncoder(dataset.schema)

    # Window entries carry the sequence number at which they entered the
    # window (see the reference path below for the confirmation rule).  The
    # kernel store holds the window's encoded records in the same order as
    # ``window_meta``.
    _, window_store = record_store_for(dataset.schema, kernel, encoder=encoder)
    window_meta: list[tuple[int, Record]] = []
    confirmed: list[Record] = []
    pending: list[tuple[Record, tuple[tuple[float, ...], tuple[int, ...]]]] = [
        (record, encoder.encode(record)) for record in dataset.records
    ]

    while pending:
        overflow: list[tuple[Record, tuple[tuple[float, ...], tuple[int, ...]]]] = []
        sequence = 0
        first_overflow_sequence: int | None = None
        for candidate, encoded in pending:
            sequence += 1
            stats.points_examined += 1
            dominated, evicted = window_store.dominance_masks(*encoded, counter=stats)
            if dominated:
                # Window members form an antichain, so a dominated candidate
                # cannot evict anyone: the window is unchanged.
                continue
            if any(evicted):
                keep = [not flag for flag in evicted]
                window_store.compress(keep)
                window_meta = [entry for entry, k in zip(window_meta, keep) if k]
            if window_size is None or len(window_meta) < window_size:
                window_store.append(*encoded)
                window_meta.append((sequence, candidate))
            else:
                if first_overflow_sequence is None:
                    first_overflow_sequence = sequence
                overflow.append((candidate, encoded))

        carried: list[tuple[Record, tuple[tuple[float, ...], tuple[int, ...]]]] = []
        for inserted_at, resident in window_meta:
            if first_overflow_sequence is None or inserted_at < first_overflow_sequence:
                confirmed.append(resident)
                clock.record_result()
            else:
                carried.append((resident, encoder.encode(resident)))
        window_meta = []
        window_store.compress([False] * len(window_store))
        pending = carried + overflow

    clock.finish()
    skyline_ids = sorted(record.id for record in confirmed)
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)


def _bnl_skyline_predicate(dataset, window_size, dominates) -> SkylineResult:
    """Reference path: record-at-a-time window scans with a custom predicate."""
    stats = SkylineStats()
    clock = RunClock(stats)

    # Window entries carry the sequence number at which they entered the
    # window.  A window record can only be confirmed at the end of a pass if
    # it entered *before* the first record of that pass was pushed to the
    # overflow file — otherwise it has not been compared against every
    # deferred record and must be carried into the next pass as a candidate.
    window: list[tuple[int, Record]] = []
    confirmed: list[Record] = []
    pending: list[Record] = list(dataset.records)

    while pending:
        overflow: list[Record] = []
        sequence = 0
        first_overflow_sequence: int | None = None
        for candidate in pending:
            sequence += 1
            stats.points_examined += 1
            dominated = False
            survivors: list[tuple[int, Record]] = []
            for entry in window:
                resident = entry[1]
                stats.dominance_checks += 1
                if dominates(resident, candidate):
                    dominated = True
                    survivors.append(entry)
                    continue
                stats.dominance_checks += 1
                if dominates(candidate, resident):
                    continue  # resident evicted
                survivors.append(entry)
            window = survivors
            if dominated:
                continue
            if window_size is None or len(window) < window_size:
                window.append((sequence, candidate))
            else:
                if first_overflow_sequence is None:
                    first_overflow_sequence = sequence
                overflow.append(candidate)

        carried: list[Record] = []
        for inserted_at, resident in window:
            if first_overflow_sequence is None or inserted_at < first_overflow_sequence:
                confirmed.append(resident)
                clock.record_result()
            else:
                carried.append(resident)
        window = []
        pending = carried + overflow

    clock.finish()
    skyline_ids = sorted(record.id for record in confirmed)
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
