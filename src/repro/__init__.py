"""Topologically Sorted Skylines for Partially Ordered Domains — reproduction.

This package reproduces Sacharidis, Papadopoulos and Papadias, *Topologically
Sorted Skylines for Partially Ordered Domains*, ICDE 2009: the TSS framework
(topological-sort mapping + exact interval-based t-dominance), the sTSS static
and dTSS dynamic skyline algorithms, the Chan et al. baselines (BBS+, SDC,
SDC+) they are compared against, and every substrate needed to run them
(partial-order DAGs, interval encodings, synthetic data generators, an R-tree
with simulated IO accounting) plus the benchmark harness regenerating the
paper's figures.

Quick start
-----------
>>> from repro import (PartialOrderDAG, Schema, TotalOrderAttribute,
...                    PartialOrderAttribute, Dataset, skyline_records)
>>> airlines = PartialOrderDAG("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
>>> schema = Schema([TotalOrderAttribute("price"), TotalOrderAttribute("stops"),
...                  PartialOrderAttribute("airline", airlines)])
>>> tickets = Dataset(schema, [(1800, 0, "a"), (1400, 1, "a"), (1000, 1, "b"), (500, 2, "d")])
>>> sorted(r.value(schema, "price") for r in skyline_records(tickets))
[500, 1000, 1400, 1800]

For repeated runs over the same data, pack once and reopen via the storage
plane: ``repro.pack(tickets, "tickets.rpro")`` then
``engine = repro.open_dataset("tickets.rpro")`` — the packed file is
memory-mapped (zero-copy, page-cache-shared) instead of re-encoded.
"""

from repro.api import open_dataset, pack
from repro.config import RuntimeConfig
from repro.core.framework import ALGORITHMS, compute_skyline, skyline_records
from repro.core.stss import stss_skyline
from repro.data.dataset import Dataset, Record
from repro.data.generator import generate_dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.data.workloads import WorkloadSpec, paper_defaults
from repro.dynamic.dtss import DTSSIndex, dtss_skyline
from repro.dynamic.sdc_dynamic import sdc_plus_dynamic_skyline
from repro.engine.batch import BatchQuery, BatchQueryEngine
from repro.exceptions import ReproError, StoreError
from repro.kernels import available_kernels, get_kernel, set_default_kernel
from repro.order.dag import PartialOrderDAG
from repro.order.encoding import DomainEncoding, encode_domain
from repro.skyline.base import SkylineResult, SkylineStats
from repro.store import DatasetStore, pack_dataset

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "PartialOrderDAG",
    "DomainEncoding",
    "encode_domain",
    "Schema",
    "TotalOrderAttribute",
    "PartialOrderAttribute",
    "Dataset",
    "Record",
    "generate_dataset",
    "WorkloadSpec",
    "paper_defaults",
    "SkylineResult",
    "SkylineStats",
    "compute_skyline",
    "skyline_records",
    "stss_skyline",
    "ALGORITHMS",
    "DTSSIndex",
    "dtss_skyline",
    "sdc_plus_dynamic_skyline",
    "BatchQuery",
    "BatchQueryEngine",
    "available_kernels",
    "get_kernel",
    "set_default_kernel",
    "RuntimeConfig",
    "StoreError",
    "DatasetStore",
    "open_dataset",
    "pack",
    "pack_dataset",
]
