"""A blocking JSON-lines client for the query service, with typed retries.

Used by the ``repro query`` CLI subcommand, the integration tests and the CI
smoke test.  One :class:`ServiceClient` holds one TCP connection; requests
and responses are matched one-to-one, so a client instance must not be shared
across threads (open one per thread — the server multiplexes connections).

Fault tolerance:

* Transport failures (connect refused, read timeout, connection reset) are
  retried with exponential backoff plus jitter — but only for requests that
  are safe to re-deliver: the read-only ops (``ping``/``stats``/``query``)
  always, mutations (``insert``/``delete``) **only** when the caller attached
  an idempotency ``token`` (the server replays the remembered response
  instead of re-applying).  A token-less mutation fails on the first
  transport error, because the client cannot know whether it was applied.
* When every attempt fails, :class:`~repro.exceptions.RetryExhaustedError`
  carries the per-attempt failure history; every transport error message
  names ``host:port`` and distinguishes a timeout from a connection reset.
* A server-side deadline failure (``error_kind`` =
  :data:`~repro.service.protocol.ERROR_KIND_DEADLINE`) raises
  :class:`~repro.exceptions.DeadlineExceededError` instead of a generic
  :class:`~repro.exceptions.ServiceError` — deadline expiry is an answer,
  not a transport failure, and is therefore never retried.
"""

from __future__ import annotations

import json
import random
import socket
import time
from collections.abc import Mapping

from repro.exceptions import (
    DeadlineExceededError,
    RetryExhaustedError,
    ServiceError,
)
from repro.faults.registry import trip as _fault_trip
from repro.order.dag import PartialOrderDAG
from repro.service import protocol

DEFAULT_HOST = "127.0.0.1"
#: Default TCP port of ``repro serve`` (unassigned range, mnemonic: ICDE'09).
DEFAULT_PORT = 7409

#: Ops safe to re-deliver unconditionally (they change no server state).
IDEMPOTENT_OPS = frozenset({"ping", "stats", "query"})


def _injected_reset(point: str) -> ConnectionResetError:
    # The injected failure mode of the client transport: a reset, so the
    # normal classification/retry path handles it like the real thing.
    return ConnectionResetError(f"injected fault at {point}")


class ServiceClient:
    """One blocking connection to a running query service."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 60.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_max: float = 1.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Extra attempts after the first failure (0 disables retrying).
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_max = backoff_max
        self._jitter = random.Random()
        self._sock: socket.socket | None = None
        self._file = None
        # Connect eagerly so an unreachable service fails fast at
        # construction; later transport failures reconnect lazily.
        self._connect()

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except socket.timeout as error:
            raise ServiceError(
                f"connect to {self.host}:{self.port} timed out "
                f"after {self.timeout:g}s"
            ) from error
        except OSError as error:
            raise ServiceError(
                f"cannot connect to {self.host}:{self.port}: {error}"
            ) from error
        self._file = self._sock.makefile("rwb")

    def _close_transport(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - close of a dead socket
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close of a dead socket
                pass
            self._sock = None

    def _transport_error(self, error: OSError) -> ServiceError:
        """Classify one OS-level failure: timeout vs reset vs the rest."""
        where = f"{self.host}:{self.port}"
        if isinstance(error, socket.timeout):
            return ServiceError(
                f"request to {where} timed out after {self.timeout:g}s"
            )
        if isinstance(error, ConnectionResetError):
            return ServiceError(f"connection reset by {where}: {error}")
        return ServiceError(f"request to {where} failed: {error}")

    def _send_and_receive(self, payload: Mapping[str, object]) -> dict[str, object]:
        """One request/response exchange on the current connection."""
        if self._file is None:
            self._connect()
        assert self._file is not None
        try:
            _fault_trip("client.socket", exc=_injected_reset)
            self._file.write(json.dumps(dict(payload)).encode("utf-8") + b"\n")
            self._file.flush()
            line = self._file.readline()
        except OSError as error:
            raise self._transport_error(error) from error
        if not line:
            raise ServiceError(
                f"service at {self.host}:{self.port} closed the connection"
            )
        try:
            response = json.loads(line)
        except ValueError as error:
            raise ServiceError(
                f"malformed response from {self.host}:{self.port}: {error}"
            ) from error
        if not isinstance(response, dict):
            raise ServiceError(
                f"response from {self.host}:{self.port} is not a JSON object"
            )
        return response

    @staticmethod
    def _retry_safe(payload: Mapping[str, object]) -> bool:
        """Whether re-delivering this request cannot double-apply anything."""
        op = payload.get("op", "query")
        if op in IDEMPOTENT_OPS:
            return True
        return op in ("insert", "delete") and bool(payload.get("token"))

    def request(self, payload: Mapping[str, object]) -> dict[str, object]:
        """Send one request object, return the raw response object.

        Transport failures are retried (with exponential backoff + jitter)
        only when :meth:`_retry_safe` says re-delivery is harmless; after
        the last attempt, :class:`~repro.exceptions.RetryExhaustedError`
        reports every attempt's failure.
        """
        attempts = 1 + (self.retries if self._retry_safe(payload) else 0)
        failures: list[str] = []
        delay = self.backoff
        while True:
            try:
                return self._send_and_receive(payload)
            except ServiceError as error:
                # Drop the (possibly half-written) connection either way; a
                # retry reconnects lazily in _send_and_receive.
                self._close_transport()
                failures.append(str(error))
                if len(failures) >= attempts:
                    if len(failures) == 1:
                        raise
                    raise RetryExhaustedError(
                        f"request to {self.host}:{self.port} failed after "
                        f"{len(failures)} attempts: {error}",
                        attempts=tuple(failures),
                    ) from error
                time.sleep(delay * (0.5 + self._jitter.random()))
                delay = min(delay * 2.0, self.backoff_max)

    def checked_request(self, payload: Mapping[str, object]) -> dict[str, object]:
        """Like :meth:`request`, but raises a typed error on ``ok: false``."""
        response = self.request(payload)
        if not response.get("ok"):
            message = str(response.get("error", "unknown service error"))
            if response.get("error_kind") == protocol.ERROR_KIND_DEADLINE:
                raise DeadlineExceededError(message)
            raise ServiceError(message)
        return response

    def close(self) -> None:
        self._close_transport()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def ping(self) -> dict[str, object]:
        return self.checked_request({"op": "ping"})

    def stats(self) -> dict[str, object]:
        return self.checked_request({"op": "stats"})["stats"]  # type: ignore[return-value]

    def query(
        self,
        *,
        seed: int | None = None,
        overrides: Mapping[str, PartialOrderDAG] | None = None,
        name: str | None = None,
        omit_ids: bool = False,
        deadline_ms: float | None = None,
    ) -> dict[str, object]:
        """One skyline query: by server-side ``seed``, explicit ``overrides``
        (encoded for the wire here), or neither for the base preferences.
        ``deadline_ms`` bounds the server-side evaluation; expiry raises
        :class:`~repro.exceptions.DeadlineExceededError`."""
        payload: dict[str, object] = {"op": "query"}
        if seed is not None:
            payload["seed"] = seed
        if overrides is not None:
            payload["overrides"] = protocol.encode_overrides(overrides)
        if name is not None:
            payload["name"] = name
        if omit_ids:
            payload["omit_ids"] = True
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.checked_request(payload)

    def insert(self, rows, *, token: str | None = None) -> list[int]:
        """Insert records (lists of attribute values in schema order);
        returns their newly allocated stable ids.  Pass an idempotency
        ``token`` (any unique string) to make the insert retry-safe."""
        payload: dict[str, object] = {
            "op": "insert",
            "rows": [list(row) for row in rows],
        }
        if token is not None:
            payload["token"] = token
        response = self.checked_request(payload)
        return [int(record_id) for record_id in response["ids"]]

    def delete(self, ids, *, token: str | None = None) -> list[int]:
        """Delete records by stable id; returns the ids actually deleted.
        Pass an idempotency ``token`` to make the delete retry-safe."""
        payload: dict[str, object] = {
            "op": "delete",
            "ids": [int(record_id) for record_id in ids],
        }
        if token is not None:
            payload["token"] = token
        response = self.checked_request(payload)
        return [int(record_id) for record_id in response["ids"]]

    def compact(self) -> dict[str, object]:
        """Fold the service's delta plane into a fresh base."""
        return self.checked_request({"op": "compact"})["compaction"]  # type: ignore[return-value]

    def shutdown(self) -> dict[str, object]:
        """Ask the server to stop; the server answers before stopping."""
        return self.checked_request({"op": "shutdown"})


def wait_for_service(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    timeout: float = 30.0,
    interval: float = 0.2,
) -> None:
    """Block until a service answers ``ping`` at ``host:port`` (or raise).

    The readiness probe used by the CI smoke test and ``repro query --wait``.
    Probes with ``retries=0``: this loop IS the retry policy.
    """
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(
                host, port, timeout=min(5.0, timeout), retries=0
            ) as client:
                client.ping()
            return
        except ServiceError as error:
            last_error = error
            time.sleep(interval)
    raise ServiceError(
        f"service at {host}:{port} not ready after {timeout:.0f}s: {last_error}"
    )
