"""A blocking JSON-lines client for the query service.

Used by the ``repro query`` CLI subcommand, the integration tests and the CI
smoke test.  One :class:`ServiceClient` holds one TCP connection; requests
and responses are matched one-to-one, so a client instance must not be shared
across threads (open one per thread — the server multiplexes connections).
"""

from __future__ import annotations

import json
import socket
import time
from collections.abc import Mapping

from repro.exceptions import ServiceError
from repro.order.dag import PartialOrderDAG
from repro.service import protocol

DEFAULT_HOST = "127.0.0.1"
#: Default TCP port of ``repro serve`` (unassigned range, mnemonic: ICDE'09).
DEFAULT_PORT = 7409


class ServiceClient:
    """One blocking connection to a running query service."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 60.0,
    ) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as error:
            raise ServiceError(f"cannot connect to {host}:{port}: {error}") from error
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def request(self, payload: Mapping[str, object]) -> dict[str, object]:
        """Send one request object, return the raw response object."""
        try:
            self._file.write(json.dumps(dict(payload)).encode("utf-8") + b"\n")
            self._file.flush()
            line = self._file.readline()
        except OSError as error:
            raise ServiceError(f"service connection failed: {error}") from error
        if not line:
            raise ServiceError("service closed the connection")
        try:
            response = json.loads(line)
        except ValueError as error:
            raise ServiceError(f"malformed service response: {error}") from error
        if not isinstance(response, dict):
            raise ServiceError("service response is not a JSON object")
        return response

    def checked_request(self, payload: Mapping[str, object]) -> dict[str, object]:
        """Like :meth:`request`, but raises :class:`ServiceError` on ``ok: false``."""
        response = self.request(payload)
        if not response.get("ok"):
            raise ServiceError(str(response.get("error", "unknown service error")))
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def ping(self) -> dict[str, object]:
        return self.checked_request({"op": "ping"})

    def stats(self) -> dict[str, object]:
        return self.checked_request({"op": "stats"})["stats"]  # type: ignore[return-value]

    def query(
        self,
        *,
        seed: int | None = None,
        overrides: Mapping[str, PartialOrderDAG] | None = None,
        name: str | None = None,
        omit_ids: bool = False,
    ) -> dict[str, object]:
        """One skyline query: by server-side ``seed``, explicit ``overrides``
        (encoded for the wire here), or neither for the base preferences."""
        payload: dict[str, object] = {"op": "query"}
        if seed is not None:
            payload["seed"] = seed
        if overrides is not None:
            payload["overrides"] = protocol.encode_overrides(overrides)
        if name is not None:
            payload["name"] = name
        if omit_ids:
            payload["omit_ids"] = True
        return self.checked_request(payload)

    def insert(self, rows) -> list[int]:
        """Insert records (lists of attribute values in schema order);
        returns their newly allocated stable ids."""
        response = self.checked_request(
            {"op": "insert", "rows": [list(row) for row in rows]}
        )
        return [int(record_id) for record_id in response["ids"]]

    def delete(self, ids) -> list[int]:
        """Delete records by stable id; returns the ids actually deleted."""
        response = self.checked_request(
            {"op": "delete", "ids": [int(record_id) for record_id in ids]}
        )
        return [int(record_id) for record_id in response["ids"]]

    def compact(self) -> dict[str, object]:
        """Fold the service's delta plane into a fresh base."""
        return self.checked_request({"op": "compact"})["compaction"]  # type: ignore[return-value]

    def shutdown(self) -> dict[str, object]:
        """Ask the server to stop; the server answers before stopping."""
        return self.checked_request({"op": "shutdown"})


def wait_for_service(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    timeout: float = 30.0,
    interval: float = 0.2,
) -> None:
    """Block until a service answers ``ping`` at ``host:port`` (or raise).

    The readiness probe used by the CI smoke test and ``repro query --wait``.
    """
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(host, port, timeout=min(5.0, timeout)) as client:
                client.ping()
            return
        except ServiceError as error:
            last_error = error
            time.sleep(interval)
    raise ServiceError(
        f"service at {host}:{port} not ready after {timeout:.0f}s: {last_error}"
    )
