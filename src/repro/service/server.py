"""The asyncio query server behind ``repro serve``.

:class:`QueryService` owns one :class:`~repro.engine.batch.BatchQueryEngine`
(and through it, optionally, a sharded executor with a persistent worker
pool).  All connected clients share the engine — and therefore its
per-PO-group prefilter, its bounded per-topology result cache and the pool —
which is the whole point of running the engine as a service instead of a
per-query process.

Queries are CPU-bound, so they run on the event loop's default thread-pool
executor.  The engine itself is a concurrency-safe façade: concurrent
clients querying *distinct* topologies interleave their shard-local skyline
phases and synchronize only at the engine's merge and cache boundaries
(per-``dag_signature`` locks), while clients querying the *same* topology
elect one computing thread and share its cached result.  The service's
global lock therefore guards only pool lifecycle and shutdown: an in-flight
counter lets :meth:`QueryService.serve_until_shutdown` drain running
queries before the engine (and its worker pool) is closed.
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import threading
import time

from repro.data.dataset import Dataset
from repro.engine.batch import (
    DEFAULT_CACHE_SIZE,
    BatchQuery,
    BatchQueryEngine,
    random_query_preferences,
)
from repro.engine.lru import LRUDict
from repro.exceptions import DeadlineExceededError, QueryError, ReproError
from repro.faults.registry import describe as _faults_describe
from repro.faults.registry import trip_async as _fault_trip_async
from repro.service import protocol

#: Refuse request lines larger than this (1 MB covers any sane DAG override).
MAX_REQUEST_BYTES = 1 << 20

#: Remembered mutation idempotency tokens (token -> successful response).
TOKEN_CACHE_SIZE = 1024


class QueryService:
    """A shared-engine skyline query service speaking the JSON protocol."""

    def __init__(
        self,
        dataset: "Dataset | BatchQueryEngine | object",
        *,
        kernel=None,
        workers: int | str | None = None,
        num_shards: int | None = None,
        partitioner="round-robin",
        merge_strategy: str | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_entries: int = 32,
        prefilter: bool = True,
        use_frame: bool | None = None,
        index=None,
        mmap: bool | None = None,
    ) -> None:
        # The first argument is anything the engine can open: a Dataset, a
        # DatasetStore, a packed-store path — or a ready-made engine (the
        # ``repro.api`` facade hands one over), whose construction options
        # then win over this constructor's.
        if isinstance(dataset, BatchQueryEngine):
            self.engine = dataset
        else:
            self.engine = BatchQueryEngine(
                dataset,
                kernel=kernel,
                workers=workers,
                num_shards=num_shards,
                partitioner=partitioner,
                merge_strategy=merge_strategy,
                cache_size=cache_size,
                max_entries=max_entries,
                prefilter=prefilter,
                use_frame=use_frame,
                index=index,
                mmap=mmap,
            )
        # Start the worker pool (if any) now, while the process is still
        # single-threaded — the event loop and executor threads come later,
        # and forking after they exist is unsafe (see ShardedExecutor.start).
        if self.engine.executor is not None:
            self.engine.executor.start()
        self.schema = self.engine.schema
        self.started_at = time.time()
        self.connections_served = 0
        self.requests_served = 0
        self.query_seconds_total = 0.0
        self.query_seconds_max = 0.0
        # Lifecycle only: queries no longer serialize on a global lock (the
        # engine synchronizes internally, per topology); this lock guards
        # engine/pool shutdown against racing lifecycle calls, and the
        # in-flight counter + condition let shutdown drain running queries.
        self._lifecycle_lock = asyncio.Lock()
        self._inflight = 0
        self._drained = asyncio.Condition()
        self._shutdown = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        # Replay cache for mutation idempotency tokens.  Guarded by a thread
        # lock (not an asyncio one): the check-run-remember sequence executes
        # inside worker threads, and holding the lock across the engine call
        # is what makes "same token, same response, applied once" atomic —
        # the engine's write latch serializes mutations anyway.
        self._idempotent: LRUDict[str, dict[str, object]] = LRUDict(TOKEN_CACHE_SIZE)
        self._token_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, host: str, port: int) -> tuple[str, int]:
        """Bind and start serving; returns the actual ``(host, port)``.

        Pass ``port=0`` for an ephemeral port (tests, CI smoke).
        """
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_REQUEST_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until a client sends ``shutdown`` (or the task is cancelled)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._shutdown.wait()
            # Unblock handlers parked in readline() on idle connections —
            # Server.wait_closed() (the context exit) waits for them on
            # Python >= 3.12, so a lingering client must not hold us up.
            for writer in list(self._connections):
                writer.close()
        # On Python < 3.12 wait_closed() does NOT wait for handlers, so an
        # in-flight query may still hold the worker pool; terminating the
        # pool mid-map would strand its executor thread forever.  Drain the
        # in-flight queries first, then close the engine under the lifecycle
        # lock.
        async with self._drained:
            await self._drained.wait_for(lambda: self._inflight == 0)
        async with self._lifecycle_lock:
            self.engine.close()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    def install_signal_handlers(self) -> None:
        """Make SIGTERM/SIGINT trigger the same clean shutdown as the op.

        The handler only sets the shutdown flag; :meth:`serve_until_shutdown`
        then stops accepting, drains in-flight requests and closes the
        engine (and its worker pool) exactly as a client ``shutdown`` would.
        Must run inside the event loop (``asyncio`` signal handlers are
        loop-bound); a no-op on platforms without ``add_signal_handler``.
        """
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                break

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        self._connections.add(writer)
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except ConnectionError:
                    break
                except ValueError:  # request line exceeded MAX_REQUEST_BYTES
                    await self._respond(
                        writer, protocol.error_response("request too large")
                    )
                    break
                if not line:
                    break
                response = await self._dispatch_line(line)
                delivered = await self._respond(writer, response)
                if response.get("stopping"):
                    # Honor the shutdown even when the acknowledgment could
                    # not be delivered (fire-and-forget client).
                    self.request_shutdown()
                    break
                if not delivered:
                    break
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform-dependent
                pass

    async def _respond(self, writer: asyncio.StreamWriter, response: dict) -> bool:
        """Write one response line; False when the client is already gone."""
        try:
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    async def _dispatch_line(self, line: bytes) -> dict[str, object]:
        try:
            request = json.loads(line)
        except ValueError:
            return protocol.error_response("request is not valid JSON")
        if not isinstance(request, dict):
            return protocol.error_response("request must be a JSON object")
        self.requests_served += 1
        op = request.get("op", "query")
        try:
            # The fault-injection seam of the whole dispatch path: a raise
            # here relays as a typed error response, a delay awaits without
            # blocking the loop (chaos tests drive both).
            await _fault_trip_async("service.handler")
            if op == "ping":
                return protocol.ok_response(pong=True, protocol=protocol.PROTOCOL_VERSION)
            if op == "stats":
                return protocol.ok_response(stats=self.stats())
            if op == "shutdown":
                return protocol.ok_response(stopping=True)
            if op == "query":
                return await self._run_query(request)
            if op == "insert":
                return await self._run_insert(request)
            if op == "delete":
                return await self._run_delete(request)
            if op == "compact":
                return await self._run_compact(request)
            return protocol.error_response(f"unknown op {op!r}")
        except DeadlineExceededError as error:
            return protocol.error_response(
                str(error), kind=protocol.ERROR_KIND_DEADLINE
            )
        except ReproError as error:
            return protocol.error_response(str(error))

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def _build_query(self, request: dict[str, object]) -> BatchQuery:
        seed = request.get("seed")
        overrides_payload = request.get("overrides")
        if seed is not None and overrides_payload is not None:
            raise QueryError("a query takes 'seed' or 'overrides', not both")
        if seed is not None:
            if not isinstance(seed, int):
                raise QueryError("'seed' must be an integer")
            overrides = random_query_preferences(self.schema, seed)
            default_name = f"q{seed}"
        else:
            overrides = protocol.decode_overrides(overrides_payload, self.schema)
            default_name = "query" if overrides else "base"
        name = request.get("name")
        if name is not None and not isinstance(name, str):
            raise QueryError("'name' must be a string")
        return BatchQuery(name=name or default_name, dag_overrides=overrides)

    @staticmethod
    def _deadline_of(request: dict[str, object]) -> float | None:
        """The request's absolute monotonic deadline (``None`` = unbounded)."""
        deadline_ms = protocol.decode_deadline_ms(request.get("deadline_ms"))
        if deadline_ms is None:
            return None
        return time.monotonic() + deadline_ms / 1000.0

    async def _bounded(self, future: "asyncio.Future", deadline: float | None):
        """Await ``future``, bounding the wait by the request deadline.

        Belt and braces with the engine's own between-phase deadline checks:
        the engine aborts *cooperatively* at phase boundaries, while this
        ``wait_for`` guarantees the *response* deadline even if a phase
        stalls (a hung pool, an injected delay).  A timed-out worker thread
        is abandoned — the engine's next deadline check unwinds it.
        """
        if deadline is None:
            return await future
        try:
            return await asyncio.wait_for(
                future, timeout=max(deadline - time.monotonic(), 0.001)
            )
        except asyncio.TimeoutError:
            raise DeadlineExceededError(
                "request deadline exceeded awaiting the engine"
            ) from None

    async def _run_query(self, request: dict[str, object]) -> dict[str, object]:
        query = self._build_query(request)
        deadline = self._deadline_of(request)
        loop = asyncio.get_running_loop()
        # No global lock here: the engine's per-topology locks let distinct
        # topologies interleave their shard-local phases across executor
        # threads; the in-flight counter only keeps shutdown honest.
        async with self._drained:
            # Checked under the condition's lock so shutdown's drain can
            # never miss a query that slipped in after the flag was set.
            if self._shutdown.is_set():
                return protocol.error_response("service is shutting down")
            self._inflight += 1
        try:
            result = await self._bounded(
                loop.run_in_executor(
                    None,
                    functools.partial(
                        self.engine.run_query, query, deadline=deadline
                    ),
                ),
                deadline,
            )
        finally:
            async with self._drained:
                self._inflight -= 1
                self._drained.notify_all()
        self.query_seconds_total += result.seconds
        self.query_seconds_max = max(self.query_seconds_max, result.seconds)
        payload: dict[str, object] = {
            "name": result.name,
            "skyline_size": len(result.skyline_ids),
            "from_cache": result.from_cache,
            "seconds": result.seconds,
        }
        if not request.get("omit_ids"):
            payload["skyline_ids"] = result.skyline_ids
        return protocol.ok_response(**payload)

    async def _mutate(self, request: dict[str, object], worker) -> dict[str, object]:
        """Run one blocking mutation off-loop, inflight-counted like queries.

        The engine's read/write latch serializes the mutation against every
        in-flight query internally; here we only keep shutdown's drain
        honest and the event loop responsive.
        """
        deadline = self._deadline_of(request)
        loop = asyncio.get_running_loop()
        async with self._drained:
            if self._shutdown.is_set():
                return protocol.error_response("service is shutting down")
            self._inflight += 1
        try:
            return await self._bounded(loop.run_in_executor(None, worker), deadline)
        finally:
            async with self._drained:
                self._inflight -= 1
                self._drained.notify_all()

    def _idempotent_worker(self, op: str, token: str | None, worker):
        """Wrap a mutation worker with token replay (retry-safe mutations).

        Check, apply and remember happen atomically under one thread lock,
        so a retried delivery — the client resending after a lost response —
        replays the remembered response instead of re-applying the mutation.
        Only *successful* responses are remembered: a failed mutation may
        legitimately be retried with the same token.
        """
        if token is None:
            return worker
        key = f"{op}:{token}"

        def replaying() -> dict[str, object]:
            with self._token_lock:
                cached = self._idempotent.get(key)
                if cached is not None:
                    return {**cached, "replayed": True}
                response = worker()
                self._idempotent[key] = dict(response)
                return response

        return replaying

    async def _run_insert(self, request: dict[str, object]) -> dict[str, object]:
        rows = protocol.decode_rows(request.get("rows"), self.schema)
        token = protocol.decode_token(request.get("token"))

        def worker() -> dict[str, object]:
            ids = self.engine.insert(rows)
            return protocol.ok_response(ids=ids, inserted=len(ids))

        return await self._mutate(request, self._idempotent_worker("insert", token, worker))

    async def _run_delete(self, request: dict[str, object]) -> dict[str, object]:
        ids = protocol.decode_ids(request.get("ids"))
        token = protocol.decode_token(request.get("token"))

        def worker() -> dict[str, object]:
            deleted = self.engine.delete(ids)
            return protocol.ok_response(ids=deleted, deleted=len(deleted))

        return await self._mutate(request, self._idempotent_worker("delete", token, worker))

    async def _run_compact(self, request: dict[str, object]) -> dict[str, object]:
        def worker() -> dict[str, object]:
            return protocol.ok_response(compaction=self.engine.compact())

        return await self._mutate(request, worker)

    def stats(self) -> dict[str, object]:
        """Cache, shard and latency statistics for the ``stats`` op."""
        engine_summary = self.engine.summary()
        # Read both counters from the same locked snapshot, not live.
        queries = int(engine_summary["queries_evaluated"]) + int(
            engine_summary["cache_hits"]
        )
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.started_at,
            "connections_served": self.connections_served,
            "requests_served": self.requests_served,
            "faults": _faults_describe(),
            "idempotency_tokens_remembered": len(self._idempotent),
            "queries": queries,
            "query_seconds_total": self.query_seconds_total,
            "query_seconds_mean": self.query_seconds_total / queries if queries else 0.0,
            "query_seconds_max": self.query_seconds_max,
            "schema": {
                "attributes": [
                    {
                        "name": attribute.name,
                        "kind": "po" if attribute.is_partial else "to",
                        **(
                            {"domain_size": len(attribute.domain)}
                            if attribute.is_partial
                            else {}
                        ),
                    }
                    for attribute in self.schema.attributes
                ],
            },
            "engine": engine_summary,
        }
