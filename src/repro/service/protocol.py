"""Wire format of the query service: newline-delimited JSON over TCP.

Each request and each response is one JSON object on one line (UTF-8,
``\\n``-terminated).  Requests carry an ``op``:

``ping``
    Liveness probe; answers ``{"ok": true, "pong": true}``.
``stats``
    Engine/cache/shard statistics plus service latency aggregates.
``query``
    One dynamic-preference skyline query.  The preference DAGs come from one
    of: ``overrides`` (explicit per-attribute DAGs, see :func:`encode_dag`),
    ``seed`` (server-side random preferences — handy for smoke tests, since
    the client needs no schema knowledge), or neither (the dataset's base
    preferences).
``insert``
    Append a batch of new records to the live delta plane: ``rows`` is a
    list of attribute-value lists in schema order.  Answers the stable
    record ids allocated to the rows.
``delete``
    Tombstone records by stable id: ``ids`` is a list of integers.  Answers
    the ids actually deleted (already-dead ids are ignored).
``compact``
    Fold the delta plane into a fresh base (store-backed services rewrite
    the packed file atomically); answers the compaction summary.
``shutdown``
    Acknowledge, then stop the server cleanly.

Responses always carry ``ok``; failures carry ``error`` and never tear the
connection down.  PO domain values must be JSON scalars (the synthetic
workloads use integer bitmasks); an override must keep its attribute's value
domain — dynamic preference queries re-rank an existing domain, they do not
change it.

Protocol v3 adds the fault-tolerance fields:

``deadline_ms`` (any op that does work: ``query``/``insert``/``delete``/
    ``compact``)
    A per-request time budget in milliseconds.  The server enforces it on
    the event loop *and* hands the engine an absolute deadline it re-checks
    between query phases; an expired request answers an error with
    ``error_kind`` :data:`ERROR_KIND_DEADLINE`, which the client surfaces as
    :class:`~repro.exceptions.DeadlineExceededError`.  Results stay
    all-or-nothing — a deadlined request never returns partial data.
``token`` (``insert``/``delete``)
    An idempotency token (any non-empty string, unique per logical
    mutation).  The server remembers each token's successful response and
    replays it on re-delivery instead of re-applying the mutation, which is
    what makes client-side mutation retries safe.
``error_kind`` (responses)
    Optional machine-readable failure class next to the human ``error``
    message (currently only :data:`ERROR_KIND_DEADLINE`).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.data.schema import Schema
from repro.exceptions import QueryError, ReproError
from repro.order.dag import PartialOrderDAG

#: Protocol revision, reported by ``ping`` and ``stats``.
#: 2 added the delta-plane mutation ops (``insert``/``delete``/``compact``);
#: 3 added ``deadline_ms``, mutation idempotency ``token``s and
#: ``error_kind`` on failures.
PROTOCOL_VERSION = 3

#: ``error_kind`` of a response that failed because ``deadline_ms`` elapsed.
ERROR_KIND_DEADLINE = "deadline_exceeded"


def decode_deadline_ms(payload: object) -> float | None:
    """Parse the optional ``deadline_ms`` field (``None`` when absent)."""
    if payload is None:
        return None
    if isinstance(payload, bool) or not isinstance(payload, (int, float)):
        raise QueryError("'deadline_ms' must be a number of milliseconds")
    if payload <= 0:
        raise QueryError(f"'deadline_ms' must be positive, got {payload}")
    return float(payload)


def decode_token(payload: object) -> str | None:
    """Parse the optional mutation idempotency ``token`` field."""
    if payload is None:
        return None
    if not isinstance(payload, str) or not payload:
        raise QueryError("'token' must be a non-empty string")
    return payload


def decode_rows(payload: object, schema: Schema) -> list[tuple]:
    """Parse the ``rows`` field of an ``insert`` request.

    Checks shape only (a list of schema-arity value lists); value-level
    validation — numeric TO values, PO domain membership — happens in the
    engine's encoder, whose typed errors relay back over the wire.
    """
    if not isinstance(payload, list) or not payload:
        raise QueryError("'rows' must be a non-empty list of record value lists")
    arity = len(schema.attributes)
    rows: list[tuple] = []
    for index, row in enumerate(payload):
        if not isinstance(row, list) or len(row) != arity:
            raise QueryError(
                f"row {index} must be a list of {arity} attribute values "
                f"(schema order)"
            )
        rows.append(tuple(row))
    return rows


def decode_ids(payload: object) -> list[int]:
    """Parse the ``ids`` field of a ``delete`` request."""
    if not isinstance(payload, list) or not payload:
        raise QueryError("'ids' must be a non-empty list of record ids")
    ids: list[int] = []
    for value in payload:
        if isinstance(value, bool) or not isinstance(value, int):
            raise QueryError(f"record id {value!r} is not an integer")
        ids.append(value)
    return ids


def encode_dag(dag: PartialOrderDAG) -> dict[str, object]:
    """JSON payload of one preference DAG: domain values plus edges."""
    return {
        "values": list(dag.values),
        "edges": [[better, worse] for better, worse in dag.edges],
    }


def decode_dag(payload: object) -> PartialOrderDAG:
    """Parse one preference DAG from its JSON payload (strictly validated)."""
    if not isinstance(payload, Mapping):
        raise QueryError(f"a DAG override must be an object, got {type(payload).__name__}")
    values = payload.get("values")
    edges = payload.get("edges", [])
    if not isinstance(values, list) or not values:
        raise QueryError("a DAG override needs a non-empty 'values' list")
    if not isinstance(edges, list):
        raise QueryError("'edges' must be a list of [better, worse] pairs")
    pairs = []
    for edge in edges:
        if not isinstance(edge, list) or len(edge) != 2:
            raise QueryError(f"malformed edge {edge!r}; expected [better, worse]")
        pairs.append((edge[0], edge[1]))
    try:
        return PartialOrderDAG(values, pairs)
    except ReproError as error:
        raise QueryError(f"invalid DAG override: {error}") from error


def encode_overrides(
    overrides: Mapping[str, PartialOrderDAG],
) -> dict[str, dict[str, object]]:
    """JSON payload of a whole per-attribute override mapping."""
    return {name: encode_dag(dag) for name, dag in overrides.items()}


def decode_overrides(
    payload: object, schema: Schema
) -> dict[str, PartialOrderDAG]:
    """Parse and validate the ``overrides`` field of a query request.

    Checks attribute names against the schema and requires each override to
    keep the attribute's value domain.
    """
    if payload is None:
        return {}
    if not isinstance(payload, Mapping):
        raise QueryError("'overrides' must map PO attribute names to DAG objects")
    po_attributes = {a.name: a for a in schema.partial_order_attributes}
    overrides: dict[str, PartialOrderDAG] = {}
    for name, dag_payload in payload.items():
        attribute = po_attributes.get(name)
        if attribute is None:
            raise QueryError(
                f"unknown PO attribute {name!r}; known: {sorted(po_attributes)}"
            )
        dag = decode_dag(dag_payload)
        if set(dag.values) != set(attribute.domain):
            raise QueryError(
                f"override for {name!r} must keep the attribute's value domain"
            )
        overrides[name] = dag
    return overrides


def ok_response(**fields: object) -> dict[str, object]:
    return {"ok": True, **fields}


def error_response(message: str, kind: str | None = None) -> dict[str, object]:
    response: dict[str, object] = {"ok": False, "error": message}
    if kind is not None:
        response["error_kind"] = kind
    return response
