"""A long-running skyline query service (``repro serve`` / ``repro query``).

A stdlib-only, asyncio JSON-over-TCP server that keeps one
:class:`~repro.engine.batch.BatchQueryEngine` — and, with workers configured,
its sharded executor — alive across clients, so the per-PO-group prefilter,
the per-topology result cache and the worker pool amortize over the whole
query stream.  See :mod:`repro.service.protocol` for the wire format,
:mod:`repro.service.server` for the server and :mod:`repro.service.client`
for the blocking client the CLI uses.
"""

from repro.service.client import DEFAULT_HOST, DEFAULT_PORT, ServiceClient, wait_for_service
from repro.service.server import QueryService

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "QueryService",
    "ServiceClient",
    "wait_for_service",
]
