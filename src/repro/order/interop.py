"""Interoperability with networkx.

The library's :class:`~repro.order.dag.PartialOrderDAG` is intentionally
self-contained, but preference structures frequently already live in networkx
graphs (ontologies, concept hierarchies, crawled "better-than" relations).
These helpers convert in both directions and expose a couple of convenience
constructors for graphs that need cleaning up first (cycle condensation,
transitive reduction).
"""

from __future__ import annotations

from collections.abc import Hashable

import networkx as nx

from repro.exceptions import PartialOrderError
from repro.order.dag import PartialOrderDAG

Value = Hashable


def to_networkx(dag: PartialOrderDAG) -> "nx.DiGraph":
    """Convert a :class:`PartialOrderDAG` into a :class:`networkx.DiGraph`.

    Edge direction is preserved: an edge ``x -> y`` still means "x is
    preferred over y".
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(dag.values)
    graph.add_edges_from(dag.edges)
    return graph


def from_networkx(graph: "nx.DiGraph", *, reduce: bool = False) -> PartialOrderDAG:
    """Build a :class:`PartialOrderDAG` from a directed networkx graph.

    Parameters
    ----------
    graph:
        A directed acyclic graph whose edges mean "source preferred over
        target".
    reduce:
        Apply a transitive reduction so the result is a proper Hasse diagram.

    Raises
    ------
    PartialOrderError
        If the graph is not directed or contains a cycle.
    """
    if not graph.is_directed():
        raise PartialOrderError("preference graphs must be directed")
    if not nx.is_directed_acyclic_graph(graph):
        raise PartialOrderError("preference graph contains a cycle; condense it first")
    dag = PartialOrderDAG(list(graph.nodes), list(graph.edges))
    return dag.transitive_reduction() if reduce else dag


def from_preference_graph(graph: "nx.DiGraph") -> PartialOrderDAG:
    """Build a partial order from a possibly *cyclic* "better-than" graph.

    Strongly connected components (sets of values declared better than each
    other, i.e. contradictory preferences) are collapsed into a single
    representative value — the smallest node of the component by string
    representation — and the condensation's edges become the preferences.
    """
    condensation = nx.condensation(graph)
    representative = {
        component_id: min(members, key=repr)
        for component_id, members in condensation.nodes(data="members")
    }
    values = [representative[c] for c in condensation.nodes]
    edges = [
        (representative[u], representative[v]) for u, v in condensation.edges
    ]
    return PartialOrderDAG(values, edges).transitive_reduction()


def comparability_ratio(dag: PartialOrderDAG) -> float:
    """Fraction of value pairs that are comparable (a density measure).

    Useful when reporting how much preference information a domain carries:
    1.0 for a total order, 0.0 for an antichain.
    """
    n = len(dag)
    if n < 2:
        return 1.0
    comparable = sum(len(dag.descendants(value)) for value in dag.values)
    return comparable / (n * (n - 1) / 2)
