"""Convenience constructors for common partial orders.

These helpers make it easy to express the partial orders that appear in
applications (and in the paper's running examples): explicit preference
lists, total orders expressed as chains, antichains (no preferences at all),
diamonds, hierarchies/trees, interval orders and random DAGs.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Sequence

from repro.exceptions import PartialOrderError
from repro.order.dag import PartialOrderDAG

Value = Hashable


def dag_from_edges(edges: Iterable[tuple[Value, Value]], values: Iterable[Value] | None = None) -> PartialOrderDAG:
    """Build a DAG from ``(better, worse)`` edges; values default to edge endpoints."""
    edge_list = list(edges)
    if values is None:
        seen: list[Value] = []
        seen_set: set[Value] = set()
        for better, worse in edge_list:
            for value in (better, worse):
                if value not in seen_set:
                    seen_set.add(value)
                    seen.append(value)
        values = seen
    return PartialOrderDAG(values, edge_list)


def dag_from_preferences(
    values: Iterable[Value],
    preferences: Iterable[tuple[Value, Value]],
) -> PartialOrderDAG:
    """Build the Hasse diagram from an explicit set of ``(better, worse)`` pairs.

    Transitively redundant pairs are removed so the result is a proper Hasse
    diagram; inconsistent (cyclic) preferences raise
    :class:`~repro.exceptions.CycleError`.
    """
    dag = PartialOrderDAG(values, preferences)
    return dag.transitive_reduction()


def chain(values: Sequence[Value]) -> PartialOrderDAG:
    """A total order: ``values[0]`` is best, each value preferred over the next."""
    edges = [(values[i], values[i + 1]) for i in range(len(values) - 1)]
    return PartialOrderDAG(values, edges)


def antichain(values: Sequence[Value]) -> PartialOrderDAG:
    """A domain with no preferences at all (every pair incomparable)."""
    return PartialOrderDAG(values, [])


def diamond(top: Value, middles: Sequence[Value], bottom: Value) -> PartialOrderDAG:
    """A diamond: ``top`` preferred over every middle, every middle over ``bottom``."""
    if len(set(middles)) != len(middles):
        raise PartialOrderError("diamond middle values must be distinct")
    values = [top, *middles, bottom]
    edges = [(top, m) for m in middles] + [(m, bottom) for m in middles]
    return PartialOrderDAG(values, edges)


def tree_order(parent_of: dict[Value, Value]) -> PartialOrderDAG:
    """A hierarchy: each child maps to its (preferred) parent.

    Useful for category hierarchies where more general categories are
    preferred (or vice versa — flip the mapping to invert the preference).
    """
    values: list[Value] = []
    seen: set[Value] = set()
    for child, parent in parent_of.items():
        for value in (parent, child):
            if value not in seen:
                seen.add(value)
                values.append(value)
    edges = [(parent, child) for child, parent in parent_of.items()]
    return PartialOrderDAG(values, edges)


def interval_order(intervals: dict[Value, tuple[float, float]]) -> PartialOrderDAG:
    """Partial order over intervals: ``x`` preferred over ``y`` iff x ends before y starts.

    This is the classical interval order; it captures, e.g., preferences over
    time slots where an earlier, non-overlapping slot is strictly better.
    """
    values = list(intervals)
    edges = []
    for x in values:
        for y in values:
            if x is not y and intervals[x][1] < intervals[y][0]:
                edges.append((x, y))
    return PartialOrderDAG(values, edges).transitive_reduction()


def layered_dag(
    layer_sizes: Sequence[int],
    *,
    edge_probability: float = 0.5,
    seed: int | None = None,
    prefix: str = "v",
) -> PartialOrderDAG:
    """A random layered DAG: edges only go from one layer to the next.

    Every node keeps at least one outgoing edge to the next layer so the DAG
    height equals ``len(layer_sizes) - 1``.
    """
    if not layer_sizes or any(size < 1 for size in layer_sizes):
        raise PartialOrderError("layer sizes must be positive")
    rng = random.Random(seed)
    layers: list[list[str]] = []
    counter = 0
    for size in layer_sizes:
        layers.append([f"{prefix}{counter + i}" for i in range(size)])
        counter += size
    values = [value for layer in layers for value in layer]
    edges: list[tuple[Value, Value]] = []
    for upper, lower in zip(layers, layers[1:]):
        for node in upper:
            targets = [t for t in lower if rng.random() < edge_probability]
            if not targets:
                targets = [rng.choice(lower)]
            edges.extend((node, t) for t in targets)
    return PartialOrderDAG(values, edges)


def random_dag(
    num_values: int,
    *,
    edge_probability: float = 0.2,
    seed: int | None = None,
    prefix: str = "v",
) -> PartialOrderDAG:
    """A random DAG over ``num_values`` labelled nodes.

    Edges are sampled independently between pairs ``(i, j)`` with ``i < j`` in
    a random permutation, which guarantees acyclicity.
    """
    if num_values < 1:
        raise PartialOrderError("num_values must be >= 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise PartialOrderError("edge_probability must be in [0, 1]")
    rng = random.Random(seed)
    labels = [f"{prefix}{i}" for i in range(num_values)]
    permutation = labels[:]
    rng.shuffle(permutation)
    edges = [
        (permutation[i], permutation[j])
        for i in range(num_values)
        for j in range(i + 1, num_values)
        if rng.random() < edge_probability
    ]
    return PartialOrderDAG(labels, edges)


def paper_example_dag() -> PartialOrderDAG:
    """The 9-node example DAG of Figure 2(a) in the paper (values ``a`` .. ``i``).

    Edges are chosen to be consistent with the figure: ``a`` is the single
    root, ``h`` and ``i`` are leaves, and the DAG contains non-tree edges so
    that interval propagation is exercised (e.g. the path ``a, c, g`` has two
    non-tree edges once the canonical spanning tree is extracted).
    """
    edges = [
        ("a", "b"),
        ("a", "d"),
        ("a", "e"),
        ("b", "c"),
        ("b", "g"),
        ("c", "f"),
        ("c", "g"),
        ("d", "g"),
        ("d", "i"),
        ("e", "g"),
        ("f", "h"),
        ("g", "i"),
    ]
    return PartialOrderDAG(list("abcdefghi"), edges)


def airline_preference_dag() -> PartialOrderDAG:
    """The airline partial order of the paper's introduction (Table I, first row).

    ``a`` is favoured over both ``b`` and ``c``, and every company is favoured
    over ``d``; ``b`` and ``c`` are incomparable.
    """
    return PartialOrderDAG(
        ["a", "b", "c", "d"],
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
    )


def airline_preference_dag_second() -> PartialOrderDAG:
    """The second airline partial order of Table I: only ``b`` is preferred over ``a``."""
    return PartialOrderDAG(["a", "b", "c", "d"], [("b", "a")])
