"""The TSS domain encoding: topological ordinal + exact interval set per value.

:class:`DomainEncoding` bundles everything the TSS framework (Section III-B)
attaches to a partially ordered domain:

* ``A_TO`` — the totally ordered integer domain obtained by topologically
  sorting the DAG; a value's ``ordinal`` is its 1-based position.  Because the
  sort respects every DAG edge, visiting points in ``A_TO`` order guarantees
  the *precedence* property.
* ``intervals`` — the exact interval set of every value (spanning tree
  ``[minpost, post]`` labels plus propagation along non-tree edges), which
  makes the t-preference check *exact*: no false hits, no false misses.

The same object also exposes the pieces needed by the Chan et al. baselines:
the single spanning-tree interval of each value (their incomplete mapping to
``I1 x I2``) and the strata information (completely/partially covered values
and uncovered levels).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass
from functools import cached_property

from repro.exceptions import UnknownValueError
from repro.order.dag import PartialOrderDAG
from repro.order.intervals import Interval, IntervalSet
from repro.order.propagation import propagate_intervals
from repro.order.spanning_tree import SpanningTree, extract_spanning_tree
from repro.order.toposort import ordinal_map, topological_sort
from repro.order.uncovered import uncovered_levels

Value = Hashable


@dataclass(frozen=True)
class DomainEncoding:
    """All per-value information TSS derives from a partially ordered domain."""

    dag: PartialOrderDAG
    order: tuple[Value, ...]
    tree: SpanningTree

    # ------------------------------------------------------------------ #
    # Topological (A_TO) side — precedence
    # ------------------------------------------------------------------ #
    @cached_property
    def ordinals(self) -> dict[Value, int]:
        """1-based ordinal of every value in the topological sort (its A_TO value)."""
        return ordinal_map(self.order)

    def ordinal(self, value: Value) -> int:
        try:
            return self.ordinals[value]
        except KeyError as exc:
            raise UnknownValueError(value) from exc

    def value_at(self, ordinal: int) -> Value:
        """Inverse of :meth:`ordinal` (1-based)."""
        if not 1 <= ordinal <= len(self.order):
            raise UnknownValueError(ordinal)
        return self.order[ordinal - 1]

    @property
    def cardinality(self) -> int:
        """Size of the domain (equals ``|A_TO|`` and ``|I1| = |I2|``)."""
        return len(self.order)

    # ------------------------------------------------------------------ #
    # Interval (I1 x I2) side — exactness
    # ------------------------------------------------------------------ #
    @cached_property
    def intervals(self) -> dict[Value, IntervalSet]:
        """Exact interval set of every value (tree intervals + propagation)."""
        return propagate_intervals(self.tree)

    def interval_set(self, value: Value) -> IntervalSet:
        try:
            return self.intervals[value]
        except KeyError as exc:
            raise UnknownValueError(value) from exc

    def tree_interval(self, value: Value) -> Interval:
        """The single spanning-tree ``[minpost, post]`` interval (baseline mapping)."""
        return self.tree.interval(value)

    def post_of(self, value: Value) -> int:
        """The value's postorder number in the spanning tree.

        ``x`` is t-preferred over (or equal to) ``y`` exactly when
        ``post_of(y)`` is covered by ``interval_set(x)`` — the cheap membership
        form of the t-preference check used on the algorithms' hot paths.
        """
        try:
            return self.tree.post[value]
        except KeyError as exc:
            raise UnknownValueError(value) from exc

    # ------------------------------------------------------------------ #
    # Preference checks
    # ------------------------------------------------------------------ #
    def t_prefers(self, better: Value, worse: Value) -> bool:
        """Exact strict preference via interval containment (Definition 1).

        Equivalent to DAG reachability: ``better`` is t-preferred over
        ``worse`` iff every interval of ``worse`` is contained in some
        interval of ``better`` (and the values differ).
        """
        if better == worse:
            return False
        return self.interval_set(better).covers(self.interval_set(worse))

    def t_prefers_or_equal(self, better: Value, worse: Value) -> bool:
        return better == worse or self.t_prefers(better, worse)

    def m_prefers(self, better: Value, worse: Value) -> bool:
        """Spanning-tree-only preference (the baselines' inexact relation)."""
        return self.tree.tree_prefers(better, worse)

    # ------------------------------------------------------------------ #
    # Range helpers (used for R-tree MBBs over the A_TO axis)
    # ------------------------------------------------------------------ #
    def values_in_range(self, low_ordinal: int, high_ordinal: int) -> list[Value]:
        """Domain values whose ordinal lies in ``[low_ordinal, high_ordinal]``."""
        low = max(1, low_ordinal)
        high = min(self.cardinality, high_ordinal)
        return [self.order[i - 1] for i in range(low, high + 1)]

    def range_interval_set(self, low_ordinal: int, high_ordinal: int) -> IntervalSet:
        """Merged interval set of all values in an ``A_TO`` ordinal range.

        A point t-dominates an MBB on the PO dimension only if its interval
        set covers this merged set (i.e. it is preferred over *every* value
        the MBB may contain).
        """
        pieces: list[Interval] = []
        for value in self.values_in_range(low_ordinal, high_ordinal):
            pieces.extend(self.interval_set(value).intervals)
        return IntervalSet(pieces)

    # ------------------------------------------------------------------ #
    # Strata information for the SDC / SDC+ baselines
    # ------------------------------------------------------------------ #
    @cached_property
    def uncovered(self) -> dict[Value, int]:
        """Uncovered level of every value (0 = completely covered)."""
        return uncovered_levels(self.tree)

    def is_completely_covered(self, value: Value) -> bool:
        return self.uncovered[value] == 0

    @cached_property
    def max_uncovered_level(self) -> int:
        return max(self.uncovered.values(), default=0)


def encode_domain(
    dag: PartialOrderDAG,
    *,
    strategy: str = "kahn",
    parent_choice: str | Callable[[Value, tuple[Value, ...]], Value] = "first",
) -> DomainEncoding:
    """Build the :class:`DomainEncoding` of a partially ordered domain.

    Parameters
    ----------
    dag:
        The Hasse diagram / preference DAG of the domain.
    strategy:
        Topological sort strategy (see :func:`repro.order.toposort.topological_sort`).
    parent_choice:
        Spanning-tree parent selection (see
        :func:`repro.order.spanning_tree.extract_spanning_tree`).
    """
    order = tuple(topological_sort(dag, strategy=strategy))
    tree = extract_spanning_tree(dag, parent_choice=parent_choice)
    return DomainEncoding(dag=dag, order=order, tree=tree)


def encode_domains(
    dags: Iterable[PartialOrderDAG],
    *,
    strategy: str = "kahn",
    parent_choice: str | Callable[[Value, tuple[Value, ...]], Value] = "first",
) -> list[DomainEncoding]:
    """Encode several PO domains with the same settings (one per PO attribute)."""
    return [encode_domain(dag, strategy=strategy, parent_choice=parent_choice) for dag in dags]
