"""Spanning-tree extraction and postorder interval labelling.

Following Section II-B of the paper (method adopted from Agrawal et al.,
SIGMOD 1989), a spanning tree (in general a spanning *forest*, when the DAG
has several roots) is extracted from the partial-order DAG.  A postorder
traversal assigns to each node a ``post`` number and the interval
``[minpost, post]``, where ``minpost`` is the smallest ``post`` among the
node's tree descendants (including itself).  Containment between these
intervals captures exactly the preferences that follow *tree* paths; edges
left out of the tree ("non-tree edges") are handled later by interval
propagation (:mod:`repro.order.propagation`).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass, field

from repro.exceptions import PartialOrderError
from repro.order.dag import PartialOrderDAG
from repro.order.intervals import Interval

Value = Hashable

#: Parent-selection strategies for :func:`extract_spanning_tree`.
PARENT_STRATEGIES = ("first", "last", "max_coverage")


@dataclass(slots=True)
class SpanningTree:
    """A spanning forest of a partial-order DAG with postorder labelling.

    Attributes
    ----------
    dag:
        The DAG the tree was extracted from.
    parent:
        Tree parent of every node (``None`` for forest roots).
    children:
        Tree children of every node, in deterministic order.
    post:
        Postorder number of every node (1-based, unique).
    minpost:
        Minimum postorder number in the node's tree subtree.
    """

    dag: PartialOrderDAG
    parent: dict[Value, Value | None]
    children: dict[Value, list[Value]]
    post: dict[Value, int]
    minpost: dict[Value, int]
    _tree_edges: set[tuple[Value, Value]] = field(init=False)

    def __post_init__(self) -> None:
        self._tree_edges = {
            (p, c) for c, p in self.parent.items() if p is not None
        }

    # ------------------------------------------------------------------ #
    # Interval access
    # ------------------------------------------------------------------ #
    def interval(self, value: Value) -> Interval:
        """The ``[minpost, post]`` interval of ``value``."""
        return Interval(self.minpost[value], self.post[value])

    def intervals(self) -> dict[Value, Interval]:
        """Intervals of all values."""
        return {value: self.interval(value) for value in self.dag.values}

    # ------------------------------------------------------------------ #
    # Edge classification
    # ------------------------------------------------------------------ #
    def is_tree_edge(self, better: Value, worse: Value) -> bool:
        return (better, worse) in self._tree_edges

    def tree_edges(self) -> list[tuple[Value, Value]]:
        return [(p, c) for c, p in self.parent.items() if p is not None]

    def non_tree_edges(self) -> list[tuple[Value, Value]]:
        """DAG edges that are not part of the spanning tree."""
        return [edge for edge in self.dag.edges if edge not in self._tree_edges]

    # ------------------------------------------------------------------ #
    # Queries used by the baselines
    # ------------------------------------------------------------------ #
    def tree_descendants(self, value: Value) -> set[Value]:
        """All tree descendants of ``value`` (excluding itself)."""
        result: set[Value] = set()
        stack = list(self.children[value])
        while stack:
            node = stack.pop()
            result.add(node)
            stack.extend(self.children[node])
        return result

    def tree_prefers(self, better: Value, worse: Value) -> bool:
        """Preference implied by the *tree only*: interval containment.

        This is the (inexact) relation the Chan et al. mapping relies on;
        it misses preferences whose only witness paths use non-tree edges.
        """
        if better == worse:
            return False
        return self.interval(better).contains(self.interval(worse))


def extract_spanning_tree(
    dag: PartialOrderDAG,
    parent_choice: str | Callable[[Value, tuple[Value, ...]], Value] = "first",
) -> SpanningTree:
    """Extract a spanning forest and compute the postorder interval labelling.

    Parameters
    ----------
    dag:
        The partial-order DAG.
    parent_choice:
        How to pick the single tree parent of a node with several DAG
        predecessors: ``"first"`` (first predecessor in insertion order, the
        deterministic default), ``"last"``, ``"max_coverage"`` (the
        predecessor with the largest number of descendants, which tends to
        put more preferences on tree paths), or a callable
        ``(node, predecessors) -> chosen_parent``.

    Returns
    -------
    SpanningTree
        The forest plus ``post``/``minpost`` labels.
    """
    chooser = _parent_chooser(dag, parent_choice)

    parent: dict[Value, Value | None] = {}
    children: dict[Value, list[Value]] = {v: [] for v in dag.values}
    for node in dag.values:
        predecessors = dag.predecessors(node)
        if not predecessors:
            parent[node] = None
        else:
            chosen = chooser(node, predecessors)
            if chosen not in predecessors:
                raise PartialOrderError(
                    f"parent chooser returned {chosen!r} which is not a predecessor of {node!r}"
                )
            parent[node] = chosen
            children[chosen].append(node)

    post: dict[Value, int] = {}
    minpost: dict[Value, int] = {}
    counter = 0
    for root in (v for v in dag.values if parent[v] is None):
        counter = _postorder(root, children, post, minpost, counter)

    if len(post) != len(dag):  # pragma: no cover - defensive; DAGs always have roots
        raise PartialOrderError("spanning tree does not cover every value")

    return SpanningTree(dag=dag, parent=parent, children=children, post=post, minpost=minpost)


def _postorder(
    root: Value,
    children: dict[Value, list[Value]],
    post: dict[Value, int],
    minpost: dict[Value, int],
    counter: int,
) -> int:
    """Iterative postorder numbering of one tree of the forest."""
    stack: list[tuple[Value, int]] = [(root, 0)]
    pending_min: dict[Value, int] = {}
    while stack:
        node, child_index = stack[-1]
        kids = children[node]
        if child_index < len(kids):
            stack[-1] = (node, child_index + 1)
            stack.append((kids[child_index], 0))
        else:
            counter += 1
            post[node] = counter
            subtree_min = pending_min.get(node, counter)
            minpost[node] = min(subtree_min, counter)
            stack.pop()
            if stack:
                parent_node = stack[-1][0]
                pending_min[parent_node] = min(
                    pending_min.get(parent_node, minpost[node]), minpost[node]
                )
    return counter


def _parent_chooser(
    dag: PartialOrderDAG,
    parent_choice: str | Callable[[Value, tuple[Value, ...]], Value],
) -> Callable[[Value, tuple[Value, ...]], Value]:
    if callable(parent_choice):
        return parent_choice
    if parent_choice == "first":
        return lambda _node, preds: preds[0]
    if parent_choice == "last":
        return lambda _node, preds: preds[-1]
    if parent_choice == "max_coverage":
        return lambda _node, preds: max(preds, key=lambda p: (len(dag.descendants(p)), -dag.index_of(p)))
    raise PartialOrderError(
        f"unknown parent choice {parent_choice!r}; expected one of {PARENT_STRATEGIES} or a callable"
    )
