"""Subset-containment lattices and the paper's PO-domain generator.

The experimental evaluation (Section VI-A) builds each PO domain from the
containment partial order over the subsets of ``h`` distinct objects: the full
lattice has height ``h`` and ``2**h`` nodes.  The *density* parameter
``d = |V| / 2**h`` is realized by retaining each lattice node (together with
its incident edges) with probability ``d``.

Two entry points are provided:

* :func:`subset_lattice` — the full lattice with ``frozenset`` values, useful
  for examples involving set-valued attributes.
* :func:`lattice_domain` — the generator actually used by the benchmark
  harness: nodes are compact integer bitmasks, density sampling and a random
  seed are supported.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Sequence

from repro.exceptions import PartialOrderError
from repro.order.dag import PartialOrderDAG

Value = Hashable


def subset_lattice(objects: Sequence[Value]) -> PartialOrderDAG:
    """Containment lattice over all subsets of ``objects`` (frozenset values).

    Smaller sets are preferred: the Hasse edges go from each subset ``S`` to
    every superset ``S | {x}`` obtained by adding one object.
    """
    items = list(objects)
    if len(set(items)) != len(items):
        raise PartialOrderError("lattice objects must be distinct")
    masks = list(range(2 ** len(items)))
    values = [frozenset(items[i] for i in range(len(items)) if mask >> i & 1) for mask in masks]
    edges: list[tuple[Value, Value]] = []
    for mask, value in zip(masks, values):
        for bit in range(len(items)):
            if not mask >> bit & 1:
                edges.append((value, values[mask | (1 << bit)]))
    return PartialOrderDAG(values, edges)


def lattice_domain(
    height: int,
    density: float = 1.0,
    *,
    seed: int | None = None,
    keep_extremes: bool = True,
) -> PartialOrderDAG:
    """The paper's PO-domain generator: a sampled subset lattice over bitmasks.

    Parameters
    ----------
    height:
        Number of base objects ``h``; the full lattice has ``2**h`` nodes and
        height ``h``.
    density:
        Probability of retaining each lattice node, i.e. the expected value of
        ``|V| / 2**h``.  ``1.0`` keeps the full lattice.
    seed:
        Seed for the node-retention sampling (deterministic when given).
    keep_extremes:
        Always keep the empty set and the full set, so the sampled DAG keeps a
        single most-preferred and a single least-preferred value and its
        height stays close to ``h``.  The paper does not specify this detail;
        it only stabilizes the height across samples.

    Returns
    -------
    PartialOrderDAG
        Nodes are integer bitmasks in ``[0, 2**h)``; an edge ``x -> y`` exists
        when ``y`` adds exactly one object to ``x`` and both nodes were
        retained.
    """
    if height < 1:
        raise PartialOrderError("lattice height must be >= 1")
    if not 0.0 < density <= 1.0:
        raise PartialOrderError("lattice density must be in (0, 1]")

    rng = random.Random(seed)
    full = 1 << height
    retained: list[int] = []
    for mask in range(full):
        forced = keep_extremes and mask in (0, full - 1)
        if forced or density >= 1.0 or rng.random() < density:
            retained.append(mask)
    retained_set = set(retained)

    edges: list[tuple[int, int]] = []
    for mask in retained:
        for bit in range(height):
            if not mask >> bit & 1:
                superset = mask | (1 << bit)
                if superset in retained_set:
                    edges.append((mask, superset))
    return PartialOrderDAG(retained, edges)


def describe_lattice(dag: PartialOrderDAG) -> dict[str, float]:
    """Summary statistics used when reporting experiment configurations."""
    size = len(dag)
    return {
        "nodes": float(size),
        "edges": float(dag.num_edges),
        "height": float(dag.height()),
        "roots": float(len(dag.roots())),
        "leaves": float(len(dag.leaves())),
        "avg_out_degree": dag.num_edges / size if size else 0.0,
    }
