"""Partial-order DAG (Hasse diagram) over a finite domain of values.

A partially ordered domain is described by a directed acyclic graph whose
nodes are the domain values.  An edge ``x -> y`` states that ``x`` is
*preferred over* ``y`` (smaller is better, mirroring the paper's convention
``x < y``).  A value ``x`` is preferred over ``y`` whenever a directed path
from ``x`` to ``y`` exists.

The class below is deliberately self-contained (no networkx dependency in the
core path) because reachability, transitive reduction and edge classification
are on the hot path of every algorithm in the library.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

from repro.exceptions import CycleError, PartialOrderError, UnknownValueError

Value = Hashable


class PartialOrderDAG:
    """A directed acyclic graph describing preferences over a finite domain.

    Parameters
    ----------
    values:
        The domain values (nodes).  Order of first appearance is preserved and
        used as a deterministic tie-breaker throughout the library.
    edges:
        Iterable of ``(better, worse)`` pairs.  Both endpoints must belong to
        ``values``.  Parallel edges are collapsed; self-loops are rejected.

    Raises
    ------
    CycleError
        If the resulting graph contains a directed cycle.
    UnknownValueError
        If an edge references a value outside the domain.
    """

    __slots__ = ("_values", "_index", "_succ", "_pred", "_reach_cache")

    def __init__(self, values: Iterable[Value], edges: Iterable[tuple[Value, Value]] = ()) -> None:
        self._values: list[Value] = []
        self._index: dict[Value, int] = {}
        for value in values:
            if value in self._index:
                raise PartialOrderError(f"duplicate domain value: {value!r}")
            self._index[value] = len(self._values)
            self._values.append(value)

        self._succ: dict[Value, list[Value]] = {v: [] for v in self._values}
        self._pred: dict[Value, list[Value]] = {v: [] for v in self._values}
        self._reach_cache: dict[Value, frozenset[Value]] | None = None

        for better, worse in edges:
            self.add_edge(better, worse, _defer_cycle_check=True)
        self._assert_acyclic()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def add_edge(self, better: Value, worse: Value, *, _defer_cycle_check: bool = False) -> None:
        """Add a preference edge ``better -> worse``.

        Adding edges invalidates any cached reachability information.
        """
        if better not in self._index:
            raise UnknownValueError(better)
        if worse not in self._index:
            raise UnknownValueError(worse)
        if better == worse:
            raise PartialOrderError(f"self-loop on value {better!r} is not allowed")
        if worse not in self._succ[better]:
            self._succ[better].append(worse)
            self._pred[worse].append(better)
        self._reach_cache = None
        if not _defer_cycle_check:
            self._assert_acyclic()

    @classmethod
    def from_mapping(cls, successors: Mapping[Value, Iterable[Value]]) -> "PartialOrderDAG":
        """Build a DAG from a ``{value: [worse values]}`` adjacency mapping.

        Values appearing only on the right-hand side are added to the domain
        after the keys, in order of first appearance.
        """
        values: list[Value] = []
        seen: set[Value] = set()
        for value in successors:
            if value not in seen:
                seen.add(value)
                values.append(value)
        for children in successors.values():
            for child in children:
                if child not in seen:
                    seen.add(child)
                    values.append(child)
        edges = [(v, w) for v, children in successors.items() for w in children]
        return cls(values, edges)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> tuple[Value, ...]:
        """Domain values in insertion order."""
        return tuple(self._values)

    @property
    def edges(self) -> list[tuple[Value, Value]]:
        """All preference edges as ``(better, worse)`` pairs."""
        return [(u, v) for u in self._values for v in self._succ[u]]

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Value) -> bool:
        return value in self._index

    def __iter__(self) -> Iterator[Value]:
        return iter(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartialOrderDAG(|V|={len(self)}, |E|={self.num_edges})"

    @property
    def num_edges(self) -> int:
        return sum(len(children) for children in self._succ.values())

    def index_of(self, value: Value) -> int:
        """Return the insertion index of ``value`` (deterministic tie-breaker)."""
        try:
            return self._index[value]
        except KeyError as exc:
            raise UnknownValueError(value) from exc

    def successors(self, value: Value) -> tuple[Value, ...]:
        """Direct successors (immediately worse values) of ``value``."""
        self._check(value)
        return tuple(self._succ[value])

    def predecessors(self, value: Value) -> tuple[Value, ...]:
        """Direct predecessors (immediately better values) of ``value``."""
        self._check(value)
        return tuple(self._pred[value])

    def roots(self) -> tuple[Value, ...]:
        """Values with no incoming edge (maximally preferred values)."""
        return tuple(v for v in self._values if not self._pred[v])

    def leaves(self) -> tuple[Value, ...]:
        """Values with no outgoing edge (least preferred values)."""
        return tuple(v for v in self._values if not self._succ[v])

    def in_degree(self, value: Value) -> int:
        self._check(value)
        return len(self._pred[value])

    def out_degree(self, value: Value) -> int:
        self._check(value)
        return len(self._succ[value])

    # ------------------------------------------------------------------ #
    # Reachability (the ground-truth preference relation)
    # ------------------------------------------------------------------ #
    def descendants(self, value: Value) -> frozenset[Value]:
        """All values strictly worse than ``value`` (reachable via >=1 edge)."""
        self._check(value)
        cache = self._reachability()
        return cache[value]

    def ancestors(self, value: Value) -> frozenset[Value]:
        """All values strictly better than ``value``."""
        self._check(value)
        result: set[Value] = set()
        stack = list(self._pred[value])
        while stack:
            node = stack.pop()
            if node not in result:
                result.add(node)
                stack.extend(self._pred[node])
        return frozenset(result)

    def is_preferred(self, better: Value, worse: Value) -> bool:
        """True iff ``better`` strictly precedes ``worse`` in the partial order."""
        self._check(better)
        self._check(worse)
        if better == worse:
            return False
        return worse in self._reachability()[better]

    def is_preferred_or_equal(self, better: Value, worse: Value) -> bool:
        """True iff ``better`` precedes or equals ``worse``."""
        return better == worse or self.is_preferred(better, worse)

    def are_comparable(self, x: Value, y: Value) -> bool:
        """True iff ``x`` and ``y`` are related in either direction (or equal)."""
        return x == y or self.is_preferred(x, y) or self.is_preferred(y, x)

    def compare(self, x: Value, y: Value) -> int | None:
        """Three-way comparison: ``-1`` if x better, ``1`` if y better, ``0`` if
        equal, ``None`` if incomparable."""
        if x == y:
            return 0
        if self.is_preferred(x, y):
            return -1
        if self.is_preferred(y, x):
            return 1
        return None

    def _reachability(self) -> dict[Value, frozenset[Value]]:
        """Strict descendants of every node, computed once and cached."""
        if self._reach_cache is None:
            order = self._topological_order()
            reach: dict[Value, set[Value]] = {v: set() for v in self._values}
            for node in reversed(order):
                acc = reach[node]
                for child in self._succ[node]:
                    acc.add(child)
                    acc |= reach[child]
            self._reach_cache = {v: frozenset(s) for v, s in reach.items()}
        return self._reach_cache

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def _topological_order(self) -> list[Value]:
        """Kahn topological order used internally; raises on cycles."""
        indegree = {v: len(self._pred[v]) for v in self._values}
        frontier = [v for v in self._values if indegree[v] == 0]
        order: list[Value] = []
        cursor = 0
        while cursor < len(frontier):
            node = frontier[cursor]
            cursor += 1
            order.append(node)
            for child in self._succ[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    frontier.append(child)
        if len(order) != len(self._values):
            raise CycleError("preference graph contains a cycle")
        return order

    def _assert_acyclic(self) -> None:
        self._topological_order()

    def height(self) -> int:
        """Length (in edges) of the longest directed path in the DAG."""
        order = self._topological_order()
        longest = {v: 0 for v in self._values}
        for node in order:
            for child in self._succ[node]:
                if longest[node] + 1 > longest[child]:
                    longest[child] = longest[node] + 1
        return max(longest.values(), default=0)

    def transitive_reduction(self) -> "PartialOrderDAG":
        """Return the Hasse diagram: the minimal DAG with the same reachability."""
        reach = self._reachability()
        edges: list[tuple[Value, Value]] = []
        for u in self._values:
            direct = self._succ[u]
            for v in direct:
                # (u, v) is redundant if some other direct successor reaches v.
                redundant = any(v in reach[w] for w in direct if w != v)
                if not redundant:
                    edges.append((u, v))
        return PartialOrderDAG(self._values, edges)

    def transitive_closure_edges(self) -> list[tuple[Value, Value]]:
        """All strict preference pairs ``(better, worse)`` implied by the DAG."""
        reach = self._reachability()
        return [(u, v) for u in self._values for v in sorted(reach[u], key=self.index_of)]

    def restrict(self, keep: Iterable[Value]) -> "PartialOrderDAG":
        """Induced sub-DAG on ``keep``, preserving *reachability* among kept values.

        An edge ``x -> y`` is added when ``x`` is preferred over ``y`` in the
        original DAG and no kept value lies strictly between them.  The result
        is the Hasse diagram of the restricted partial order.
        """
        kept = [v for v in self._values if v in set(keep)]
        kept_set = set(kept)
        reach = self._reachability()
        edges: list[tuple[Value, Value]] = []
        for u in kept:
            worse_kept = [v for v in reach[u] if v in kept_set]
            for v in worse_kept:
                between = any(
                    (w in reach[u]) and (v in reach[w]) for w in worse_kept if w != v
                )
                if not between:
                    edges.append((u, v))
        return PartialOrderDAG(kept, edges)

    def relabel(self, mapping: Mapping[Value, Any]) -> "PartialOrderDAG":
        """Return a copy with every value replaced through ``mapping``."""
        values = [mapping[v] for v in self._values]
        edges = [(mapping[u], mapping[v]) for u, v in self.edges]
        return PartialOrderDAG(values, edges)

    def copy(self) -> "PartialOrderDAG":
        return PartialOrderDAG(self._values, self.edges)

    def _check(self, value: Value) -> None:
        if value not in self._index:
            raise UnknownValueError(value)
