"""Uncovered levels of DAG nodes with respect to a spanning tree.

The SDC and SDC+ baselines (Chan et al., SIGMOD 2005; Section II-C of the
paper) stratify data by how much of the preference structure the spanning
tree fails to capture:

* a node is *completely covered* when every edge of every incoming path is a
  tree edge (uncovered level 0);
* otherwise its *uncovered level* is the maximum number of non-tree edges on
  any incoming path.

Points whose PO values are completely covered can be reported early by SDC,
because m-dominance is exact for them; SDC+ processes strata in increasing
uncovered level.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.order.spanning_tree import SpanningTree
from repro.order.toposort import topological_sort

Value = Hashable


def uncovered_levels(tree: SpanningTree) -> dict[Value, int]:
    """Uncovered level of every node (maximum non-tree edges on an incoming path).

    Computed by dynamic programming over a topological order: the level of a
    node is the maximum, over its incoming edges, of the predecessor's level
    plus one if the edge is a non-tree edge.  Roots have level 0.
    """
    dag = tree.dag
    levels: dict[Value, int] = {v: 0 for v in dag.values}
    for node in topological_sort(dag, strategy="kahn"):
        for child in dag.successors(node):
            penalty = 0 if tree.is_tree_edge(node, child) else 1
            candidate = levels[node] + penalty
            if candidate > levels[child]:
                levels[child] = candidate
    return levels


def completely_covered(tree: SpanningTree) -> set[Value]:
    """Nodes with uncovered level 0 (m-dominance is exact for these values)."""
    return {value for value, level in uncovered_levels(tree).items() if level == 0}


def strata(tree: SpanningTree) -> dict[int, list[Value]]:
    """Group the domain values by uncovered level (SDC+ strata), level-ordered."""
    levels = uncovered_levels(tree)
    grouped: dict[int, list[Value]] = {}
    for value in tree.dag.values:
        grouped.setdefault(levels[value], []).append(value)
    return dict(sorted(grouped.items()))
