"""Partial-order substrate: DAGs, topological sorts, interval encodings.

This subpackage implements everything the TSS framework needs to reason about
partially ordered (PO) domains:

* :class:`~repro.order.dag.PartialOrderDAG` — a Hasse-diagram style DAG over a
  finite domain of values, with reachability (the ground-truth preference
  relation).
* :mod:`~repro.order.toposort` — topological sorts (Kahn, DFS, deterministic
  lexicographic variants).
* :mod:`~repro.order.spanning_tree` — spanning-tree extraction and the
  ``[minpost, post]`` postorder interval labelling of Agrawal et al.
* :mod:`~repro.order.intervals` — closed integer intervals and interval sets
  with merging / subsumption.
* :mod:`~repro.order.propagation` — propagation of intervals along non-tree
  edges so that the final encoding captures *all* preferences (exactness).
* :mod:`~repro.order.encoding` — :class:`DomainEncoding`, the per-domain
  artefact used by TSS (ordinal in a topological sort + interval set per
  value).
* :mod:`~repro.order.uncovered` — uncovered levels used by the SDC/SDC+
  baselines to stratify data.
* :mod:`~repro.order.lattice` — the subset-containment lattice generator with
  the height/density controls used in the paper's experiments.
* :mod:`~repro.order.builders` — convenience constructors (chains, antichains,
  trees, random DAGs, explicit preference lists).
"""

from repro.order.builders import (
    antichain,
    chain,
    dag_from_edges,
    dag_from_preferences,
    diamond,
    random_dag,
    tree_order,
)
from repro.order.dag import PartialOrderDAG
from repro.order.encoding import DomainEncoding, encode_domain
from repro.order.intervals import Interval, IntervalSet
from repro.order.lattice import subset_lattice, lattice_domain
from repro.order.spanning_tree import SpanningTree, extract_spanning_tree
from repro.order.toposort import topological_sort
from repro.order.uncovered import uncovered_levels

__all__ = [
    "PartialOrderDAG",
    "DomainEncoding",
    "encode_domain",
    "Interval",
    "IntervalSet",
    "SpanningTree",
    "extract_spanning_tree",
    "topological_sort",
    "uncovered_levels",
    "subset_lattice",
    "lattice_domain",
    "chain",
    "antichain",
    "diamond",
    "tree_order",
    "random_dag",
    "dag_from_edges",
    "dag_from_preferences",
]
