"""Topological sorting of partial-order DAGs.

The TSS framework maps a partially ordered domain :math:`A_{PO}` to a totally
ordered integer domain :math:`A_{TO}` by assigning to each value its ordinal
number in a topological sort of the DAG (Section III-B of the paper).  Any
admissible topological order works; this module offers several deterministic
strategies so experiments are reproducible.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Hashable, Sequence

from repro.exceptions import CycleError, PartialOrderError
from repro.order.dag import PartialOrderDAG

Value = Hashable

#: Strategies accepted by :func:`topological_sort`.
STRATEGIES = ("kahn", "dfs", "lexicographic", "by_height")


def topological_sort(
    dag: PartialOrderDAG,
    strategy: str = "kahn",
    key: Callable[[Value], object] | None = None,
) -> list[Value]:
    """Return the DAG values in a topological order (best values first).

    Parameters
    ----------
    dag:
        The partial-order DAG.
    strategy:
        One of ``"kahn"`` (insertion-order tie-break), ``"lexicographic"``
        (smallest available value first, per ``key`` or natural ordering),
        ``"dfs"`` (reverse postorder of a depth-first traversal) and
        ``"by_height"`` (values grouped by their depth from the roots, the
        ordering dTSS uses to visit groups level by level).
    key:
        Optional tie-breaking key for the ``"lexicographic"`` strategy.

    Raises
    ------
    PartialOrderError
        If the strategy name is unknown.
    CycleError
        If the graph contains a cycle (never happens for a valid DAG).
    """
    if strategy == "kahn":
        return _kahn(dag, tie_key=dag.index_of)
    if strategy == "lexicographic":
        tie = key if key is not None else _natural_key(dag)
        return _kahn(dag, tie_key=tie)
    if strategy == "dfs":
        return _dfs(dag)
    if strategy == "by_height":
        return _by_height(dag)
    raise PartialOrderError(
        f"unknown topological sort strategy {strategy!r}; expected one of {STRATEGIES}"
    )


def ordinal_map(order: Sequence[Value], *, start: int = 1) -> dict[Value, int]:
    """Map each value to its 1-based ordinal in ``order`` (the ``A_TO`` value)."""
    return {value: start + position for position, value in enumerate(order)}


def is_topological(dag: PartialOrderDAG, order: Sequence[Value]) -> bool:
    """Check that ``order`` is a valid topological order of ``dag``.

    Every value must appear exactly once and every edge must point forward.
    """
    if len(order) != len(dag) or set(order) != set(dag.values):
        return False
    position = {value: i for i, value in enumerate(order)}
    return all(position[better] < position[worse] for better, worse in dag.edges)


def _kahn(dag: PartialOrderDAG, tie_key: Callable[[Value], object]) -> list[Value]:
    indegree = {v: dag.in_degree(v) for v in dag.values}
    heap: list[tuple[object, int, Value]] = []
    for v in dag.values:
        if indegree[v] == 0:
            heapq.heappush(heap, (tie_key(v), dag.index_of(v), v))
    order: list[Value] = []
    while heap:
        _, _, node = heapq.heappop(heap)
        order.append(node)
        for child in dag.successors(node):
            indegree[child] -= 1
            if indegree[child] == 0:
                heapq.heappush(heap, (tie_key(child), dag.index_of(child), child))
    if len(order) != len(dag):
        raise CycleError("preference graph contains a cycle")
    return order


def _dfs(dag: PartialOrderDAG) -> list[Value]:
    visited: set[Value] = set()
    postorder: list[Value] = []

    for root in dag.values:
        if root in visited:
            continue
        # Iterative DFS with an explicit stack of (node, child iterator).
        stack: list[tuple[Value, list[Value]]] = [(root, list(dag.successors(root)))]
        visited.add(root)
        while stack:
            node, children = stack[-1]
            while children:
                child = children.pop(0)
                if child not in visited:
                    visited.add(child)
                    stack.append((child, list(dag.successors(child))))
                    break
            else:
                postorder.append(node)
                stack.pop()
    postorder.reverse()
    if not is_topological(dag, postorder):  # pragma: no cover - defensive
        raise CycleError("preference graph contains a cycle")
    return postorder


def _by_height(dag: PartialOrderDAG) -> list[Value]:
    """Group values by longest distance from any root; stable within a level."""
    depth = {v: 0 for v in dag.values}
    for node in _kahn(dag, tie_key=dag.index_of):
        for child in dag.successors(node):
            depth[child] = max(depth[child], depth[node] + 1)
    return sorted(dag.values, key=lambda v: (depth[v], dag.index_of(v)))


def _natural_key(dag: PartialOrderDAG) -> Callable[[Value], object]:
    """Sort by the value itself when the domain is sortable, else by index."""
    try:
        sorted(dag.values)  # type: ignore[type-var]
    except TypeError:
        return dag.index_of
    return lambda value: value
