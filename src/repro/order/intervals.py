"""Closed integer intervals and interval sets.

The interval encoding of a partial order (Agrawal, Borgida and Jagadish,
SIGMOD 1989, as used in Section II-B of the paper) associates each DAG node
with one ``[minpost, post]`` interval from a spanning tree and, after
propagation (Section III-B), with a *set* of intervals.  TSS's t-preference
check reduces to containment tests between such interval sets.

Intervals here are closed ranges over positive integers (postorder numbers).
:class:`IntervalSet` keeps its members normalized: sorted, non-overlapping and
non-adjacent, which makes containment checks and merging cheap and gives a
canonical representation (two interval sets cover the same integers iff they
are equal).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import PartialOrderError


@dataclass(frozen=True, order=True, slots=True)
class Interval:
    """A closed integer interval ``[low, high]`` with ``low <= high``."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise PartialOrderError(f"invalid interval [{self.low}, {self.high}]")

    def __contains__(self, point: int) -> bool:
        return self.low <= point <= self.high

    def contains(self, other: "Interval") -> bool:
        """True iff ``other`` lies fully inside (or coincides with) this interval."""
        return self.low <= other.low and other.high <= self.high

    def overlaps(self, other: "Interval") -> bool:
        """True iff the two intervals share at least one integer."""
        return self.low <= other.high and other.low <= self.high

    def adjacent(self, other: "Interval") -> bool:
        """True iff the intervals touch without overlapping (e.g. [1,2] and [3,4])."""
        return self.high + 1 == other.low or other.high + 1 == self.low

    def merge(self, other: "Interval") -> "Interval":
        """Union of two overlapping or adjacent intervals."""
        if not (self.overlaps(other) or self.adjacent(other)):
            raise PartialOrderError(f"cannot merge disjoint intervals {self} and {other}")
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def width(self) -> int:
        """Number of integers covered."""
        return self.high - self.low + 1

    def __str__(self) -> str:
        return f"[{self.low},{self.high}]"


class IntervalSet:
    """A canonical set of disjoint, non-adjacent, sorted closed intervals.

    The constructor accepts any iterable of :class:`Interval` (or ``(low,
    high)`` tuples) and normalizes them by merging overlaps and adjacencies.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval | tuple[int, int]] = ()) -> None:
        parsed = [iv if isinstance(iv, Interval) else Interval(*iv) for iv in intervals]
        self._intervals: tuple[Interval, ...] = tuple(_normalize(parsed))

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        return "IntervalSet(" + ", ".join(str(iv) for iv in self._intervals) + ")"

    @property
    def intervals(self) -> tuple[Interval, ...]:
        return self._intervals

    # ------------------------------------------------------------------ #
    # Set-like operations
    # ------------------------------------------------------------------ #
    def union(self, other: "IntervalSet | Iterable[Interval]") -> "IntervalSet":
        return IntervalSet([*self._intervals, *other])

    def add(self, interval: Interval | tuple[int, int]) -> "IntervalSet":
        return IntervalSet([*self._intervals, interval])

    def contains_point(self, point: int) -> bool:
        """Binary search for membership of a single integer."""
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            interval = self._intervals[mid]
            if point < interval.low:
                hi = mid - 1
            elif point > interval.high:
                lo = mid + 1
            else:
                return True
        return False

    def contains_interval(self, other: Interval) -> bool:
        """True iff some member interval fully contains ``other``."""
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            interval = self._intervals[mid]
            if other.low < interval.low:
                hi = mid - 1
            elif other.low > interval.high:
                lo = mid + 1
            else:
                return other.high <= interval.high
        return False

    def covers(self, other: "IntervalSet") -> bool:
        """True iff every interval of ``other`` is contained in some interval here.

        This is exactly the paper's t-preference test (Definition 1) between
        the interval sets of two PO values.
        """
        return all(self.contains_interval(iv) for iv in other)

    def bounding_interval(self) -> Interval:
        """The minimum bounding interval (MBI) covering the whole set.

        ``A.covers(B)`` implies ``A.bounding_interval().contains(
        B.bounding_interval())`` — the cheap necessary condition the batched
        t-dominance kernels test before the exact containment matrix.
        """
        if not self._intervals:
            raise PartialOrderError("an empty interval set has no bounding interval")
        return Interval(self._intervals[0].low, self._intervals[-1].high)

    def points(self) -> list[int]:
        """Materialize every covered integer (small domains only; used in tests)."""
        return [p for iv in self._intervals for p in range(iv.low, iv.high + 1)]

    def total_width(self) -> int:
        return sum(iv.width() for iv in self._intervals)

    @classmethod
    def from_points(cls, points: Iterable[int]) -> "IntervalSet":
        """Build the canonical interval set covering exactly ``points``."""
        ordered = sorted(set(points))
        intervals: list[Interval] = []
        start: int | None = None
        previous: int | None = None
        for point in ordered:
            if start is None:
                start = previous = point
            elif point == previous + 1:  # type: ignore[operator]
                previous = point
            else:
                intervals.append(Interval(start, previous))  # type: ignore[arg-type]
                start = previous = point
        if start is not None:
            intervals.append(Interval(start, previous))  # type: ignore[arg-type]
        return cls(intervals)


def covers_many(
    cover_sets: Sequence["IntervalSet"], target: "IntervalSet", kernel=None
) -> list[bool]:
    """Batched :meth:`IntervalSet.covers`: one verdict per cover set.

    Dispatches through the dominance kernel layer (one interval-containment
    matrix between all member intervals and the target's intervals when the
    NumPy backend is active).
    """
    from repro.kernels import resolve_kernel  # local import: kernels import this module

    return resolve_kernel(kernel).covers_many(cover_sets, target)


def _normalize(intervals: list[Interval]) -> list[Interval]:
    """Sort and merge overlapping/adjacent intervals into canonical form."""
    if not intervals:
        return []
    ordered = sorted(intervals, key=lambda iv: (iv.low, iv.high))
    merged: list[Interval] = [ordered[0]]
    for interval in ordered[1:]:
        last = merged[-1]
        if interval.overlaps(last) or interval.adjacent(last):
            merged[-1] = last.merge(interval)
        else:
            merged.append(interval)
    return merged
