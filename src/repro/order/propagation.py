"""Interval propagation along non-tree edges (exact encoding).

The spanning-tree interval of a node only captures preferences whose witness
path stays inside the tree.  Section III-B of the paper restores *exactness*
by propagating, for every non-tree edge, the target's intervals to the source
and onwards to all its ancestors, then merging / subsuming redundant
intervals.

The net effect of propagation is that the final interval set of a value ``x``
covers exactly the postorder numbers of all values reachable from ``x``
(including ``x`` itself).  This module provides both the paper's propagation
procedure (:func:`propagate_intervals`) and the direct reachability-based
construction (:func:`reachability_intervals`), which is used as a correctness
oracle in the test suite.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.order.intervals import IntervalSet
from repro.order.spanning_tree import SpanningTree
from repro.order.toposort import topological_sort

Value = Hashable


def propagate_intervals(tree: SpanningTree) -> dict[Value, IntervalSet]:
    """Compute the exact interval set of every value by propagation.

    The computation processes values in reverse topological order (worst
    values first).  Each value starts with its own ``[minpost, post]`` tree
    interval; for every outgoing DAG edge, the child's (already final)
    interval set is added.  Tree children are included as well — their
    intervals are subsumed by the parent's tree interval whenever the child's
    reachable set stays inside the parent's subtree, but they contribute the
    intervals the child itself acquired through non-tree edges, which is what
    the paper's "copied to f and subsequently to c, b and a" step achieves.
    The :class:`~repro.order.intervals.IntervalSet` constructor performs the
    merging/subsumption of the paper's final column (Figure 2(d)).

    Returns
    -------
    dict
        ``{value: IntervalSet}`` such that ``intervals[x].covers(intervals[y])``
        holds iff ``x`` is preferred over (or equal to) ``y`` in the DAG.
    """
    dag = tree.dag
    order = topological_sort(dag, strategy="kahn")
    result: dict[Value, IntervalSet] = {}
    for value in reversed(order):
        pieces = [tree.interval(value)]
        for child in dag.successors(value):
            pieces.extend(result[child].intervals)
        result[value] = IntervalSet(pieces)
    return result


def reachability_intervals(tree: SpanningTree) -> dict[Value, IntervalSet]:
    """Direct construction of the exact interval sets from DAG reachability.

    For each value, collect the postorder numbers of the value itself and of
    every DAG descendant, and build the canonical interval set covering them.
    Equivalent to :func:`propagate_intervals`; kept as an independent oracle.
    """
    dag = tree.dag
    result: dict[Value, IntervalSet] = {}
    for value in dag.values:
        posts = [tree.post[value]]
        posts.extend(tree.post[d] for d in dag.descendants(value))
        result[value] = IntervalSet.from_points(posts)
    return result
