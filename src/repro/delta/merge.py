"""The base x delta cross-examination: one batched kernel call per direction.

Skylines distribute over set union: ``SKY(B ∪ D) = survivors of SKY(B) x
SKY(D)`` — a row of one side's skyline belongs to the merged skyline iff no
row of the *other* side's skyline strictly dominates it (the same
divide-and-conquer identity the sharded executor's all-pairs merge uses).
Strict dominance makes equal rows across the two sides harmless: neither
dominates the other, both survive, exactly as in a from-scratch run over the
union.  Both directions are decided columnar through
:meth:`record_block_dominated_columns
<repro.kernels.base.DominanceKernel.record_block_dominated_columns>` under
the query's effective schema.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.data.columns import EncodedFrame
from repro.kernels import resolve_kernel
from repro.kernels.tables import RecordTables


def tables_blocks(
    frame: EncodedFrame, rows: Sequence[int] | None, tables: RecordTables
):
    """``(to_block, code_block)`` of the frame rows, in ``tables``'s code space.

    The frame's canonical codes are remapped into the (possibly overridden)
    query schema's :class:`RecordTables` space — the same translation
    ``_sfs_frame`` performs — so the blocks feed ground-truth dominance calls
    directly.
    """
    to_block = frame.gather_to(rows)
    code_block = frame.remap_codes(
        [table.code_of for table in tables.attributes], rows
    )
    return to_block, code_block


def cross_examine(
    kernel,
    tables: RecordTables,
    base_block,
    delta_block,
    counter=None,
) -> tuple[list[bool], list[bool]]:
    """Mutual survival masks of two partial skylines.

    ``base_block`` / ``delta_block`` are ``(to_block, code_block)`` pairs in
    ``tables``'s code space.  Returns ``(keep_base, keep_delta)``: per row of
    each side, whether no row of the other side strictly dominates it.
    """
    base_to, base_codes = base_block
    delta_to, delta_codes = delta_block
    num_base = len(base_to)
    num_delta = len(delta_to)
    if not num_base or not num_delta:
        return [True] * num_base, [True] * num_delta
    kern = resolve_kernel(kernel)
    base_dominated = kern.record_block_dominated_columns(
        tables, delta_to, delta_codes, base_to, base_codes, counter=counter
    )
    delta_dominated = kern.record_block_dominated_columns(
        tables, base_to, base_codes, delta_to, delta_codes, counter=counter
    )
    return (
        [not dominated for dominated in base_dominated],
        [not dominated for dominated in delta_dominated],
    )
