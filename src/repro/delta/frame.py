"""The append-only :class:`DeltaFrame`: encoded inserts + tombstones.

A :class:`DeltaFrame` layers mutations over an immutable base
:class:`~repro.data.columns.EncodedFrame`:

* **Inserts** are encoded on arrival into the base codec's *canonical*
  column layout (one float TO row + one int code row per record) and
  appended to in-memory buffers; :meth:`insert_frame` materializes them as
  an ordinary :class:`~repro.data.columns.EncodedFrame` so every columnar
  consumer (TSS mapping, SFS presort, kernels) works on them unchanged.
* **Deletes** tombstone a stable record id — a base row or an earlier
  insert — without touching the base columns.

Stable ids are the contract with callers: base row ``r`` answers to id
``base_ids[r]`` (identity when ``base_ids`` is ``None``), inserts are
numbered from :attr:`next_id` upward, and ids are never reused.  Compaction
(:meth:`live_frame_and_ids`) folds the live rows into a fresh base frame
whose ``row -> id`` mapping keeps every surviving id.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.data.columns import EncodedFrame
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.exceptions import QueryError

Value = Hashable


def _numpy_or_none():
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def decode_frame_rows(frame: EncodedFrame, rows: Sequence[int] | None = None) -> list[tuple]:
    """Original attribute-value tuples of the frame's rows (schema order).

    The inverse of :meth:`EncodedFrame.from_dataset`: canonical TO values are
    mapped back through each attribute's direction (max-attributes were
    negated) and PO codes decoded through the codec's domains.  ``rows``
    restricts (and orders) the output.
    """
    schema = frame.schema
    codec = frame.codec
    indices = range(len(frame)) if rows is None else rows
    columns: list[list] = []
    to_index = 0
    po_index = 0
    for attribute in schema.attributes:
        if attribute.is_partial:
            domain = codec.domains[po_index]
            if frame.uses_numpy:
                columns.append([domain[int(frame.codes[r, po_index])] for r in indices])
            else:
                columns.append([domain[frame.codes[r][po_index]] for r in indices])
            po_index += 1
        else:
            if frame.uses_numpy:
                values = [float(frame.to[r, to_index]) for r in indices]
            else:
                values = [frame.to[r][to_index] for r in indices]
            if attribute.best == "max":
                values = [-value for value in values]
            columns.append(values)
            to_index += 1
    length = len(columns[0]) if columns else 0
    return [tuple(column[i] for column in columns) for i in range(length)]


def dataset_from_frame(
    frame: EncodedFrame, rows: Sequence[int] | None = None
) -> Dataset:
    """A record :class:`~repro.data.dataset.Dataset` over (a row subset of)
    an encoded frame — record ``i`` is row ``rows[i]`` (or row ``i``)."""
    return Dataset(frame.schema, decode_frame_rows(frame, rows), validate=False)


class DeltaFrame:
    """Append-only insert blocks + tombstones over an immutable base frame."""

    def __init__(
        self,
        base: EncodedFrame,
        *,
        base_ids: Sequence[int] | None = None,
        next_id: int | None = None,
    ) -> None:
        self.base = base
        self.schema: Schema = base.schema
        self.codec = base.codec
        self.base_ids = None if base_ids is None else [int(i) for i in base_ids]
        if self.base_ids is not None and len(self.base_ids) != len(base):
            raise QueryError(
                f"base_ids has {len(self.base_ids)} entries for a "
                f"{len(base)}-row base frame"
            )
        self._base_row_of = (
            None
            if self.base_ids is None
            else {id_: row for row, id_ in enumerate(self.base_ids)}
        )
        if next_id is None:
            next_id = (
                len(base)
                if self.base_ids is None
                else (max(self.base_ids) + 1 if self.base_ids else 0)
            )
        self.next_id = int(next_id)
        self._insert_to: list[tuple[float, ...]] = []
        self._insert_codes: list[tuple[int, ...]] = []
        self._insert_ids: list[int] = []
        self._insert_pos_of = {}
        self._dead_base_rows: set[int] = set()
        self._dead_inserts: set[int] = set()
        #: Mutation rows applied since the base was packed/adopted — the
        #: quantity the auto-compaction threshold is compared against.
        self.mutations = 0
        #: Bumped on every state change (engines guard caches with it).
        self.version = 0
        self._insert_frame: EncodedFrame | None = None
        self._insert_frame_rows = -1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_inserts(self) -> int:
        """Insert rows buffered (live or tombstoned)."""
        return len(self._insert_ids)

    @property
    def num_live(self) -> int:
        return (
            len(self.base)
            - len(self._dead_base_rows)
            + len(self._insert_ids)
            - len(self._dead_inserts)
        )

    @property
    def has_base_deletes(self) -> bool:
        return bool(self._dead_base_rows)

    @property
    def num_base_deletes(self) -> int:
        return len(self._dead_base_rows)

    @property
    def live_insert_count(self) -> int:
        return len(self._insert_ids) - len(self._dead_inserts)

    def stable_id_of_base_row(self, row: int) -> int:
        return row if self.base_ids is None else self.base_ids[row]

    def dead_ids(self) -> list[int]:
        """Every tombstoned stable id (base rows first, then inserts)."""
        ids = [self.stable_id_of_base_row(row) for row in sorted(self._dead_base_rows)]
        ids.extend(self._insert_ids[pos] for pos in sorted(self._dead_inserts))
        return ids

    def insert_entries(
        self, start: int = 0
    ) -> list[tuple[int, tuple[float, ...], tuple[Value, ...]]]:
        """``(stable id, canonical TO values, PO values)`` of the inserts from
        buffer position ``start`` on — tombstoned ones included, so a consumer
        tracking a position cursor (incremental dTSS maintenance) sees every
        insert exactly once."""
        domains = self.codec.domains
        entries: list[tuple[int, tuple[float, ...], tuple[Value, ...]]] = []
        for position in range(start, len(self._insert_ids)):
            codes = self._insert_codes[position]
            po_values = tuple(domains[k][codes[k]] for k in range(len(codes)))
            entries.append(
                (self._insert_ids[position], tuple(self._insert_to[position]), po_values)
            )
        return entries

    def is_live(self, record_id: int) -> bool:
        position = self._insert_pos_of.get(record_id)
        if position is not None:
            return position not in self._dead_inserts
        row = self._resolve_base_row(record_id)
        return row is not None and row not in self._dead_base_rows

    def _resolve_base_row(self, record_id: int) -> int | None:
        if self._base_row_of is not None:
            return self._base_row_of.get(record_id)
        return record_id if 0 <= record_id < len(self.base) else None

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _encode_row(self, row) -> tuple[tuple, tuple[float, ...], tuple[int, ...]]:
        values = tuple(row)
        self.schema.validate_row(values)
        to_values = self.schema.canonical_to_values(values)
        po_values = self.schema.partial_values(values)
        codes = tuple(
            self.codec.code_of[attr_index][value]
            for attr_index, value in enumerate(po_values)
        )
        return values, to_values, codes

    def insert_rows(self, rows: Sequence[Sequence[Value]]) -> list[int]:
        """Validate, encode and append a batch of rows; returns their new ids."""
        encoded = [self._encode_row(row) for row in rows]
        ids: list[int] = []
        for _, to_values, codes in encoded:
            ids.append(self._append_insert(self.next_id, to_values, codes))
        self.mutations += len(ids)
        if ids:
            self.version += 1
        return ids

    def replay_insert(self, record_id: int, to_values, codes) -> int:
        """Re-apply one already-encoded insert (delta-log replay path)."""
        appended = self._append_insert(
            int(record_id), tuple(float(v) for v in to_values), tuple(int(c) for c in codes)
        )
        self.mutations += 1
        self.version += 1
        return appended

    def _append_insert(self, record_id: int, to_values, codes) -> int:
        if record_id in self._insert_pos_of or self._resolve_base_row(record_id) is not None:
            raise QueryError(f"record id {record_id} already exists")
        position = len(self._insert_ids)
        self._insert_to.append(to_values)
        self._insert_codes.append(codes)
        self._insert_ids.append(record_id)
        self._insert_pos_of[record_id] = position
        self.next_id = max(self.next_id, record_id + 1)
        return record_id

    def insert_payload(
        self, record_ids: Sequence[int]
    ) -> tuple[list[tuple[float, ...]], list[tuple[int, ...]]]:
        """``(to_rows, code_rows)`` of already-applied inserts, by id — the
        encoded form the delta log persists."""
        positions = [self._insert_pos_of[int(record_id)] for record_id in record_ids]
        return (
            [self._insert_to[pos] for pos in positions],
            [self._insert_codes[pos] for pos in positions],
        )

    def delete_ids(self, record_ids: Sequence[int]) -> tuple[list[int], list[int]]:
        """Tombstone stable ids; returns ``(newly deleted ids, base rows freed)``.

        Already-dead ids are ignored (idempotent, which keeps delta-log
        replay simple); ids that were never allocated raise
        :class:`~repro.exceptions.QueryError`.
        """
        removed: list[int] = []
        base_rows: list[int] = []
        for record_id in record_ids:
            record_id = int(record_id)
            position = self._insert_pos_of.get(record_id)
            if position is not None:
                if position not in self._dead_inserts:
                    self._dead_inserts.add(position)
                    removed.append(record_id)
                continue
            row = self._resolve_base_row(record_id)
            if row is None:
                raise QueryError(f"cannot delete unknown record id {record_id}")
            if row not in self._dead_base_rows:
                self._dead_base_rows.add(row)
                removed.append(record_id)
                base_rows.append(row)
        if removed:
            self.mutations += len(removed)
            self.version += 1
        return removed, base_rows

    # ------------------------------------------------------------------ #
    # Live views
    # ------------------------------------------------------------------ #
    def live_base_rows(self) -> list[int]:
        if not self._dead_base_rows:
            return list(range(len(self.base)))
        dead = self._dead_base_rows
        return [row for row in range(len(self.base)) if row not in dead]

    def live_insert_positions(self) -> list[int]:
        if not self._dead_inserts:
            return list(range(len(self._insert_ids)))
        dead = self._dead_inserts
        return [pos for pos in range(len(self._insert_ids)) if pos not in dead]

    def insert_ids_at(self, positions: Sequence[int]) -> list[int]:
        return [self._insert_ids[pos] for pos in positions]

    def insert_frame(self) -> EncodedFrame:
        """All buffered inserts as an :class:`EncodedFrame` (row = position).

        Tombstoned inserts are *included* so positions stay stable; pass
        :meth:`live_insert_positions` as the ``rows`` subset downstream.
        Rebuilt only when new inserts arrived since the last call.
        """
        count = len(self._insert_ids)
        if self._insert_frame is not None and self._insert_frame_rows == count:
            return self._insert_frame
        np = _numpy_or_none() if self.base.uses_numpy else None
        num_to = self.schema.num_total_order
        num_po = self.schema.num_partial_order
        if np is not None:
            to = np.asarray(self._insert_to, dtype=np.float64).reshape(count, num_to)
            codes = np.asarray(self._insert_codes, dtype=np.int32).reshape(count, num_po)
            to.flags.writeable = False
            codes.flags.writeable = False
        else:
            to = tuple(self._insert_to)
            codes = tuple(self._insert_codes)
        self._insert_frame = EncodedFrame(self.schema, self.codec, to, codes, count)
        self._insert_frame_rows = count
        return self._insert_frame

    def live_frame_and_ids(self) -> tuple[EncodedFrame, list[int]]:
        """The live rows folded into one fresh frame, plus its stable ids.

        The compaction product: base live rows first (base order), then live
        inserts (arrival order) — each paired with the id it keeps, so
        ``ids[r]`` is the new base's ``row -> stable id`` mapping.
        """
        base_rows = self.live_base_rows()
        insert_positions = self.live_insert_positions()
        ids = [self.stable_id_of_base_row(row) for row in base_rows]
        ids.extend(self._insert_ids[pos] for pos in insert_positions)
        base = self.base
        if base.uses_numpy:
            np = _numpy_or_none()
            inserts = self.insert_frame()
            index = np.asarray(base_rows, dtype=np.intp)
            ins_index = np.asarray(insert_positions, dtype=np.intp)
            to = np.concatenate([base.to[index], inserts.to[ins_index]], axis=0)
            codes = np.concatenate([base.codes[index], inserts.codes[ins_index]], axis=0)
            to.flags.writeable = False
            codes.flags.writeable = False
        else:
            to = tuple(base.to[row] for row in base_rows) + tuple(
                self._insert_to[pos] for pos in insert_positions
            )
            codes = tuple(base.codes[row] for row in base_rows) + tuple(
                self._insert_codes[pos] for pos in insert_positions
            )
        frame = EncodedFrame(self.schema, self.codec, to, codes, len(ids))
        return frame, ids

    def live_dataset_and_ids(self) -> tuple[Dataset, list[int]]:
        """The live rows as a record dataset (record ``i`` = live row ``i``),
        plus the stable id of each record — the record-path twin of
        :meth:`live_frame_and_ids`."""
        base_rows = self.live_base_rows()
        insert_positions = self.live_insert_positions()
        ids = [self.stable_id_of_base_row(row) for row in base_rows]
        ids.extend(self._insert_ids[pos] for pos in insert_positions)
        rows = decode_frame_rows(self.base, base_rows)
        rows.extend(decode_frame_rows(self.insert_frame(), insert_positions))
        return Dataset(self.schema, rows, validate=False), ids


def as_record_dataset(source) -> tuple[Dataset, list[int] | None]:
    """Normalize any data-plane source into ``(record dataset, stable ids)``.

    The adapter record-path consumers use to accept a :class:`Dataset`, an
    :class:`~repro.data.columns.EncodedFrame` or a live :class:`DeltaFrame`
    interchangeably.  ``ids`` is ``None`` when record positions already are
    the stable ids (plain datasets and frames); for a delta it maps record
    ``i`` of the returned dataset to its stable id.
    """
    if isinstance(source, DeltaFrame):
        return source.live_dataset_and_ids()
    if isinstance(source, EncodedFrame):
        return dataset_from_frame(source), None
    if isinstance(source, Dataset):
        return source, None
    raise QueryError(
        f"expected a Dataset, EncodedFrame or DeltaFrame, got {type(source).__name__}"
    )
