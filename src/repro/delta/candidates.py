"""Incremental maintenance of the base-candidate set under deletes.

The engine's prefilter keeps, per PO-value group, only the TO-Pareto front —
every dropped row is strictly TO-dominated by a live group sibling.  Deleting
a *front* row can therefore resurrect siblings the prefilter dropped, so the
candidate set cannot be maintained by subtraction alone.
:class:`BaseCandidateTracker` keeps the full initial membership of every
group (built lazily on the first base delete, vectorized) plus the set of
removed rows, and recomputes exactly the dirty groups' fronts with the same
:meth:`pareto_mask <repro.kernels.base.DominanceKernel.pareto_mask>` call the
prefilter used, so the tracked candidate set always equals what a fresh
prefilter over the live base rows would return.

The candidate set is the union of the per-group fronts, so per-group front
sets are never stored: a row is a front row iff it is a candidate, and a
dirty group's current front is recovered as ``live members ∩ candidates``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.data.columns import EncodedFrame


class BaseCandidateTracker:
    """Tracks the engine's base candidate rows across base-row deletes."""

    def __init__(
        self,
        frame: EncodedFrame,
        kernel,
        *,
        prefilter: bool,
        initial_rows: Sequence[int],
    ) -> None:
        self._frame = frame
        self._kernel = kernel
        # Without TO attributes the prefilter is the identity (every record
        # survives), so group/front bookkeeping degenerates to subtraction.
        self._prefilter = bool(prefilter) and frame.schema.num_total_order > 0
        self._candidates = set(int(row) for row in initial_rows)
        self._members: list | None = None
        self._group_of_row = None
        self._removed: set[int] = set()

    def _ensure_groups(self) -> None:
        if self._members is not None:
            return
        frame = self._frame
        if frame.uses_numpy:
            import numpy as np

            codes = np.ascontiguousarray(frame.codes)
            if codes.shape[1] == 1:
                _, inverse = np.unique(codes[:, 0], return_inverse=True)
            else:
                _, inverse = np.unique(codes, axis=0, return_inverse=True)
            inverse = np.ascontiguousarray(inverse.ravel())
            order = np.argsort(inverse, kind="stable")
            boundaries = np.cumsum(np.bincount(inverse))[:-1]
            self._members = np.split(order, boundaries)
            self._group_of_row = inverse
        else:
            by_key: dict[tuple, list[int]] = {}
            for row, code_row in enumerate(frame.codes):
                by_key.setdefault(tuple(code_row), []).append(row)
            members = list(by_key.values())
            group_of_row: dict[int, int] = {}
            for group_index, rows in enumerate(members):
                for row in rows:
                    group_of_row[row] = group_index
            self._members = members
            self._group_of_row = group_of_row

    def _group_index(self, row: int) -> int | None:
        if isinstance(self._group_of_row, dict):
            return self._group_of_row.get(row)
        if 0 <= row < len(self._group_of_row):
            return int(self._group_of_row[row])
        return None

    def _recompute_front(self, group_index: int) -> None:
        removed = self._removed
        members = sorted(
            int(row) for row in self._members[group_index] if int(row) not in removed
        )
        # Candidates are exactly the union of group fronts, so this group's
        # surviving front members are its members that are still candidates.
        old_front = [row for row in members if row in self._candidates]
        if len(members) <= 1:
            front = members
        else:
            frame = self._frame
            if frame.uses_numpy:
                import numpy as np

                to_block = frame.to[np.asarray(members, dtype=np.intp)]
            else:
                to_block = [frame.to[row] for row in members]
            mask = self._kernel.pareto_mask(to_block)
            front = [row for row, keep in zip(members, mask) if keep]
        self._candidates.difference_update(old_front)
        self._candidates.update(front)

    def remove_rows(self, rows: Sequence[int]) -> bool:
        """Drop deleted base rows; returns whether the candidate set changed."""
        if not self._prefilter:
            changed = False
            for row in rows:
                if row in self._candidates:
                    self._candidates.discard(row)
                    changed = True
            return changed
        self._ensure_groups()
        dirty: set[int] = set()
        for row in rows:
            row = int(row)
            group_index = self._group_index(row)
            if group_index is None:
                continue
            self._removed.add(row)
            if row in self._candidates:
                # Only a front (candidate) deletion can change the front:
                # removing a dominated member leaves the Pareto set intact.
                self._candidates.discard(row)
                dirty.add(group_index)
        for group_index in dirty:
            self._recompute_front(group_index)
        return bool(dirty)

    def candidates(self) -> list[int]:
        """The current candidate rows, ascending (prefilter contract)."""
        return sorted(self._candidates)
