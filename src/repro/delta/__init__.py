"""The columnar delta plane: LSM-style live updates over an immutable base.

The static planes of the library are read-optimized and immutable — an
:class:`~repro.data.columns.EncodedFrame` encoded once, a bulk-loaded
R-tree, a packed :class:`~repro.store.reader.DatasetStore`.  This package
adds the write path without giving any of that up, the way LSM trees do:

* :class:`DeltaFrame` (``frame.py``) — append-only insert blocks in the same
  canonical column layout as the base frame, plus a tombstone id-set for
  deletes, layered over the immutable base.  Record ids are *stable*: base
  rows keep their ids, inserts get fresh monotonically increasing ids, and
  compaction preserves both.
* :class:`BaseCandidateTracker` (``candidates.py``) — incremental
  maintenance of the engine's per-PO-group TO-Pareto prefilter under base
  deletes (deleting a survivor can resurrect group siblings the prefilter
  dropped).
* :func:`cross_examine` (``merge.py``) — the divide-and-conquer merge step:
  the live skyline equals the mutual survivors of the base-side and
  delta-side skylines, decided by two batched kernel calls.
* :class:`~repro.store.delta.DeltaLog` (``repro.store.delta``) — the
  crash-safe sidecar persisting mutations next to a packed store until
  compaction folds them into a new base.

Queries over a mutated engine are bitwise-identical (ids and discovery
order) to a from-scratch rebuild over the live rows — pinned by the
hypothesis suite in ``tests/delta/``.
"""

from repro.delta.candidates import BaseCandidateTracker
from repro.delta.frame import DeltaFrame, as_record_dataset, dataset_from_frame
from repro.delta.merge import cross_examine, tables_blocks

__all__ = [
    "BaseCandidateTracker",
    "DeltaFrame",
    "as_record_dataset",
    "cross_examine",
    "dataset_from_frame",
    "tables_blocks",
]
