"""Dataset sharding strategies for the parallel executor.

A *partitioner* splits a :class:`~repro.data.dataset.Dataset` into a fixed
number of :class:`Shard` objects.  Correctness of the divide-and-conquer
skyline (local skylines + cross-shard merge) does not depend on the strategy —
any partition works — but the strategy shapes the constants:

* :func:`round_robin_partition` — deal records out cyclically.  Shard sizes
  differ by at most one, and records that are adjacent in generation order
  (often correlated) land on different shards.
* :func:`po_group_partition` — keep all records that share one PO value
  combination on the same shard (largest groups first, each assigned to the
  currently smallest shard).  Records of a group tie on every PO attribute
  under every preference DAG, so their mutual dominance is decided by the TO
  attributes alone; co-locating them lets the per-shard skyline pass resolve
  those fights locally instead of deferring them to the merge phase.

Both strategies also run directly over an :class:`~repro.data.columns.
EncodedFrame` (see :func:`partition_frame`): a frame row's position plays the
record id, and the PO-code rows are bijective with the PO value combinations,
so the frame path yields the identical shard assignment — which is what lets
a store-backed executor partition without ever materializing records.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass, field
from functools import cached_property

from repro.data.columns import EncodedFrame
from repro.data.dataset import Dataset
from repro.exceptions import QueryError

Value = Hashable

#: A partitioner maps ``(dataset, num_shards)`` to exactly ``num_shards`` shards.
Partitioner = Callable[[Dataset, int], list["Shard"]]


@dataclass(frozen=True)
class Shard:
    """One horizontal slice of a dataset.

    ``record_ids[i]`` is the parent-dataset id of the shard record with local
    id ``i`` (subsets re-assign ids positionally), so local skyline ids map
    back to parent ids by indexing.  The record view is materialized lazily:
    the columnar executor ships :class:`~repro.data.columns.EncodedFrame`
    slices instead and never pays for per-shard ``Record`` copies.  Shards cut
    from a frame (store-backed executors) carry no parent dataset at all;
    touching :attr:`dataset` on one raises a clean error.
    """

    shard_id: int
    record_ids: tuple[int, ...]
    parent: Dataset | None = field(repr=False, default=None)

    def __len__(self) -> int:
        return len(self.record_ids)

    @cached_property
    def dataset(self) -> Dataset:
        """The shard as a record Dataset (built on first access, then cached)."""
        if self.parent is None:
            raise QueryError(
                f"shard {self.shard_id} was cut from an encoded frame and has "
                f"no parent dataset to materialize records from"
            )
        return self.parent.subset(self.record_ids)


def _check_num_shards(num_shards: int) -> None:
    if num_shards < 1:
        raise QueryError(f"num_shards must be >= 1, got {num_shards}")


def _build_shards(
    dataset: Dataset | None, assignments: list[list[int]]
) -> list[Shard]:
    return [
        Shard(
            shard_id=shard_id,
            record_ids=tuple(ids),
            parent=dataset,
        )
        for shard_id, ids in enumerate(assignments)
    ]


def round_robin_partition(dataset: Dataset, num_shards: int) -> list[Shard]:
    """Deal records out cyclically; shard sizes differ by at most one."""
    _check_num_shards(num_shards)
    assignments: list[list[int]] = [[] for _ in range(num_shards)]
    for record in dataset.records:
        assignments[record.id % num_shards].append(record.id)
    return _build_shards(dataset, assignments)


def po_group_partition(dataset: Dataset, num_shards: int) -> list[Shard]:
    """Keep each PO-combination group whole; balance group sizes greedily.

    Groups are placed largest-first onto the currently smallest shard (ties
    broken by shard id), the classic longest-processing-time heuristic.  For
    TO-only schemas every record is its own group, which degenerates to a
    balanced — but order-scrambled — assignment, so round-robin is used
    instead.
    """
    _check_num_shards(num_shards)
    schema = dataset.schema
    if not schema.num_partial_order:
        return round_robin_partition(dataset, num_shards)
    groups: dict[tuple[Value, ...], list[int]] = {}
    for record in dataset.records:
        groups.setdefault(schema.partial_values(record.values), []).append(record.id)
    assignments: list[list[int]] = [[] for _ in range(num_shards)]
    # Sort by (size desc, first id) so the assignment is deterministic.
    for member_ids in sorted(groups.values(), key=lambda ids: (-len(ids), ids[0])):
        smallest = min(range(num_shards), key=lambda i: len(assignments[i]))
        assignments[smallest].extend(member_ids)
    for ids in assignments:
        ids.sort()
    return _build_shards(dataset, assignments)


# --------------------------------------------------------------------- #
# Frame-based partitioning (dataset-free, used by store-backed executors)
# --------------------------------------------------------------------- #
def _round_robin_rows(length: int, num_shards: int) -> list[list[int]]:
    assignments: list[list[int]] = [[] for _ in range(num_shards)]
    for row in range(length):
        assignments[row % num_shards].append(row)
    return assignments


def _po_group_rows(frame: EncodedFrame, num_shards: int) -> list[list[int]]:
    if not frame.schema.num_partial_order:
        return _round_robin_rows(len(frame), num_shards)
    groups: dict[tuple, list[int]] = {}
    if frame.uses_numpy:
        for row in range(len(frame)):
            groups.setdefault(tuple(frame.codes[row].tolist()), []).append(row)
    else:
        for row, code_row in enumerate(frame.codes):
            groups.setdefault(tuple(code_row), []).append(row)
    assignments: list[list[int]] = [[] for _ in range(num_shards)]
    for member_ids in sorted(groups.values(), key=lambda ids: (-len(ids), ids[0])):
        smallest = min(range(num_shards), key=lambda i: len(assignments[i]))
        assignments[smallest].extend(member_ids)
    for ids in assignments:
        ids.sort()
    return assignments


def partition_frame(
    frame: EncodedFrame, num_shards: int, strategy: str = "round-robin"
) -> list[Shard]:
    """Cut an encoded frame into shards without a record dataset.

    Row positions stand in for record ids.  ``po-group`` groups by PO-code
    rows — bijective with the PO value combinations and iterated in the same
    row order, so the shard assignment is identical to the record path's for
    a frame encoded from that dataset.  Custom partitioner callables need
    records and are rejected here.
    """
    _check_num_shards(num_shards)
    if callable(strategy):
        raise QueryError(
            "custom partitioner callables need a record dataset; "
            "frame/store-backed executors support the named strategies "
            f"{sorted(PARTITIONERS)} only"
        )
    if strategy == "round-robin":
        assignments = _round_robin_rows(len(frame), num_shards)
    elif strategy == "po-group":
        assignments = _po_group_rows(frame, num_shards)
    else:
        raise QueryError(
            f"unknown partitioner {strategy!r}; known: {sorted(PARTITIONERS)}"
        )
    return _build_shards(None, assignments)


PARTITIONERS: dict[str, Partitioner] = {
    "round-robin": round_robin_partition,
    "po-group": po_group_partition,
}


def resolve_partitioner(partitioner: str | Partitioner) -> tuple[str, Partitioner]:
    """Coerce a partitioner argument (name or callable) to ``(name, callable)``."""
    if callable(partitioner):
        return getattr(partitioner, "__name__", "custom"), partitioner
    try:
        return partitioner, PARTITIONERS[partitioner]
    except KeyError:
        raise QueryError(
            f"unknown partitioner {partitioner!r}; known: {sorted(PARTITIONERS)}"
        ) from None
