"""Dataset sharding strategies for the parallel executor.

A *partitioner* splits a :class:`~repro.data.dataset.Dataset` into a fixed
number of :class:`Shard` objects.  Correctness of the divide-and-conquer
skyline (local skylines + cross-shard merge) does not depend on the strategy —
any partition works — but the strategy shapes the constants:

* :func:`round_robin_partition` — deal records out cyclically.  Shard sizes
  differ by at most one, and records that are adjacent in generation order
  (often correlated) land on different shards.
* :func:`po_group_partition` — keep all records that share one PO value
  combination on the same shard (largest groups first, each assigned to the
  currently smallest shard).  Records of a group tie on every PO attribute
  under every preference DAG, so their mutual dominance is decided by the TO
  attributes alone; co-locating them lets the per-shard skyline pass resolve
  those fights locally instead of deferring them to the merge phase.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass, field
from functools import cached_property

from repro.data.dataset import Dataset
from repro.exceptions import QueryError

Value = Hashable

#: A partitioner maps ``(dataset, num_shards)`` to exactly ``num_shards`` shards.
Partitioner = Callable[[Dataset, int], list["Shard"]]


@dataclass(frozen=True)
class Shard:
    """One horizontal slice of a dataset.

    ``record_ids[i]`` is the parent-dataset id of the shard record with local
    id ``i`` (subsets re-assign ids positionally), so local skyline ids map
    back to parent ids by indexing.  The record view is materialized lazily:
    the columnar executor ships :class:`~repro.data.columns.EncodedFrame`
    slices instead and never pays for per-shard ``Record`` copies.
    """

    shard_id: int
    record_ids: tuple[int, ...]
    parent: Dataset = field(repr=False)

    def __len__(self) -> int:
        return len(self.record_ids)

    @cached_property
    def dataset(self) -> Dataset:
        """The shard as a record Dataset (built on first access, then cached)."""
        return self.parent.subset(self.record_ids)


def _check_num_shards(num_shards: int) -> None:
    if num_shards < 1:
        raise QueryError(f"num_shards must be >= 1, got {num_shards}")


def _build_shards(dataset: Dataset, assignments: list[list[int]]) -> list[Shard]:
    return [
        Shard(
            shard_id=shard_id,
            record_ids=tuple(ids),
            parent=dataset,
        )
        for shard_id, ids in enumerate(assignments)
    ]


def round_robin_partition(dataset: Dataset, num_shards: int) -> list[Shard]:
    """Deal records out cyclically; shard sizes differ by at most one."""
    _check_num_shards(num_shards)
    assignments: list[list[int]] = [[] for _ in range(num_shards)]
    for record in dataset.records:
        assignments[record.id % num_shards].append(record.id)
    return _build_shards(dataset, assignments)


def po_group_partition(dataset: Dataset, num_shards: int) -> list[Shard]:
    """Keep each PO-combination group whole; balance group sizes greedily.

    Groups are placed largest-first onto the currently smallest shard (ties
    broken by shard id), the classic longest-processing-time heuristic.  For
    TO-only schemas every record is its own group, which degenerates to a
    balanced — but order-scrambled — assignment, so round-robin is used
    instead.
    """
    _check_num_shards(num_shards)
    schema = dataset.schema
    if not schema.num_partial_order:
        return round_robin_partition(dataset, num_shards)
    groups: dict[tuple[Value, ...], list[int]] = {}
    for record in dataset.records:
        groups.setdefault(schema.partial_values(record.values), []).append(record.id)
    assignments: list[list[int]] = [[] for _ in range(num_shards)]
    # Sort by (size desc, first id) so the assignment is deterministic.
    for member_ids in sorted(groups.values(), key=lambda ids: (-len(ids), ids[0])):
        smallest = min(range(num_shards), key=lambda i: len(assignments[i]))
        assignments[smallest].extend(member_ids)
    for ids in assignments:
        ids.sort()
    return _build_shards(dataset, assignments)


PARTITIONERS: dict[str, Partitioner] = {
    "round-robin": round_robin_partition,
    "po-group": po_group_partition,
}


def resolve_partitioner(partitioner: str | Partitioner) -> tuple[str, Partitioner]:
    """Coerce a partitioner argument (name or callable) to ``(name, callable)``."""
    if callable(partitioner):
        return getattr(partitioner, "__name__", "custom"), partitioner
    try:
        return partitioner, PARTITIONERS[partitioner]
    except KeyError:
        raise QueryError(
            f"unknown partitioner {partitioner!r}; known: {sorted(PARTITIONERS)}"
        ) from None
