"""Sharded parallel execution of skyline queries.

Classic divide-and-conquer skyline decomposition on top of the library's
kernel layer: partition the dataset into shards once
(:mod:`repro.parallel.partition`), compute per-shard local skylines — in
process or on a persistent :mod:`multiprocessing` worker pool with
process-local shard state — and merge the local skylines, by default with a
k-way sort-merge over the monotone SFS key (``"all-pairs"``, the original
one-batched-kernel-call-per-shard-pair sweep, stays available for A/B
benchmarking; see :mod:`repro.parallel.executor`).
"""

from repro.parallel.executor import (
    MERGE_ENV_VAR,
    MERGE_STRATEGIES,
    WORKERS_ENV_VAR,
    ShardedExecutor,
    ShardedQueryResult,
    resolve_merge_strategy,
    resolve_workers,
)
from repro.parallel.partition import (
    PARTITIONERS,
    Shard,
    po_group_partition,
    resolve_partitioner,
    round_robin_partition,
)

__all__ = [
    "MERGE_ENV_VAR",
    "MERGE_STRATEGIES",
    "PARTITIONERS",
    "WORKERS_ENV_VAR",
    "Shard",
    "ShardedExecutor",
    "ShardedQueryResult",
    "po_group_partition",
    "resolve_merge_strategy",
    "resolve_partitioner",
    "resolve_workers",
    "round_robin_partition",
]
