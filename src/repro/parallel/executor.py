"""The sharded executor: local skylines per shard, cross-shard merge.

The classic divide-and-conquer skyline identity: for any partition of the
data into shards, the global skyline is exactly the set of local skyline
records not dominated by a local skyline record of another shard.  (A record
dominated by anything is dominated by a skyline record of the dominator's
shard; a local skyline record not dominated across shards is dominated by
nothing.)  :class:`ShardedExecutor` exploits it in two phases, exposed
separately as :meth:`~ShardedExecutor.local_phase` and
:meth:`~ShardedExecutor.merge_phase` so callers (the concurrent query
service) can overlap the independent local phases of several queries and
synchronize only around the merge:

* **Local phase** — each shard's skyline is computed with sTSS (or SFS for
  TO-only schemas).  With ``workers >= 1`` the phase runs on a persistent
  :mod:`multiprocessing` pool whose workers hold the shards in process-local
  state: shards are shipped once at pool startup, and per query only the
  preference-DAG overrides travel.  Each worker keeps a per-topology interval
  encoding cache, mirroring the batch engine's.
* **Merge phase** — two strategies, selected per executor (or through the
  ``REPRO_MERGE`` environment variable):

  - ``"sort-merge"`` (default): a k-way heap merge of the local skylines
    over the monotone SFS sort key.  Dominance implies a smaller (under
    float rounding: never larger) key, so a record can only be killed by
    stream predecessors or key-ties, and (with transitivity) it suffices to
    test each record against the *surviving* prefix plus its own key-tie
    run.  The stream is consumed in chunks, each resolved with one
    batched window test (:meth:`~repro.kernels.base.RecordStore.
    block_dominated_mask`) plus one intra-chunk block test — total work is
    proportional to (stream length) x (global skyline), instead of the
    all-pairs (sum of local skylines)^2.
  - ``"all-pairs"``: the original batched kernel sweep, one
    :meth:`~repro.kernels.base.DominanceKernel.record_block_dominated_mask`
    call per shard pair, kept for A/B benchmarking.

``workers = 0`` runs both phases in-process — same partition and merge, no
pool — which is the deterministic baseline the property tests compare
against, and what a one-core host should use.

Executors are safe to share between *querying* threads: phases run
lock-free over immutable shard data, and the small shared caches/counters
are guarded internally.  :meth:`~ShardedExecutor.close` is not safe to race
against in-flight queries (terminating the pool mid-map would strand them)
— callers must drain queries first, as the query service does with its
in-flight counter before engine shutdown.
"""

from __future__ import annotations

import heapq
import multiprocessing
import threading
import time
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.config import MERGE_ENV_VAR, MERGE_STRATEGIES, WORKERS_ENV_VAR  # noqa: F401
from repro.config import resolve_merge_strategy as _resolve_merge_strategy
from repro.config import resolve_workers as _resolve_workers
from repro.core.stss import stss_skyline
from repro.data.columns import EncodedFrame, ordered_rows, resolve_frame_mode
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.engine.encodings import (
    DagKey,
    EncodingCache,
    dag_signature,
    validate_override_domains,
)
from repro.engine.lru import LRUDict
from repro.exceptions import DeadlineExceededError, ExperimentError, QueryError
from repro.faults.registry import trip as _fault_trip
from repro.index.registry import resolve_index
from repro.kernels import resolve_kernel
from repro.kernels.tables import RecordTables
from repro.order.dag import PartialOrderDAG
from repro.parallel.partition import Shard, partition_frame, resolve_partitioner
from repro.skyline.dominance import RecordEncoder
from repro.skyline.sfs import depth_columns, monotone_sort_key, sfs_skyline

#: Historical homes of the env-var names and strategy list (now in
#: :mod:`repro.config`; re-exported so old imports stay green).
#: Stream records resolved per batched window test of the sort-merge.
MERGE_CHUNK = 256


def resolve_workers(workers: int | str | None = None) -> int:
    """Deprecated shim: delegates to :func:`repro.config.resolve_workers`."""
    return _resolve_workers(workers)


def resolve_merge_strategy(strategy: str | None = None) -> str:
    """Deprecated shim: delegates to
    :func:`repro.config.resolve_merge_strategy`."""
    return _resolve_merge_strategy(strategy)


# ---------------------------------------------------------------------- #
# Worker-side machinery
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _StoreShardSpec:
    """What ships to a pool worker for one store-backed shard.

    Instead of pickling an :class:`~repro.data.columns.EncodedFrame` slice,
    the worker receives the store *path* plus the shard's global row
    positions, reopens the file itself (checksums already verified by the
    parent) and cuts its slice from the mapped frame — so every worker
    shares the parent's bytes through the OS page cache rather than holding
    a private pickled copy.
    """

    path: str
    mmap: bool
    rows: tuple[int, ...]


class _WorkerState:
    """Process-local state of one pool worker (or of the inline executor).

    Holds only the shards *owned* by this worker (shipped once at pool
    startup, keyed by shard index) plus a per-DAG interval encoding cache,
    so repeated queries against the same topology re-derive nothing.  With
    the frame path on, each shard arrives as an
    :class:`~repro.data.columns.EncodedFrame` of column blocks — no
    ``Record`` objects ever cross the process boundary.
    """

    def __init__(
        self,
        schema: Schema,
        shard_data: dict[int, "Dataset | EncodedFrame"],
        kernel_name: str | None,
        max_entries: int,
        encoding_cache_size: int,
        use_frame: bool = False,
        index_name: str | None = None,
    ) -> None:
        self.schema = schema
        if any(isinstance(data, _StoreShardSpec) for data in shard_data.values()):
            from repro.store.reader import DatasetStore

            stores: dict[str, DatasetStore] = {}
            resolved: dict[int, "Dataset | EncodedFrame"] = {}
            for index, data in shard_data.items():
                if isinstance(data, _StoreShardSpec):
                    store = stores.get(data.path)
                    if store is None:
                        store = stores[data.path] = DatasetStore.open(
                            data.path, mmap=data.mmap, verify=False
                        )
                    resolved[index] = store.frame().take(list(data.rows))
                else:
                    resolved[index] = data
            shard_data = resolved
        self.shard_data = shard_data
        self.kernel = resolve_kernel(kernel_name)
        self.max_entries = max_entries
        self.use_frame = use_frame
        self.index = resolve_index(index_name)
        self._encoding_cache = EncodingCache(encoding_cache_size)

    def local_skyline(
        self, shard_index: int, overrides: Mapping[str, PartialOrderDAG]
    ) -> list[int]:
        """Local skyline ids (shard-local positions) of one shard."""
        data = self.shard_data[shard_index]
        if not len(data):
            return []
        if isinstance(data, EncodedFrame):
            if self.schema.num_partial_order:
                schema = (
                    self.schema.replace_partial_order(dict(overrides))
                    if overrides
                    else self.schema
                )
                result = stss_skyline(
                    None,
                    encodings=self._encoding_cache.encodings_for(
                        self.schema.partial_order_attributes, overrides
                    ),
                    schema=schema,
                    frame=data,
                    max_entries=self.max_entries,
                    kernel=self.kernel,
                    index=self.index,
                )
            else:
                result = sfs_skyline(None, frame=data, kernel=self.kernel)
            return result.skyline_ids
        dataset = data
        if overrides:
            schema = self.schema.replace_partial_order(dict(overrides))
            dataset = dataset.with_schema(schema, validate=False)
        if self.schema.num_partial_order:
            result = stss_skyline(
                dataset,
                encodings=self._encoding_cache.encodings_for(
                    self.schema.partial_order_attributes, overrides
                ),
                max_entries=self.max_entries,
                kernel=self.kernel,
                use_frame=self.use_frame,
                index=self.index,
            )
        else:
            result = sfs_skyline(dataset, kernel=self.kernel, use_frame=self.use_frame)
        return result.skyline_ids


_WORKER_STATE: _WorkerState | None = None


def _init_worker(
    schema: Schema,
    shard_data: dict[int, "Dataset | EncodedFrame"],
    kernel_name: str | None,
    max_entries: int,
    encoding_cache_size: int,
    use_frame: bool = False,
    index_name: str | None = None,
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = _WorkerState(
        schema,
        shard_data,
        kernel_name,
        max_entries,
        encoding_cache_size,
        use_frame,
        index_name,
    )


def _worker_local_skyline(
    task: tuple[int, dict[str, PartialOrderDAG]],
) -> tuple[int, list[int]]:
    shard_index, overrides = task
    # Inside the pool worker: ``raise`` surfaces through apply_async as the
    # remote exception, ``exit`` kills this very process — both feed the
    # parent's self-healing ladder (respawn once, then inline).
    _fault_trip("pool.worker_task")
    assert _WORKER_STATE is not None, "worker pool used before initialization"
    return shard_index, _WORKER_STATE.local_skyline(shard_index, overrides)


class _PoolFailure(Exception):
    """Internal signal: a pool worker died or failed (triggers self-healing)."""


# ---------------------------------------------------------------------- #
# Results
# ---------------------------------------------------------------------- #
@dataclass
class ShardedQueryResult:
    """Outcome of one sharded skyline query, with per-phase accounting.

    ``local_window`` is the ``(start, end)`` of the local phase on the
    :func:`time.monotonic` clock — concurrency tests use it to prove that
    two queries' local phases actually overlapped in wall-clock time.
    ``merge_batches`` counts batched kernel calls: shard-pair sweeps under
    ``all-pairs``, window/intra-chunk tests under ``sort-merge``.
    """

    name: str
    skyline_ids: list[int]
    seconds: float
    seconds_local: float
    seconds_merge: float
    local_skyline_sizes: list[int] = field(default_factory=list)
    merge_batches: int = 0
    merge_checks: int = 0
    merge_strategy: str = "sort-merge"
    local_window: tuple[float, float] = (0.0, 0.0)

    @property
    def merge_pairs(self) -> int:
        """Pre-sort-merge name of :attr:`merge_batches` (kept for callers)."""
        return self.merge_batches

    @property
    def skyline_set(self) -> frozenset[int]:
        return frozenset(self.skyline_ids)


class _MergeCounter:
    """Minimal dominance-check counter accepted by the kernel layer."""

    __slots__ = ("dominance_checks",)

    def __init__(self) -> None:
        self.dominance_checks = 0


@dataclass(frozen=True)
class _MergeArtifacts:
    """Per-topology ground truth shared by both merge strategies.

    ``sort_key`` is the monotone SFS preference function under the query's
    effective schema: dominance implies a (mathematically) strictly smaller
    key, which is the invariant the sort-merge strategy leans on.  With the
    frame path on, ``code_maps``/``depths`` carry the columnar equivalents:
    the per-attribute target code spaces of ``tables`` and the DAG depths of
    every frame-canonical code (the key vector's gather tables).
    """

    tables: RecordTables
    encoder: RecordEncoder
    sort_key: object  # Callable[[Record], float]
    code_maps: tuple[dict, ...] | None = None
    depths: tuple[tuple[int, ...], ...] | None = None


# ---------------------------------------------------------------------- #
# The executor
# ---------------------------------------------------------------------- #
class ShardedExecutor:
    """Answer dynamic-preference skyline queries over a sharded dataset.

    Parameters
    ----------
    dataset:
        The relation to shard.  Shards are derived once at construction.
    num_shards:
        Number of shards; defaults to ``max(1, workers)``.
    workers:
        Worker processes for the local phase.  ``0`` (default, or via the
        ``REPRO_WORKERS`` environment variable) runs in-process; ``>= 1``
        uses a persistent pool started lazily on the first query (or
        explicitly with :meth:`start`).
    partitioner:
        ``"round-robin"``, ``"po-group"``, or a callable (see
        :mod:`repro.parallel.partition`).
    kernel / max_entries:
        Dominance kernel backend and R-tree fanout, forwarded to the local
        sTSS runs and the merge phase.
    merge_strategy:
        ``"sort-merge"`` (default) or ``"all-pairs"``; ``None`` consults the
        ``REPRO_MERGE`` environment variable (see the module docstring).
    encoding_cache_size:
        LRU bound of each worker's per-DAG interval-encoding cache (the
        batch engine forwards its ``cache_size`` here).
    task_timeout:
        Seconds to wait for one shard's local skyline from the pool before
        failing the query with :class:`~repro.exceptions.QueryError` —
        without it a crashed worker (e.g. OOM-killed) would wedge the query,
        and any service serializing on it, forever.  ``None`` disables.
    store / store_rows:
        A :class:`~repro.store.reader.DatasetStore` backing ``frame`` plus
        the store-global row position of each frame row.  When set, pool
        workers receive only ``(path, rows)`` specs, reopen the packed file
        themselves and slice their shards from the mapped frame — sharing
        the parent's bytes through the OS page cache instead of holding
        pickled copies.  ``dataset`` may then be ``None``; shards are cut
        from the frame directly (named strategies only).
    """

    def __init__(
        self,
        dataset: Dataset | None = None,
        *,
        num_shards: int | None = None,
        workers: int | str | None = None,
        partitioner="round-robin",
        kernel=None,
        max_entries: int = 32,
        merge_strategy: str | None = None,
        encoding_cache_size: int = 256,
        task_timeout: float | None = 600.0,
        frame: EncodedFrame | None = None,
        use_frame: bool | None = None,
        index=None,
        store=None,
        store_rows=None,
    ) -> None:
        if dataset is None and frame is None:
            raise QueryError(
                "a dataset-free executor needs an encoded frame (pass the "
                "store's frame, or a dataset)"
            )
        if store is not None and frame is None:
            raise QueryError("store-backed executors require the frame path")
        self.dataset = dataset
        self.schema = dataset.schema if dataset is not None else frame.schema
        self.index = resolve_index(index)
        self.workers = resolve_workers(workers)
        self.num_shards = max(1, self.workers) if num_shards is None else num_shards
        if self.num_shards < 1:
            raise QueryError(f"num_shards must be >= 1, got {self.num_shards}")
        self.kernel = resolve_kernel(kernel)
        self.max_entries = max_entries
        self.merge_strategy = resolve_merge_strategy(merge_strategy)
        self.encoding_cache_size = encoding_cache_size
        self.task_timeout = task_timeout
        # The columnar data plane: one encoded frame over the whole dataset,
        # sliced per shard — what travels to workers and feeds the merges.
        if dataset is not None:
            if frame is not None and len(frame) != len(dataset):
                raise QueryError(
                    f"encoded frame has {len(frame)} rows but the dataset has "
                    f"{len(dataset)}"
                )
            if frame is None and resolve_frame_mode(use_frame):
                frame = EncodedFrame.from_dataset(dataset)
        self._frame = frame
        self._size = len(dataset) if dataset is not None else len(frame)
        # Store shipping: workers reopen the packed file (sharing the OS page
        # cache) and slice their shards by these store-global row positions
        # instead of receiving pickled frame slices.
        self._store = store
        if store is not None:
            store_rows = (
                list(range(len(frame))) if store_rows is None else list(store_rows)
            )
            if len(store_rows) != len(frame):
                raise QueryError(
                    f"store_rows maps {len(store_rows)} rows but the frame "
                    f"has {len(frame)}"
                )
        self._store_rows = store_rows
        if dataset is not None:
            self.partitioner_name, partition = resolve_partitioner(partitioner)
            self.shards: list[Shard] = partition(dataset, self.num_shards)
        else:
            self.shards = partition_frame(frame, self.num_shards, partitioner)
            self.partitioner_name = (
                partitioner if isinstance(partitioner, str) else "custom"
            )
        self._shard_frames: tuple[EncodedFrame, ...] | None = (
            tuple(frame.take(shard.record_ids) for shard in self.shards)
            if frame is not None
            else None
        )
        self.queries_answered = 0
        # Guards lifecycle transitions (pool start/close, lazy inline state)
        # and the counters; the phases themselves run without it, so
        # concurrent queries interleave freely.
        self._lock = threading.Lock()
        self._pools: list[multiprocessing.pool.Pool] | None = None
        self._worker_pids: list[int] = []
        # Self-healing ladder (see :meth:`local_phase`): one pool respawn is
        # allowed per executor lifetime; the next failure degrades queries to
        # inline single-process execution permanently (counters below).
        self._heal_lock = threading.Lock()
        self._respawned = False
        self._degraded = False
        self.pool_respawns = 0
        self.inline_fallbacks = 0
        self.last_pool_failure: str | None = None
        self._inline_state: _WorkerState | None = None
        self._merge_tables: LRUDict[tuple[DagKey, ...], _MergeArtifacts]
        self._merge_tables = LRUDict(encoding_cache_size)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _owner_of(self, shard_index: int) -> int:
        """The worker owning a shard (fixed round-robin assignment)."""
        return shard_index % self.workers

    def _shard_payload(
        self, shard_index: int, *, ship_store: bool = False
    ) -> "Dataset | EncodedFrame | _StoreShardSpec":
        """What ships to workers for one shard: a store spec (path + rows)
        when the executor is store-backed and the payload crosses a process
        boundary, column blocks otherwise, records only when the frame path
        is disabled."""
        if ship_store and self._store is not None:
            shard = self.shards[shard_index]
            return _StoreShardSpec(
                path=self._store.path,
                mmap=self._store.uses_mmap,
                rows=tuple(
                    self._store_rows[position] for position in shard.record_ids
                ),
            )
        if self._shard_frames is not None:
            return self._shard_frames[shard_index]
        return self.shards[shard_index].dataset

    def _worker_initargs(self, shard_indices, *, ship_store: bool = False) -> tuple:
        """The pool-initializer payload holding the given shards."""
        return (
            self.schema,
            {
                index: self._shard_payload(index, ship_store=ship_store)
                for index in shard_indices
            },
            self.kernel.name,
            self.max_entries,
            self.encoding_cache_size,
            self._frame is not None,
            self.index,
        )

    def start(self) -> "ShardedExecutor":
        """Start the worker pool (no-op when ``workers == 0`` or already up).

        Each worker is a single-process pool that receives *only its own
        shards* (fixed round-robin shard-to-worker assignment) exactly once,
        through the pool initializer — per query only the DAG overrides
        travel.  Forking is only safe while the process is single-threaded
        (forking a multithreaded process can clone held locks into the
        child), so callers that spin up threads or an event loop — the query
        service does both — should start the pool eagerly; a lazy start from
        a multithreaded process falls back to ``spawn``.
        """
        with self._lock:
            if self.workers >= 1 and self._pools is None:
                can_fork = (
                    "fork" in multiprocessing.get_all_start_methods()
                    and threading.active_count() == 1
                )
                context = multiprocessing.get_context("fork" if can_fork else "spawn")
                pools = []
                for worker in range(self.workers):
                    owned = [
                        index
                        for index in range(len(self.shards))
                        if self._owner_of(index) == worker
                    ]
                    pools.append(
                        context.Pool(
                            processes=1,
                            initializer=_init_worker,
                            initargs=self._worker_initargs(owned, ship_store=True),
                        )
                    )
                self._pools = pools
                # Remember each worker's pid: a pool whose process has a new
                # pid (or an exit code) lost its worker — the race-free death
                # signal the health check keys on.
                self._worker_pids = [pool._pool[0].pid for pool in pools]
        return self

    def close(self) -> None:
        """Shut the worker pools down (idempotent).

        Must not race in-flight queries: drain them first (see the module
        docstring — the query service's in-flight counter does exactly
        this).
        """
        with self._lock:
            pools, self._pools = self._pools, None
        if pools is not None:
            for pool in pools:
                pool.terminate()
            for pool in pools:
                pool.join()

    def __enter__(self) -> "ShardedExecutor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        # During interpreter shutdown pool/module state is half-torn-down;
        # any failure here is unreportable by design.
        except Exception:  # reprolint: disable=typed-errors -- shutdown guard
            pass

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #
    def _validate_overrides(self, overrides: Mapping[str, PartialOrderDAG]) -> None:
        # Shard workers skip row re-validation (validate=False); the shared
        # up-front check is the cheap equivalent.
        validate_override_domains(self.schema.partial_order_attributes, overrides)

    def local_phase(
        self,
        overrides: dict[str, PartialOrderDAG],
        *,
        deadline: float | None = None,
    ) -> list[list[int]]:
        """Per shard: parent-dataset ids of the shard's local skyline.

        Thread-safe and lock-free over the immutable shards — the query
        service runs several queries' local phases concurrently and only
        synchronizes later, at the merge and cache boundaries.

        Worker failures self-heal instead of failing the query: a remote
        exception or a dead worker process respawns the pools once
        (``pool_respawns``); a failure after that degrades this executor to
        inline single-process execution for good (``inline_fallbacks``, both
        surfaced by :meth:`summary`) — the query still gets its correct
        skyline.  Task timeouts and caller deadlines are *not* healed: they
        raise :class:`~repro.exceptions.QueryError` /
        :class:`~repro.exceptions.DeadlineExceededError` as ever.
        """
        tasks = [
            (index, overrides) for index, shard in enumerate(self.shards) if len(shard)
        ]
        if self.workers >= 1 and not self._degraded:
            self.start()
            try:
                outcomes = self._pool_outcomes(tasks, deadline)
            except (DeadlineExceededError, QueryError):
                raise
            except Exception as error:  # the pool boundary: remote failures
                # arrive untyped (whatever the worker raised, or our death
                # signal) — all of them feed the healing ladder.
                outcomes = self._heal_and_retry(tasks, deadline, error)
        else:
            outcomes = self._inline_outcomes(tasks)
        local_ids: list[list[int]] = [[] for _ in self.shards]
        for shard_index, positions in outcomes:
            record_ids = self.shards[shard_index].record_ids
            local_ids[shard_index] = [record_ids[position] for position in positions]
        return local_ids

    def _pool_outcomes(self, tasks, deadline: float | None):
        """Submit ``tasks`` to the pools and gather results, watching health.

        Polls with a short timeout so a dead worker (whose task would
        otherwise hang until ``task_timeout``) is noticed within ~50ms via
        the pid/exit-code check and surfaces as :class:`_PoolFailure`.
        """
        pools = self._pools
        assert pools is not None
        pids = list(self._worker_pids)
        pending = [
            pools[self._owner_of(index)].apply_async(
                _worker_local_skyline, ((index, task_overrides),)
            )
            for index, task_overrides in tasks
        ]
        timeout_at = (
            None
            if self.task_timeout is None
            else time.monotonic() + self.task_timeout
        )
        outcomes = []
        for result in pending:
            while True:
                try:
                    outcomes.append(result.get(0.05))
                    break
                except multiprocessing.TimeoutError:
                    self._check_pool_health(pools, pids)
                    now = time.monotonic()
                    if deadline is not None and now >= deadline:
                        raise DeadlineExceededError(
                            "query deadline exceeded during the sharded "
                            "local phase"
                        ) from None
                    if timeout_at is not None and now >= timeout_at:
                        raise QueryError(
                            f"sharded local phase did not finish within "
                            f"{self.task_timeout:.0f}s (crashed or "
                            f"overloaded worker?)"
                        ) from None
        return outcomes

    @staticmethod
    def _check_pool_health(pools, pids: list[int]) -> None:
        for index, pool in enumerate(pools):
            processes = list(pool._pool)
            alive = [
                process
                for process in processes
                if process.exitcode is None
                and (index >= len(pids) or process.pid == pids[index])
            ]
            if not alive:
                raise _PoolFailure(
                    f"worker process for pool {index} died "
                    f"(exit codes: {[p.exitcode for p in processes]})"
                )

    def _heal_and_retry(self, tasks, deadline: float | None, error: Exception):
        """The self-healing ladder after a pool failure.

        First failure: terminate and respawn the pools, retry the tasks.
        Any failure beyond that: close the pools for good and answer this
        (and every later) query inline — degraded but correct.
        """
        with self._heal_lock:
            self.last_pool_failure = f"{type(error).__name__}: {error}"
            if not self._degraded:
                respawn = False
                with self._lock:
                    if not self._respawned:
                        self._respawned = respawn = True
                        self.pool_respawns += 1
                if respawn:
                    self.close()
                    self.start()
                    try:
                        return self._pool_outcomes(tasks, deadline)
                    except DeadlineExceededError:
                        raise
                    except Exception as retry_error:
                        # Respawn did not help — record why and degrade below.
                        self.last_pool_failure = (
                            f"{type(retry_error).__name__}: {retry_error}"
                        )
                with self._lock:
                    self._degraded = True
                    self.inline_fallbacks += 1
                self.close()
        return self._inline_outcomes(tasks)

    def _inline_outcomes(self, tasks):
        with self._lock:
            if self._inline_state is None:
                self._inline_state = _WorkerState(
                    *self._worker_initargs(range(len(self.shards)))
                )
            state = self._inline_state
        return [
            (index, state.local_skyline(index, task_overrides))
            for index, task_overrides in tasks
        ]

    def _merge_artifacts(
        self, overrides: dict[str, PartialOrderDAG]
    ) -> _MergeArtifacts:
        """Per-topology ground-truth tables/encoder/sort key for the merge."""
        key = tuple(
            dag_signature(overrides.get(attribute.name, attribute.dag))
            for attribute in self.schema.partial_order_attributes
        )
        cached = self._merge_tables.get(key)
        if cached is None:
            schema = (
                self.schema.replace_partial_order(overrides) if overrides else self.schema
            )
            tables = RecordTables.from_schema(schema)
            code_maps = None
            depths = None
            if self._frame is not None:
                code_maps = tuple(table.code_of for table in tables.attributes)
                depths = tuple(
                    tuple(column) for column in depth_columns(schema, self._frame)
                )
            cached = _MergeArtifacts(
                tables,
                RecordEncoder(schema, tables),
                monotone_sort_key(schema),
                code_maps,
                depths,
            )
            self._merge_tables[key] = cached
        return cached

    def merge_phase(
        self,
        local_ids: list[list[int]],
        overrides: dict[str, PartialOrderDAG],
        counter=None,
        *,
        strategy: str | None = None,
    ) -> tuple[list[int], int]:
        """Cross-examine local skylines; returns (survivor ids, batch count).

        ``strategy`` overrides the executor's configured merge strategy for
        this call (A/B benchmarking); the batch count is the number of
        batched kernel calls issued.
        """
        strategy = (
            self.merge_strategy if strategy is None else resolve_merge_strategy(strategy)
        )
        if counter is None:
            counter = _MergeCounter()
        # With at most one non-empty local skyline there is nothing to
        # cross-examine: its members are the global skyline verbatim.
        if sum(1 for ids in local_ids if ids) <= 1:
            return sorted(record_id for ids in local_ids for record_id in ids), 0
        if strategy == "all-pairs":
            return self._merge_all_pairs(local_ids, overrides, counter)
        return self._merge_sort_merge(local_ids, overrides, counter)

    def _merge_all_pairs(
        self,
        local_ids: list[list[int]],
        overrides: dict[str, PartialOrderDAG],
        counter,
    ) -> tuple[list[int], int]:
        """The original batched sweep: one kernel call per shard pair."""
        if self._frame is not None:
            return self._merge_all_pairs_frame(local_ids, overrides, counter)
        artifacts = self._merge_artifacts(overrides)
        encoder = artifacts.encoder
        encoded = [
            [encoder.encode(self.dataset[record_id]) for record_id in ids]
            for ids in local_ids
        ]
        survivors: list[int] = []
        pairs = 0
        for i, ids in enumerate(local_ids):
            # Indices of shard i members still alive; shrink after each pair so
            # later pairs cross-examine only the remaining contenders.
            alive = list(range(len(ids)))
            for j, dominators in enumerate(encoded):
                if i == j or not alive or not dominators:
                    continue
                pairs += 1
                targets = [encoded[i][index] for index in alive]
                mask = self.kernel.record_block_dominated_mask(
                    artifacts.tables, dominators, targets, counter=counter
                )
                alive = [index for index, dead in zip(alive, mask) if not dead]
            survivors.extend(ids[index] for index in alive)
        return sorted(survivors), pairs

    @staticmethod
    def _gather(block, indices):
        """Rows of a column block by position (fancy index or list gather)."""
        if isinstance(block, tuple):
            return [block[index] for index in indices]
        return block[indices]

    def _merge_all_pairs_frame(
        self,
        local_ids: list[list[int]],
        overrides: dict[str, PartialOrderDAG],
        counter,
    ) -> tuple[list[int], int]:
        """Columnar all-pairs sweep: shard blocks gathered from the frame."""
        artifacts = self._merge_artifacts(overrides)
        blocks = []
        for ids in local_ids:
            sub = self._frame.take(ids)
            blocks.append((sub.to, sub.remap_codes(artifacts.code_maps)))
        survivors: list[int] = []
        pairs = 0
        for i, ids in enumerate(local_ids):
            alive = list(range(len(ids)))
            to_block, code_block = blocks[i]
            for j, (dom_to, dom_codes) in enumerate(blocks):
                if i == j or not alive or not len(dom_to):
                    continue
                pairs += 1
                mask = self.kernel.record_block_dominated_columns(
                    artifacts.tables,
                    dom_to,
                    dom_codes,
                    self._gather(to_block, alive),
                    self._gather(code_block, alive),
                    counter=counter,
                )
                alive = [index for index, dead in zip(alive, mask) if not dead]
            survivors.extend(ids[index] for index in alive)
        return sorted(survivors), pairs

    def _merge_sort_merge(
        self,
        local_ids: list[list[int]],
        overrides: dict[str, PartialOrderDAG],
        counter,
    ) -> tuple[list[int], int]:
        """K-way heap merge over the monotone SFS key with incremental windows.

        Correctness: dominance implies a *mathematically* strictly smaller
        sort key, which floating-point summation can weaken to equality
        (``1e16 + 1.0 == 1e16``) — but never invert.  So every dominator of
        a record precedes it in the merged stream or ties its key, and it
        suffices to test against the *surviving* prefix plus the record's
        own key-tie run: chunks are extended to the end of a tie run, so an
        equal-key dominator is always resolved by the intra-chunk pass.  If
        a record's dominator was itself eliminated, transitivity hands the
        verdict to the eliminator.
        """
        if self._frame is not None:
            return self._merge_sort_merge_frame(local_ids, overrides, counter)
        artifacts = self._merge_artifacts(overrides)
        encoder, sort_key = artifacts.encoder, artifacts.sort_key
        # One (key, record_id, encoded) run per shard, sorted by key; local
        # skylines come out of SFS/sTSS roughly in this order already, so the
        # per-shard sorts are near-linear and the heap merge does the rest.
        runs = []
        for ids in local_ids:
            if not ids:
                continue
            records = [self.dataset[record_id] for record_id in ids]
            run = sorted(
                (sort_key(record), record.id, encoder.encode(record))
                for record in records
            )
            runs.append(run)
        stream = list(heapq.merge(*runs)) if runs else []
        window = self.kernel.record_store(artifacts.tables)
        survivors: list[int] = []
        batches = 0
        start = 0
        while start < len(stream):
            end = min(start + MERGE_CHUNK, len(stream))
            # Never split a key-tie run: a dominator whose float key ties its
            # victim's must share the victim's chunk to be cross-examined.
            while end < len(stream) and stream[end][0] == stream[end - 1][0]:
                end += 1
            chunk = stream[start:end]
            start = end
            if len(window):
                batches += 1
                mask = window.block_dominated_mask(
                    [encoded for _, _, encoded in chunk], counter=counter
                )
                alive = [entry for entry, dead in zip(chunk, mask) if not dead]
            else:
                alive = chunk
            if len(alive) > 1:
                # Resolve the chunk against itself: only stream predecessors
                # (smaller-or-equal keys) can dominate, and strictness makes
                # the self-comparison harmless.
                batches += 1
                mask = self.kernel.record_block_dominated_mask(
                    artifacts.tables,
                    [encoded for _, _, encoded in alive],
                    [encoded for _, _, encoded in alive],
                    counter=counter,
                )
                alive = [entry for entry, dead in zip(alive, mask) if not dead]
            for _, record_id, encoded in alive:
                window.append(*encoded)
                survivors.append(record_id)
        return sorted(survivors), batches

    def _merge_sort_merge_frame(
        self,
        local_ids: list[list[int]],
        overrides: dict[str, PartialOrderDAG],
        counter,
    ) -> tuple[list[int], int]:
        """Columnar sort-merge: one key vector, one stable sort, block tests.

        Equivalent to the heap-merge record path — the stream is ordered by
        ``(key, record id)`` with bitwise-identical keys, so chunk
        boundaries, tie runs, kernel calls and check counts all match; the
        rows just stream out of the executor's frame instead of being
        encoded record by record.
        """
        artifacts = self._merge_artifacts(overrides)
        frame = self._frame
        stream_ids = [record_id for ids in local_ids for record_id in ids]
        sub = frame.take(stream_ids)
        codes = sub.remap_codes(artifacts.code_maps)
        keys = sub.monotone_keys(artifacts.depths)
        order = ordered_rows(keys, stream_ids, uses_numpy=sub.uses_numpy)
        window = self.kernel.record_store(artifacts.tables)
        survivors: list[int] = []
        batches = 0
        start = 0
        total = len(order)
        while start < total:
            end = min(start + MERGE_CHUNK, total)
            # Never split a key-tie run (see the record path above).
            while end < total and keys[order[end]] == keys[order[end - 1]]:
                end += 1
            chunk = order[start:end]
            start = end
            alive = chunk
            if len(window):
                batches += 1
                mask = window.block_dominated_columns(
                    self._gather(sub.to, chunk),
                    self._gather(codes, chunk),
                    counter=counter,
                )
                alive = [row for row, dead in zip(chunk, mask) if not dead]
            if len(alive) > 1:
                batches += 1
                alive_to = self._gather(sub.to, alive)
                alive_codes = self._gather(codes, alive)
                mask = self.kernel.record_block_dominated_columns(
                    artifacts.tables,
                    alive_to,
                    alive_codes,
                    alive_to,
                    alive_codes,
                    counter=counter,
                )
                alive = [row for row, dead in zip(alive, mask) if not dead]
            if alive:
                window.extend(self._gather(sub.to, alive), self._gather(codes, alive))
                survivors.extend(stream_ids[row] for row in alive)
        return sorted(survivors), batches

    def query(
        self,
        dag_overrides: Mapping[str, PartialOrderDAG] | None = None,
        *,
        name: str = "query",
        merge_strategy: str | None = None,
        deadline: float | None = None,
    ) -> ShardedQueryResult:
        """Compute the skyline under (possibly overridden) preferences.

        Returns parent-dataset record ids, identical to what a single-process
        sTSS run over the whole dataset would report.  ``deadline`` is an
        absolute :func:`time.monotonic` timestamp checked during the local
        phase's pool wait and again at the merge boundary.
        """
        overrides = dict(dag_overrides or {})
        self._validate_overrides(overrides)
        started = time.perf_counter()
        local_started = time.monotonic()
        local_ids = self.local_phase(overrides, deadline=deadline)
        local_done = time.perf_counter()
        local_window = (local_started, time.monotonic())
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceededError(
                "query deadline exceeded before the cross-shard merge phase"
            )
        counter = _MergeCounter()
        strategy = (
            self.merge_strategy
            if merge_strategy is None
            else resolve_merge_strategy(merge_strategy)
        )
        skyline_ids, batches = self.merge_phase(
            local_ids, overrides, counter, strategy=strategy
        )
        finished = time.perf_counter()
        with self._lock:
            self.queries_answered += 1
        return ShardedQueryResult(
            name=name,
            skyline_ids=skyline_ids,
            seconds=finished - started,
            seconds_local=local_done - started,
            seconds_merge=finished - local_done,
            local_skyline_sizes=[len(ids) for ids in local_ids],
            merge_batches=batches,
            merge_checks=counter.dominance_checks,
            merge_strategy=strategy,
            local_window=local_window,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, object]:
        return {
            "dataset_size": self._size,
            "store": self._store.path if self._store is not None else None,
            "num_shards": self.num_shards,
            "shard_sizes": [len(shard) for shard in self.shards],
            "workers": self.workers,
            "partitioner": self.partitioner_name,
            "kernel": self.kernel.name,
            "index": self.index,
            "merge_strategy": self.merge_strategy,
            "frame": self._frame is not None,
            "queries_answered": self.queries_answered,
            "pool_running": self._pools is not None,
            "pool_respawns": self.pool_respawns,
            "inline_fallbacks": self.inline_fallbacks,
            "degraded_to_inline": self._degraded,
            "last_pool_failure": self.last_pool_failure,
        }
