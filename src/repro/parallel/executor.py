"""The sharded executor: local skylines per shard, batched cross-shard merge.

The classic divide-and-conquer skyline identity: for any partition of the
data into shards, the global skyline is exactly the set of local skyline
records not dominated by a local skyline record of another shard.  (A record
dominated by anything is dominated by a skyline record of the dominator's
shard; a local skyline record not dominated across shards is dominated by
nothing.)  :class:`ShardedExecutor` exploits it in two phases:

* **Local phase** — each shard's skyline is computed with sTSS (or SFS for
  TO-only schemas).  With ``workers >= 1`` the phase runs on a persistent
  :mod:`multiprocessing` pool whose workers hold the shards in process-local
  state: shards are shipped once at pool startup, and per query only the
  preference-DAG overrides travel.  Each worker keeps a per-topology interval
  encoding cache, mirroring the batch engine's.
* **Merge phase** — local skylines are cross-examined through one batched
  :meth:`~repro.kernels.base.DominanceKernel.record_block_dominated_mask`
  call per shard pair (targets already eliminated by an earlier pair are
  dropped from later calls).

``workers = 0`` runs both phases in-process — same partition and merge, no
pool — which is the deterministic baseline the property tests compare
against, and what a one-core host should use.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.stss import stss_skyline
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.engine.encodings import DagKey, EncodingCache, dag_signature
from repro.engine.lru import LRUDict
from repro.exceptions import ExperimentError, QueryError
from repro.kernels import resolve_kernel
from repro.kernels.tables import RecordTables
from repro.order.dag import PartialOrderDAG
from repro.parallel.partition import Shard, resolve_partitioner
from repro.skyline.dominance import RecordEncoder
from repro.skyline.sfs import sfs_skyline

#: Environment variable consulted when no explicit worker count is given
#: (mirrors ``REPRO_KERNEL`` for the kernel backend).
WORKERS_ENV_VAR = "REPRO_WORKERS"


def resolve_workers(workers: int | str | None = None) -> int:
    """Coerce a worker-count argument (int, string, or ``None`` for the env).

    ``0`` means in-process execution (no pool); ``None`` falls back to the
    ``REPRO_WORKERS`` environment variable, else ``0``.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR)
        if raw is None or not raw.strip():
            return 0
        workers = raw
    try:
        count = int(workers)
    except (TypeError, ValueError):
        raise ExperimentError(f"worker count must be an integer, got {workers!r}") from None
    if count < 0:
        raise ExperimentError(f"worker count must be >= 0, got {count}")
    return count


# ---------------------------------------------------------------------- #
# Worker-side machinery
# ---------------------------------------------------------------------- #
class _WorkerState:
    """Process-local state of one pool worker (or of the inline executor).

    Holds only the shards *owned* by this worker (shipped once at pool
    startup, keyed by shard index) plus a per-DAG interval encoding cache,
    so repeated queries against the same topology re-derive nothing.
    """

    def __init__(
        self,
        schema: Schema,
        shard_datasets: dict[int, Dataset],
        kernel_name: str | None,
        max_entries: int,
        encoding_cache_size: int,
    ) -> None:
        self.schema = schema
        self.shard_datasets = shard_datasets
        self.kernel = resolve_kernel(kernel_name)
        self.max_entries = max_entries
        self._encoding_cache = EncodingCache(encoding_cache_size)

    def local_skyline(
        self, shard_index: int, overrides: Mapping[str, PartialOrderDAG]
    ) -> list[int]:
        """Local skyline ids (shard-local positions) of one shard."""
        dataset = self.shard_datasets[shard_index]
        if not len(dataset):
            return []
        if overrides:
            schema = self.schema.replace_partial_order(dict(overrides))
            dataset = dataset.with_schema(schema, validate=False)
        if self.schema.num_partial_order:
            result = stss_skyline(
                dataset,
                encodings=self._encoding_cache.encodings_for(
                    self.schema.partial_order_attributes, overrides
                ),
                max_entries=self.max_entries,
                kernel=self.kernel,
            )
        else:
            result = sfs_skyline(dataset, kernel=self.kernel)
        return result.skyline_ids


_WORKER_STATE: _WorkerState | None = None


def _init_worker(
    schema: Schema,
    shard_datasets: dict[int, Dataset],
    kernel_name: str | None,
    max_entries: int,
    encoding_cache_size: int,
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = _WorkerState(
        schema, shard_datasets, kernel_name, max_entries, encoding_cache_size
    )


def _worker_local_skyline(
    task: tuple[int, dict[str, PartialOrderDAG]],
) -> tuple[int, list[int]]:
    shard_index, overrides = task
    assert _WORKER_STATE is not None, "worker pool used before initialization"
    return shard_index, _WORKER_STATE.local_skyline(shard_index, overrides)


# ---------------------------------------------------------------------- #
# Results
# ---------------------------------------------------------------------- #
@dataclass
class ShardedQueryResult:
    """Outcome of one sharded skyline query, with per-phase accounting."""

    name: str
    skyline_ids: list[int]
    seconds: float
    seconds_local: float
    seconds_merge: float
    local_skyline_sizes: list[int] = field(default_factory=list)
    merge_pairs: int = 0
    merge_checks: int = 0

    @property
    def skyline_set(self) -> frozenset[int]:
        return frozenset(self.skyline_ids)


class _MergeCounter:
    """Minimal dominance-check counter accepted by the kernel layer."""

    __slots__ = ("dominance_checks",)

    def __init__(self) -> None:
        self.dominance_checks = 0


# ---------------------------------------------------------------------- #
# The executor
# ---------------------------------------------------------------------- #
class ShardedExecutor:
    """Answer dynamic-preference skyline queries over a sharded dataset.

    Parameters
    ----------
    dataset:
        The relation to shard.  Shards are derived once at construction.
    num_shards:
        Number of shards; defaults to ``max(1, workers)``.
    workers:
        Worker processes for the local phase.  ``0`` (default, or via the
        ``REPRO_WORKERS`` environment variable) runs in-process; ``>= 1``
        uses a persistent pool started lazily on the first query (or
        explicitly with :meth:`start`).
    partitioner:
        ``"round-robin"``, ``"po-group"``, or a callable (see
        :mod:`repro.parallel.partition`).
    kernel / max_entries:
        Dominance kernel backend and R-tree fanout, forwarded to the local
        sTSS runs and the merge phase.
    encoding_cache_size:
        LRU bound of each worker's per-DAG interval-encoding cache (the
        batch engine forwards its ``cache_size`` here).
    task_timeout:
        Seconds to wait for one shard's local skyline from the pool before
        failing the query with :class:`~repro.exceptions.QueryError` —
        without it a crashed worker (e.g. OOM-killed) would wedge the query,
        and any service serializing on it, forever.  ``None`` disables.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        num_shards: int | None = None,
        workers: int | str | None = None,
        partitioner="round-robin",
        kernel=None,
        max_entries: int = 32,
        encoding_cache_size: int = 256,
        task_timeout: float | None = 600.0,
    ) -> None:
        self.dataset = dataset
        self.schema = dataset.schema
        self.workers = resolve_workers(workers)
        self.num_shards = max(1, self.workers) if num_shards is None else num_shards
        if self.num_shards < 1:
            raise QueryError(f"num_shards must be >= 1, got {self.num_shards}")
        self.partitioner_name, partition = resolve_partitioner(partitioner)
        self.shards: list[Shard] = partition(dataset, self.num_shards)
        self.kernel = resolve_kernel(kernel)
        self.max_entries = max_entries
        self.encoding_cache_size = encoding_cache_size
        self.task_timeout = task_timeout
        self.queries_answered = 0
        self._pools: list[multiprocessing.pool.Pool] | None = None
        self._inline_state: _WorkerState | None = None
        self._merge_tables: LRUDict[tuple[DagKey, ...], tuple[RecordTables, RecordEncoder]]
        self._merge_tables = LRUDict(encoding_cache_size)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _owner_of(self, shard_index: int) -> int:
        """The worker owning a shard (fixed round-robin assignment)."""
        return shard_index % self.workers

    def start(self) -> "ShardedExecutor":
        """Start the worker pool (no-op when ``workers == 0`` or already up).

        Each worker is a single-process pool that receives *only its own
        shards* (fixed round-robin shard-to-worker assignment) exactly once,
        through the pool initializer — per query only the DAG overrides
        travel.  Forking is only safe while the process is single-threaded
        (forking a multithreaded process can clone held locks into the
        child), so callers that spin up threads or an event loop — the query
        service does both — should start the pool eagerly; a lazy start from
        a multithreaded process falls back to ``spawn``.
        """
        if self.workers >= 1 and self._pools is None:
            can_fork = (
                "fork" in multiprocessing.get_all_start_methods()
                and threading.active_count() == 1
            )
            context = multiprocessing.get_context("fork" if can_fork else "spawn")
            pools = []
            for worker in range(self.workers):
                owned = {
                    index: shard.dataset
                    for index, shard in enumerate(self.shards)
                    if self._owner_of(index) == worker
                }
                pools.append(
                    context.Pool(
                        processes=1,
                        initializer=_init_worker,
                        initargs=(
                            self.schema,
                            owned,
                            self.kernel.name,
                            self.max_entries,
                            self.encoding_cache_size,
                        ),
                    )
                )
            self._pools = pools
        return self

    def close(self) -> None:
        """Shut the worker pools down (idempotent)."""
        if self._pools is not None:
            for pool in self._pools:
                pool.terminate()
            for pool in self._pools:
                pool.join()
            self._pools = None

    def __enter__(self) -> "ShardedExecutor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #
    def _validate_overrides(self, overrides: Mapping[str, PartialOrderDAG]) -> None:
        attributes = {a.name: a for a in self.schema.partial_order_attributes}
        unknown = set(overrides) - set(attributes)
        if unknown:
            raise QueryError(f"query overrides non-PO attributes: {sorted(unknown)}")
        # Shard workers skip row re-validation (validate=False), so check up
        # front that every override covers its attribute's whole domain —
        # the cheap equivalent of the single-process path's row validation.
        for name, dag in overrides.items():
            missing = set(attributes[name].domain) - set(dag.values)
            if missing:
                raise QueryError(
                    f"override for {name!r} is missing domain values: "
                    f"{sorted(missing, key=repr)}"
                )

    def _local_phase(
        self, overrides: dict[str, PartialOrderDAG]
    ) -> list[list[int]]:
        """Per shard: parent-dataset ids of the shard's local skyline."""
        tasks = [
            (index, overrides) for index, shard in enumerate(self.shards) if len(shard)
        ]
        if self.workers >= 1:
            self.start()
            assert self._pools is not None
            pending = [
                self._pools[self._owner_of(index)].apply_async(
                    _worker_local_skyline, ((index, overrides),)
                )
                for index, overrides in tasks
            ]
            try:
                outcomes = [result.get(self.task_timeout) for result in pending]
            except multiprocessing.TimeoutError:
                raise QueryError(
                    f"sharded local phase did not finish within "
                    f"{self.task_timeout:.0f}s (crashed or overloaded worker?)"
                ) from None
        else:
            if self._inline_state is None:
                self._inline_state = _WorkerState(
                    self.schema,
                    {index: shard.dataset for index, shard in enumerate(self.shards)},
                    self.kernel.name,
                    self.max_entries,
                    self.encoding_cache_size,
                )
            outcomes = [
                (index, self._inline_state.local_skyline(index, overrides))
                for index, _ in tasks
            ]
        local_ids: list[list[int]] = [[] for _ in self.shards]
        for shard_index, positions in outcomes:
            record_ids = self.shards[shard_index].record_ids
            local_ids[shard_index] = [record_ids[position] for position in positions]
        return local_ids

    def _merge_artifacts(
        self, overrides: dict[str, PartialOrderDAG]
    ) -> tuple[RecordTables, RecordEncoder]:
        """Per-topology ground-truth tables/encoder for the merge phase."""
        key = tuple(
            dag_signature(overrides.get(attribute.name, attribute.dag))
            for attribute in self.schema.partial_order_attributes
        )
        cached = self._merge_tables.get(key)
        if cached is None:
            schema = (
                self.schema.replace_partial_order(overrides) if overrides else self.schema
            )
            tables = RecordTables.from_schema(schema)
            cached = (tables, RecordEncoder(schema, tables))
            self._merge_tables[key] = cached
        return cached

    def _merge_phase(
        self,
        local_ids: list[list[int]],
        overrides: dict[str, PartialOrderDAG],
        counter: _MergeCounter,
    ) -> tuple[list[int], int]:
        """Cross-examine local skylines; returns (survivor ids, pair count)."""
        tables, encoder = self._merge_artifacts(overrides)
        encoded = [
            [encoder.encode(self.dataset[record_id]) for record_id in ids]
            for ids in local_ids
        ]
        survivors: list[int] = []
        pairs = 0
        for i, ids in enumerate(local_ids):
            # Indices of shard i members still alive; shrink after each pair so
            # later pairs cross-examine only the remaining contenders.
            alive = list(range(len(ids)))
            for j, dominators in enumerate(encoded):
                if i == j or not alive or not dominators:
                    continue
                pairs += 1
                targets = [encoded[i][index] for index in alive]
                mask = self.kernel.record_block_dominated_mask(
                    tables, dominators, targets, counter=counter
                )
                alive = [index for index, dead in zip(alive, mask) if not dead]
            survivors.extend(ids[index] for index in alive)
        return sorted(survivors), pairs

    def query(
        self,
        dag_overrides: Mapping[str, PartialOrderDAG] | None = None,
        *,
        name: str = "query",
    ) -> ShardedQueryResult:
        """Compute the skyline under (possibly overridden) preferences.

        Returns parent-dataset record ids, identical to what a single-process
        sTSS run over the whole dataset would report.
        """
        overrides = dict(dag_overrides or {})
        self._validate_overrides(overrides)
        started = time.perf_counter()
        local_ids = self._local_phase(overrides)
        local_done = time.perf_counter()
        counter = _MergeCounter()
        skyline_ids, pairs = self._merge_phase(local_ids, overrides, counter)
        finished = time.perf_counter()
        self.queries_answered += 1
        return ShardedQueryResult(
            name=name,
            skyline_ids=skyline_ids,
            seconds=finished - started,
            seconds_local=local_done - started,
            seconds_merge=finished - local_done,
            local_skyline_sizes=[len(ids) for ids in local_ids],
            merge_pairs=pairs,
            merge_checks=counter.dominance_checks,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, object]:
        return {
            "dataset_size": len(self.dataset),
            "num_shards": self.num_shards,
            "shard_sizes": [len(shard) for shard in self.shards],
            "workers": self.workers,
            "partitioner": self.partitioner_name,
            "kernel": self.kernel.name,
            "queries_answered": self.queries_answered,
            "pool_running": self._pools is not None,
        }
