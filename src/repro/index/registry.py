"""Pluggable spatial index backends (pointer reference vs array-backed flat).

Every static (bulk-loaded, read-only) R-tree in the library — the data trees
of BBS/sTSS, the baselines' transformed-space trees and the main-memory tree
of virtual skyline points — is built through a backend selected here,
mirroring the dominance-kernel registry in :mod:`repro.kernels`:

1. an explicit ``index`` argument passed to the consuming algorithm,
2. a process-wide override installed with :func:`set_default_index`
   (the CLI's ``--index`` flag uses this),
3. the ``REPRO_INDEX`` environment variable,
4. automatic: ``flat`` when NumPy is importable, else ``pointer``.

``pointer`` is the reference :class:`~repro.index.rtree.RTree` (always
available, and the only backend supporting inserts/deletes — the dynamic
algorithms keep it unconditionally).  ``flat`` is the structure-of-arrays
:class:`~repro.index.flat.FlatRTree`, bulk-loaded with a fully vectorized
STR and traversed without per-entry Python objects; it requires NumPy.
"""

from __future__ import annotations

from repro.config import INDEX_ENV_VAR  # noqa: F401  (historical home)
from repro.config import env_index_name
from repro.exceptions import ExperimentError

__all__ = [
    "INDEX_ENV_VAR",
    "available_indexes",
    "resolve_index",
    "set_default_index",
]

_ALIASES = {
    "pointer": "pointer",
    "rtree": "pointer",
    "flat": "flat",
    "array": "flat",
}

_default_override: str | None = None


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def available_indexes() -> tuple[str, ...]:
    """Canonical names of the backends usable in this environment."""
    names = ["pointer"]
    if _numpy_available():
        names.append("flat")
    return tuple(names)


def _canonical(name: str) -> str:
    try:
        return _ALIASES[name.strip().lower()]
    except KeyError:
        raise ExperimentError(
            f"unknown index backend {name!r}; known: {sorted(set(_ALIASES))}"
        ) from None


def resolve_index(name: str | None = None) -> str:
    """The canonical backend name for ``name`` (or the process default).

    Raises :class:`~repro.exceptions.ExperimentError` when the flat backend
    is requested (explicitly, via the override or via ``REPRO_INDEX``) in an
    environment without NumPy.
    """
    if name is None:
        if _default_override is not None:
            name = _default_override
        else:
            name = env_index_name() or (
                "flat" if _numpy_available() else "pointer"
            )
    canonical = _canonical(name)
    if canonical == "flat" and not _numpy_available():
        raise ExperimentError(
            "the 'flat' index backend requires NumPy; install the [numpy] "
            "extra or select REPRO_INDEX=pointer"
        )
    return canonical


def set_default_index(name: str | None) -> None:
    """Install (or clear, with ``None``) a process-wide backend override."""
    global _default_override
    _default_override = None if name is None else _canonical(name)
