"""Storage and index substrate: geometry, simulated disk pages and R-trees.

* :mod:`~repro.index.geometry` — axis-aligned rectangles (MBBs), L1 ``mindist``
  to the origin (the most preferable corner of the mapped space) and point
  containment/intersection tests.
* :mod:`~repro.index.pager` — a simulated page store with IO counting and an
  LRU buffer pool, used to charge the paper's per-IO cost.
* :mod:`~repro.index.rtree` — the pointer R-tree supporting insertion
  (quadratic split), STR bulk loading, range and Boolean range queries, and an
  incremental best-first traversal used by BBS-style algorithms.  The
  reference backend, and the only one the dynamic algorithms use.
* :mod:`~repro.index.flat` — the structure-of-arrays :class:`FlatRTree`:
  the same STR layout bulk-loaded with vectorized ``np.argsort`` partitioning
  and level-at-a-time MBR reductions, traversed without per-entry Python
  objects (requires NumPy; static consumers only).
* :mod:`~repro.index.registry` — backend selection (``--index`` /
  ``REPRO_INDEX`` / automatic), mirroring the dominance-kernel registry.
"""

from repro.index.geometry import Rect, point_mindist
from repro.index.pager import BufferPool, DiskSimulator, IOStats
from repro.index.registry import (
    INDEX_ENV_VAR,
    available_indexes,
    resolve_index,
    set_default_index,
)
from repro.index.rtree import BestFirstTraversal, NodeRef, RTree, RTreeEntry

__all__ = [
    "Rect",
    "point_mindist",
    "DiskSimulator",
    "BufferPool",
    "IOStats",
    "RTree",
    "RTreeEntry",
    "NodeRef",
    "BestFirstTraversal",
    "INDEX_ENV_VAR",
    "available_indexes",
    "resolve_index",
    "set_default_index",
]
