"""Storage and index substrate: geometry, simulated disk pages and an R-tree.

* :mod:`~repro.index.geometry` — axis-aligned rectangles (MBBs), L1 ``mindist``
  to the origin (the most preferable corner of the mapped space) and point
  containment/intersection tests.
* :mod:`~repro.index.pager` — a simulated page store with IO counting and an
  LRU buffer pool, used to charge the paper's per-IO cost.
* :mod:`~repro.index.rtree` — a from-scratch R-tree supporting insertion
  (quadratic split), STR bulk loading, range and Boolean range queries, and an
  incremental best-first traversal used by BBS-style algorithms.
"""

from repro.index.geometry import Rect, point_mindist
from repro.index.pager import BufferPool, DiskSimulator, IOStats
from repro.index.rtree import BestFirstTraversal, NodeRef, RTree, RTreeEntry

__all__ = [
    "Rect",
    "point_mindist",
    "DiskSimulator",
    "BufferPool",
    "IOStats",
    "RTree",
    "RTreeEntry",
    "NodeRef",
    "BestFirstTraversal",
]
