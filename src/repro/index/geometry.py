"""Axis-aligned rectangles (minimum bounding boxes) and distance helpers.

Every skyline algorithm in this library works in a mapped space where the
most preferable point is the origin and smaller coordinates are better.  The
relevant geometric primitives are therefore:

* the L1 (rectilinear) ``mindist`` of a point or rectangle to the origin,
  which drives the best-first visiting order of BBS-style algorithms, and
* containment / intersection tests for range queries.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.exceptions import IndexError_

Point = tuple[float, ...]


def point_mindist(point: Sequence[float]) -> float:
    """L1 distance of a point (with non-negative coordinates) to the origin."""
    return float(sum(point))


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[low, high]`` in d dimensions."""

    low: Point
    high: Point

    def __post_init__(self) -> None:
        if len(self.low) != len(self.high):
            raise IndexError_("rectangle corners must have the same dimensionality")
        if any(l > h for l, h in zip(self.low, self.high)):
            raise IndexError_(f"invalid rectangle: low={self.low} high={self.high}")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        coords = tuple(float(c) for c in point)
        return cls(coords, coords)

    @classmethod
    def bounding(cls, rects: Iterable["Rect"]) -> "Rect":
        """The minimum bounding rectangle of a non-empty collection."""
        rect_list = list(rects)
        if not rect_list:
            raise IndexError_("cannot bound an empty collection of rectangles")
        dims = rect_list[0].dimensions
        low = tuple(min(r.low[d] for r in rect_list) for d in range(dims))
        high = tuple(max(r.high[d] for r in rect_list) for d in range(dims))
        return cls(low, high)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def dimensions(self) -> int:
        return len(self.low)

    @property
    def is_point(self) -> bool:
        return self.low == self.high

    def mindist(self) -> float:
        """L1 distance of the lower-left corner to the origin (BBS priority)."""
        return float(sum(self.low))

    def area(self) -> float:
        result = 1.0
        for l, h in zip(self.low, self.high):
            result *= h - l
        return result

    def margin(self) -> float:
        return float(sum(h - l for l, h in zip(self.low, self.high)))

    def center(self) -> Point:
        return tuple((l + h) / 2.0 for l, h in zip(self.low, self.high))

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    def contains_point(self, point: Sequence[float]) -> bool:
        if len(point) != self.dimensions:
            raise IndexError_("point dimensionality mismatch")
        return all(l <= c <= h for l, c, h in zip(self.low, point, self.high))

    def contains_rect(self, other: "Rect") -> bool:
        self._check_dims(other)
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.low, self.high, other.low, other.high)
        )

    def intersects(self, other: "Rect") -> bool:
        self._check_dims(other)
        return all(
            sl <= oh and ol <= sh
            for sl, sh, ol, oh in zip(self.low, self.high, other.low, other.high)
        )

    # ------------------------------------------------------------------ #
    # Combination
    # ------------------------------------------------------------------ #
    def union(self, other: "Rect") -> "Rect":
        self._check_dims(other)
        low = tuple(min(a, b) for a, b in zip(self.low, other.low))
        high = tuple(max(a, b) for a, b in zip(self.high, other.high))
        return Rect(low, high)

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to also cover ``other`` (R-tree insertion heuristic)."""
        return self.union(other).area() - self.area()

    def _check_dims(self, other: "Rect") -> None:
        if self.dimensions != other.dimensions:
            raise IndexError_("rectangle dimensionality mismatch")

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rect(low={self.low}, high={self.high})"
