"""A from-scratch R-tree with STR bulk loading and best-first traversal.

The R-tree is the storage substrate of every index-based algorithm in the
paper: the data R-tree(s) that BBS / sTSS / SDC+ / dTSS traverse, and the
main-memory R-tree of virtual skyline points used for fast t-dominance checks
(Section IV-B).  Features:

* **Bulk loading** with the Sort-Tile-Recursive (STR) algorithm, which is how
  the experimental datasets are indexed (the paper bulk-loads per-stratum and
  per-group R-trees as well).
* **Dynamic insertion** with the classic quadratic-split heuristic (used for
  the incrementally grown main-memory R-tree of skyline points).
* **Range queries** and **Boolean range queries** (the latter stop at the
  first hit — exactly the optimization of Section IV-B).
* **Best-first traversal** ordered by L1 ``mindist`` to the origin, exposed as
  an incremental object so BBS-style algorithms can prune subtrees before
  they are expanded.
* Optional **IO accounting**: every node read is charged to a
  :class:`~repro.index.pager.DiskSimulator`, enabling the paper's
  "CPU + 5 ms x IOs" total-time metric.

Minimum bounding rectangles are cached on every node and maintained
incrementally, so insertions and queries never recompute bounds from scratch.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Callable, Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import IndexError_
from repro.index.geometry import Rect
from repro.index.pager import DiskSimulator

Payload = Hashable

#: Default maximum node fanout when none is supplied.
DEFAULT_MAX_ENTRIES = 32


@dataclass(frozen=True, slots=True)
class RTreeEntry:
    """A data entry: the indexed rectangle (usually a point) plus its payload."""

    rect: Rect
    payload: Payload


class _Node:
    """Internal R-tree node; one simulated disk page with a cached MBR."""

    __slots__ = ("leaf", "entries", "children", "page_id", "mbr")

    def __init__(self, leaf: bool, page_id: int) -> None:
        self.leaf = leaf
        self.entries: list[RTreeEntry] = []
        self.children: list[_Node] = []
        self.page_id = page_id
        self.mbr: Rect | None = None

    def size(self) -> int:
        return len(self.entries) if self.leaf else len(self.children)

    def recompute_mbr(self) -> None:
        """Recompute the cached MBR from the node's immediate contents."""
        if self.leaf:
            self.mbr = Rect.bounding(e.rect for e in self.entries) if self.entries else None
        else:
            rects = [c.mbr for c in self.children if c.mbr is not None]
            self.mbr = Rect.bounding(rects) if rects else None

    def extend_mbr(self, rect: Rect) -> None:
        self.mbr = rect if self.mbr is None else self.mbr.union(rect)


@dataclass(frozen=True, slots=True)
class NodeRef:
    """Handle to a not-yet-expanded node, as surfaced by the best-first traversal."""

    rect: Rect
    node: _Node

    @property
    def is_leaf(self) -> bool:
        return self.node.leaf


class RTree:
    """An R-tree over rectangles (or points) with hashable payloads."""

    def __init__(
        self,
        dimensions: int,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
        disk: DiskSimulator | None = None,
    ) -> None:
        if dimensions < 1:
            raise IndexError_("an R-tree needs at least one dimension")
        if max_entries < 4:
            raise IndexError_("max_entries must be at least 4")
        self.dimensions = dimensions
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(2, max_entries // 3)
        if not 2 <= self.min_entries <= self.max_entries // 2:
            raise IndexError_("min_entries must be in [2, max_entries / 2]")
        self.disk = disk
        self._page_counter = itertools.count()
        self._root = self._new_node(leaf=True)
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _new_node(self, leaf: bool) -> _Node:
        if self.disk is not None:
            page_id = self.disk.allocate_page()
        else:
            page_id = next(self._page_counter)
        return _Node(leaf=leaf, page_id=page_id)

    @classmethod
    def bulk_load(
        cls,
        dimensions: int,
        entries: Iterable[tuple[Sequence[float], Payload]],
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        disk: DiskSimulator | None = None,
    ) -> "RTree":
        """Build an R-tree over point data with the STR algorithm."""
        tree = cls(dimensions, max_entries=max_entries, disk=disk)
        data = [RTreeEntry(Rect.from_point(point), payload) for point, payload in entries]
        tree._size = len(data)
        if not data:
            return tree
        leaves: list[_Node] = []
        for group in _str_partition(data, dimensions, max_entries, key=lambda e: e.rect.center()):
            node = tree._new_node(leaf=True)
            node.entries = group
            node.recompute_mbr()
            leaves.append(node)
        tree._root, tree._height = tree._build_upper_levels(leaves)
        if disk is not None:
            # Bulk loading writes every node (page) of the finished tree once.
            disk.write_many(tree.node_count())
        return tree

    def _build_upper_levels(self, nodes: list[_Node]) -> tuple[_Node, int]:
        height = 1
        level = nodes
        while len(level) > 1:
            groups = _str_partition(
                level, self.dimensions, self.max_entries, key=lambda n: n.mbr.center()
            )
            parents: list[_Node] = []
            for group in groups:
                parent = self._new_node(leaf=False)
                parent.children = group
                parent.recompute_mbr()
                parents.append(parent)
            level = parents
            height += 1
        return level[0], height

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    @property
    def root(self) -> NodeRef:
        """A handle to the root node (not yet charged as an IO)."""
        rect = self._root.mbr or Rect.from_point((0.0,) * self.dimensions)
        return NodeRef(rect=rect, node=self._root)

    def node_count(self) -> int:
        """Total number of nodes (simulated pages) in the tree."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.leaf:
                stack.extend(node.children)
        return count

    def all_entries(self) -> list[RTreeEntry]:
        """Every data entry (no IO charged; used for validation and tests)."""
        result: list[RTreeEntry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                result.extend(node.entries)
            else:
                stack.extend(node.children)
        return result

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def insert(self, point: Sequence[float], payload: Payload) -> None:
        """Insert a point entry (quadratic-split R-tree insertion)."""
        self.insert_rect(Rect.from_point(point), payload)

    def insert_rect(self, rect: Rect, payload: Payload) -> None:
        if rect.dimensions != self.dimensions:
            raise IndexError_(
                f"entry has {rect.dimensions} dimensions, the tree expects {self.dimensions}"
            )
        entry = RTreeEntry(rect, payload)
        leaf, path = self._choose_leaf(rect)
        leaf.entries.append(entry)
        leaf.extend_mbr(rect)
        for ancestor in path:
            ancestor.extend_mbr(rect)
        self._size += 1
        if self.disk is not None:
            self.disk.write(leaf.page_id)
        self._handle_overflow(leaf, path)

    def _choose_leaf(self, rect: Rect) -> tuple[_Node, list[_Node]]:
        node = self._root
        path: list[_Node] = []
        while not node.leaf:
            path.append(node)
            node = min(
                node.children,
                key=lambda child: (child.mbr.enlargement(rect), child.mbr.area()),
            )
        return node, path

    def _handle_overflow(self, node: _Node, path: list[_Node]) -> None:
        while node.size() > self.max_entries:
            sibling = self._split(node)
            if path:
                parent = path.pop()
                parent.children.append(sibling)
                parent.extend_mbr(sibling.mbr)  # type: ignore[arg-type]
                if self.disk is not None:
                    self.disk.write(parent.page_id)
                node = parent
            else:
                new_root = self._new_node(leaf=False)
                new_root.children = [node, sibling]
                new_root.recompute_mbr()
                self._root = new_root
                self._height += 1
                return

    def _split(self, node: _Node) -> _Node:
        """Quadratic split: distribute the node's contents across node + a new sibling."""
        sibling = self._new_node(leaf=node.leaf)
        if node.leaf:
            items: list = node.entries
            rect_of: Callable[[object], Rect] = lambda item: item.rect  # type: ignore[attr-defined]
        else:
            items = node.children
            rect_of = lambda item: item.mbr  # type: ignore[attr-defined]

        seed_a, seed_b = _quadratic_pick_seeds(items, rect_of)
        group_a = [items[seed_a]]
        group_b = [items[seed_b]]
        rect_a = rect_of(items[seed_a])
        rect_b = rect_of(items[seed_b])
        remaining = [item for i, item in enumerate(items) if i not in (seed_a, seed_b)]

        while remaining:
            # If one group is so small that it needs every remaining item to
            # reach min_entries, assign them all and stop.
            if len(group_a) + len(remaining) <= self.min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) <= self.min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            item = _quadratic_pick_next(remaining, rect_a, rect_b, rect_of)
            remaining.remove(item)
            rect = rect_of(item)
            enlargement_a = rect_a.enlargement(rect)
            enlargement_b = rect_b.enlargement(rect)
            if (enlargement_a, rect_a.area(), len(group_a)) <= (
                enlargement_b,
                rect_b.area(),
                len(group_b),
            ):
                group_a.append(item)
                rect_a = rect_a.union(rect)
            else:
                group_b.append(item)
                rect_b = rect_b.union(rect)

        if node.leaf:
            node.entries = group_a
            sibling.entries = group_b
        else:
            node.children = group_a
            sibling.children = group_b
        node.recompute_mbr()
        sibling.recompute_mbr()
        if self.disk is not None:
            self.disk.write(node.page_id)
            self.disk.write(sibling.page_id)
        return sibling

    # ------------------------------------------------------------------ #
    # Deletion
    # ------------------------------------------------------------------ #
    def delete(self, point: Sequence[float], payload: Payload) -> bool:
        """Delete one entry matching ``(point, payload)``; returns True if found."""
        rect = Rect.from_point(point)
        found = self._delete_recursive(self._root, rect, payload)
        if found:
            self._size -= 1
            while not self._root.leaf and len(self._root.children) == 1:
                self._root = self._root.children[0]
                self._height -= 1
        return found

    def _delete_recursive(self, node: _Node, rect: Rect, payload: Payload) -> bool:
        if node.leaf:
            for i, entry in enumerate(node.entries):
                if entry.payload == payload and entry.rect == rect:
                    del node.entries[i]
                    node.recompute_mbr()
                    return True
            return False
        for child in node.children:
            if (
                child.mbr is not None
                and child.mbr.contains_rect(rect)
                and self._delete_recursive(child, rect, payload)
            ):
                if child.size() == 0:
                    node.children.remove(child)
                node.recompute_mbr()
                return True
        return False

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def range_query(self, rect: Rect, *, charge_io: bool = False) -> list[RTreeEntry]:
        """All data entries whose rectangle intersects ``rect``."""
        self._check_query_rect(rect)
        result: list[RTreeEntry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if charge_io:
                self._charge_read(node)
            if node.leaf:
                result.extend(e for e in node.entries if rect.intersects(e.rect))
            else:
                stack.extend(
                    c for c in node.children if c.mbr is not None and rect.intersects(c.mbr)
                )
        return result

    def boolean_range_query(self, rect: Rect, *, charge_io: bool = False) -> bool:
        """True iff at least one data entry intersects ``rect`` (stops at first hit)."""
        self._check_query_rect(rect)
        stack = [self._root]
        while stack:
            node = stack.pop()
            if charge_io:
                self._charge_read(node)
            if node.leaf:
                if any(rect.intersects(e.rect) for e in node.entries):
                    return True
            else:
                stack.extend(
                    c for c in node.children if c.mbr is not None and rect.intersects(c.mbr)
                )
        return False

    def count_in_range(self, rect: Rect) -> int:
        return len(self.range_query(rect))

    def best_first(self) -> "BestFirstTraversal":
        """Start an incremental best-first (mindist-ordered) traversal."""
        return BestFirstTraversal(self)

    # ------------------------------------------------------------------ #
    # Internals shared with the traversal
    # ------------------------------------------------------------------ #
    def _charge_read(self, node: _Node) -> None:
        if self.disk is not None:
            self.disk.read(node.page_id)

    def _check_query_rect(self, rect: Rect) -> None:
        if rect.dimensions != self.dimensions:
            raise IndexError_(
                f"query has {rect.dimensions} dimensions, the tree expects {self.dimensions}"
            )


class BestFirstTraversal:
    """Incremental best-first traversal of an R-tree ordered by L1 mindist.

    The caller repeatedly calls :meth:`pop` to obtain the pending entry with
    the smallest mindist.  Node entries (:class:`NodeRef`) may either be
    expanded with :meth:`expand` — which charges one IO and enqueues the
    node's children — or simply dropped (pruned).  Data entries are returned
    as :class:`RTreeEntry`.  This is exactly the control flow BBS-style
    algorithms need.
    """

    def __init__(self, tree: RTree) -> None:
        self._tree = tree
        self._heap: list[tuple[float, int, object]] = []
        self._counter = itertools.count()
        if len(tree) > 0:
            root = tree.root
            self._push(root.rect.mindist(), root)

    def _push(self, mindist: float, item: object) -> None:
        heapq.heappush(self._heap, (mindist, next(self._counter), item))

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def peek_mindist(self) -> float | None:
        """Mindist of the head entry, or None if the heap is exhausted."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> tuple[float, NodeRef | RTreeEntry]:
        """Remove and return the pending entry with the smallest mindist."""
        if not self._heap:
            raise IndexError_("best-first traversal is exhausted")
        mindist, _, item = heapq.heappop(self._heap)
        return mindist, item  # type: ignore[return-value]

    def expand(self, node_ref: NodeRef) -> None:
        """Visit a node: charge one IO and enqueue its children/entries."""
        node = node_ref.node
        self._tree._charge_read(node)
        if node.leaf:
            for entry in node.entries:
                self._push(entry.rect.mindist(), entry)
        else:
            for child in node.children:
                if child.mbr is not None:
                    self._push(child.mbr.mindist(), NodeRef(rect=child.mbr, node=child))

    def drain(self) -> Iterator[tuple[float, RTreeEntry]]:
        """Yield every data entry in mindist order, expanding all nodes (no pruning)."""
        while self._heap:
            mindist, item = self.pop()
            if isinstance(item, NodeRef):
                self.expand(item)
            else:
                yield mindist, item


# --------------------------------------------------------------------- #
# STR bulk-loading and quadratic-split helpers
# --------------------------------------------------------------------- #
def _str_partition(items: list, dimensions: int, capacity: int, *, key: Callable) -> list[list]:
    """Sort-Tile-Recursive grouping of ``items`` into groups of size <= capacity."""

    def recurse(chunk: list, dim: int) -> list[list]:
        if len(chunk) <= capacity:
            return [chunk]
        chunk = sorted(chunk, key=lambda item: key(item)[dim])
        if dim == dimensions - 1:
            return [chunk[i : i + capacity] for i in range(0, len(chunk), capacity)]
        pages = math.ceil(len(chunk) / capacity)
        slabs = math.ceil(pages ** (1.0 / (dimensions - dim)))
        slab_size = math.ceil(len(chunk) / slabs)
        groups: list[list] = []
        for start in range(0, len(chunk), slab_size):
            groups.extend(recurse(chunk[start : start + slab_size], dim + 1))
        return groups

    return recurse(list(items), 0)


def _quadratic_pick_seeds(items: list, rect_of: Callable) -> tuple[int, int]:
    """Pick the pair of items wasting the most area when grouped together."""
    best_pair = (0, 1)
    worst_waste = float("-inf")
    for i in range(len(items)):
        rect_i = rect_of(items[i])
        for j in range(i + 1, len(items)):
            rect_j = rect_of(items[j])
            waste = rect_i.union(rect_j).area() - rect_i.area() - rect_j.area()
            if waste > worst_waste:
                worst_waste = waste
                best_pair = (i, j)
    return best_pair


def _quadratic_pick_next(remaining: list, rect_a: Rect, rect_b: Rect, rect_of: Callable):
    """Pick the item with the strongest preference for one of the two groups."""
    best_item = remaining[0]
    best_difference = -1.0
    for item in remaining:
        rect = rect_of(item)
        difference = abs(rect_a.enlargement(rect) - rect_b.enlargement(rect))
        if difference > best_difference:
            best_difference = difference
            best_item = item
    return best_item
