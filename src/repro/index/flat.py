"""FlatRTree: a structure-of-arrays R-tree with a fully vectorized STR build.

The pointer :class:`~repro.index.rtree.RTree` allocates one ``RTreeEntry`` +
``Rect`` per point and partitions with Python-level sorts — after the
columnar data plane of the engine, the last hot path still shuttling
per-record Python objects.  The flat tree stores the *same* STR layout as
contiguous arrays instead:

* leaf entries live in one ``(n, d)`` float64 coordinate matrix (plus an
  aligned int64 payload vector), permuted into STR order with recursive
  ``np.argsort`` slab partitioning — zero per-point Python objects;
* nodes live in ``(m, d)`` float64 MBR low/high matrices plus int32
  child-range arrays (leaves reference coordinate rows, internal nodes
  reference a contiguous block of child nodes), with every level's parent
  MBRs computed by one ``np.minimum/maximum.reduceat`` reduction;
* L1 mindists to the origin are precomputed per node and per entry with the
  same left-to-right accumulation order as ``float(sum(corner))``, so the
  best-first visiting order is bitwise identical to the pointer tree's.

The slab arithmetic mirrors :func:`repro.index.rtree._str_partition` exactly
(same stable sorts, same ``ceil`` slab math), so a flat tree and a pointer
tree bulk-loaded from the same points have identical node geometry, identical
child order and therefore identical BBS traversals — the property suite in
``tests/index/test_flat_properties.py`` asserts exactly that.

:func:`run_bbs_flat` is the columnar twin of the generic BBS loop: heap items
are scalar tuples (no ``NodeRef``/``RTreeEntry`` objects), and with a
:class:`VectorDominanceWindow` the loop additionally tests *all* children of
a popped node against the dominance window in one kernel bulk call
(:meth:`~repro.kernels.base.VectorStore.mbr_block_dominated` /
:meth:`~repro.kernels.base.VectorStore.block_dominated_mask`), remembering
each child's verdict and window size.  At the child's own pop only the
*suffix* of members appended since is re-examined, so the per-item work —
and, under the reference kernel, the exact dominance-check count — matches
the pointer loop while the kernel-call count drops by the tree fanout.

The flat tree is read-only by design: inserts and deletes stay with the
pointer tree (the dynamic algorithms keep it unconditionally; see
:mod:`repro.index.registry` for backend selection).
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Iterator, Sequence

import numpy as np

from repro.exceptions import IndexError_
from repro.index.pager import DiskSimulator

#: Default maximum node fanout (mirrors the pointer tree).
DEFAULT_MAX_ENTRIES = 32

#: Heap-item kind tags of :func:`run_bbs_flat` (plain ints keep heap tuples
#: scalar-only; nodes sort before entries only via the unique tiebreaker).
_NODE, _ENTRY = 0, 1


def _row_sums(matrix: np.ndarray) -> np.ndarray:
    """Per-row L1 mindist, accumulated column-by-column.

    Left-to-right accumulation matches ``float(sum(tuple_of_floats))`` —
    the pointer tree's :meth:`Rect.mindist <repro.index.geometry.Rect.
    mindist>` — so heap priorities agree bitwise with the pointer traversal.
    """
    out = np.zeros(len(matrix), dtype=np.float64)
    for column in range(matrix.shape[1]):
        out += matrix[:, column]
    return out


def _str_index_groups(centers: np.ndarray, capacity: int) -> list[np.ndarray]:
    """Sort-Tile-Recursive grouping of row indices into groups <= capacity.

    The index-array twin of :func:`repro.index.rtree._str_partition`: same
    stable per-dimension sorts, same ``ceil`` slab arithmetic, therefore the
    same groups in the same order — recursion touches Python once per slab,
    never per point.
    """
    dimensions = centers.shape[1]

    def recurse(idx: np.ndarray, dim: int) -> list[np.ndarray]:
        if len(idx) <= capacity:
            return [idx]
        idx = idx[np.argsort(centers[idx, dim], kind="stable")]
        if dim == dimensions - 1:
            return [idx[i : i + capacity] for i in range(0, len(idx), capacity)]
        pages = math.ceil(len(idx) / capacity)
        slabs = math.ceil(pages ** (1.0 / (dimensions - dim)))
        slab_size = math.ceil(len(idx) / slabs)
        groups: list[np.ndarray] = []
        for start in range(0, len(idx), slab_size):
            groups.extend(recurse(idx[start : start + slab_size], dim + 1))
        return groups

    return recurse(np.arange(len(centers), dtype=np.intp), 0)


def _group_bounds(groups: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """``(starts, ends)`` of concatenated groups (int64 positions)."""
    sizes = np.fromiter((len(group) for group in groups), dtype=np.int64, count=len(groups))
    starts = np.zeros(len(groups), dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    return starts, starts + sizes


class FlatRTree:
    """A read-only, array-backed R-tree over point data.

    Nodes are numbered level by level — leaves first, the root last — so
    every internal node's children occupy one contiguous id range.

    Attributes
    ----------
    points / payloads:
        Leaf entries in STR order: an ``(n, d)`` float64 coordinate matrix
        and the aligned int64 payload vector.
    node_low / node_high:
        ``(m, d)`` float64 MBR corner matrices.
    child_start / child_end:
        int32 half-open ranges: rows of ``points`` for leaves
        (``node_id < num_leaves``), child node ids for internal nodes.
    entry_mindists / node_mindists:
        Precomputed L1 mindists feeding the best-first heap.
    """

    __slots__ = (
        "dimensions",
        "max_entries",
        "disk",
        "points",
        "payloads",
        "node_low",
        "node_high",
        "child_start",
        "child_end",
        "entry_mindists",
        "node_mindists",
        "num_leaves",
        "height",
        "_page_base",
    )

    def __init__(self) -> None:
        raise IndexError_("use FlatRTree.bulk_load; the flat tree is bulk-load only")

    @classmethod
    def bulk_load_pairs(
        cls,
        dimensions: int,
        pairs,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        disk: DiskSimulator | None = None,
    ) -> "FlatRTree":
        """Build from ``(coords, payload)`` pairs — ``RTree.bulk_load``'s shape.

        Keeps NumPy-free callers (the baseline transform) off the matrix
        staging: the coordinate matrix is assembled here, inside the
        NumPy-required module.
        """
        coords_list: list[tuple[float, ...]] = []
        payload_list: list[int] = []
        for coords, payload in pairs:
            coords_list.append(coords)
            payload_list.append(payload)
        matrix = np.asarray(coords_list, dtype=np.float64).reshape(
            len(coords_list), dimensions
        )
        payloads = np.fromiter(
            payload_list, dtype=np.int64, count=len(payload_list)
        )
        return cls.bulk_load(
            dimensions, matrix, payloads, max_entries=max_entries, disk=disk
        )

    @classmethod
    def bulk_load(
        cls,
        dimensions: int,
        coords,
        payloads=None,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        disk: DiskSimulator | None = None,
    ) -> "FlatRTree":
        """Build a flat R-tree over an ``(n, dimensions)`` coordinate matrix.

        ``payloads`` defaults to ``0..n-1`` (row positions — exactly the
        record/point indices every consumer in this library indexes with).
        """
        if dimensions < 1:
            raise IndexError_("an R-tree needs at least one dimension")
        if max_entries < 4:
            raise IndexError_("max_entries must be at least 4")
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != dimensions:
            raise IndexError_(
                f"expected an (n, {dimensions}) coordinate matrix, got shape "
                f"{coords.shape}"
            )
        n = len(coords)
        if payloads is None:
            payloads = np.arange(n, dtype=np.int64)
        else:
            payloads = np.asarray(payloads, dtype=np.int64)
            if payloads.shape != (n,):
                raise IndexError_(
                    f"payloads must be a vector of length {n}, got shape "
                    f"{payloads.shape}"
                )

        tree = object.__new__(cls)
        tree.dimensions = dimensions
        tree.max_entries = max_entries
        tree.disk = disk

        if n == 0:
            tree.points = coords.reshape(0, dimensions)
            tree.payloads = payloads
            tree.node_low = np.zeros((1, dimensions), dtype=np.float64)
            tree.node_high = np.zeros((1, dimensions), dtype=np.float64)
            tree.child_start = np.zeros(1, dtype=np.int32)
            tree.child_end = np.zeros(1, dtype=np.int32)
            tree.num_leaves = 1
            tree.height = 1
            tree.entry_mindists = np.zeros(0, dtype=np.float64)
            tree.node_mindists = np.zeros(1, dtype=np.float64)
            tree._page_base = disk.allocate_pages(1) if disk is not None else 0
            return tree

        # Leaf level: STR-permute the points, then one reduceat per corner.
        groups = _str_index_groups(coords, max_entries)
        perm = np.concatenate(groups) if len(groups) > 1 else groups[0]
        points = coords[perm]
        tree.points = points
        tree.payloads = payloads[perm]
        starts, ends = _group_bounds(groups)
        level_low = np.minimum.reduceat(points, starts, axis=0)
        level_high = np.maximum.reduceat(points, starts, axis=0)
        # Per level: [low, high, child_start, child_end] with child ranges
        # local to the level below (leaves: rows of ``points``).
        levels: list[list[np.ndarray]] = [[level_low, level_high, starts, ends]]

        # Upper levels: partition the level's nodes by MBR center, permute
        # the level so siblings are contiguous, reduce MBRs level-at-a-time.
        while len(level_low) > 1:
            centers = (level_low + level_high) * 0.5
            groups = _str_index_groups(centers, max_entries)
            order = np.concatenate(groups) if len(groups) > 1 else groups[0]
            previous = levels[-1]
            previous[0] = level_low = level_low[order]
            previous[1] = level_high = level_high[order]
            previous[2] = previous[2][order]
            previous[3] = previous[3][order]
            starts, ends = _group_bounds(groups)
            level_low = np.minimum.reduceat(level_low, starts, axis=0)
            level_high = np.maximum.reduceat(level_high, starts, axis=0)
            levels.append([level_low, level_high, starts, ends])

        tree.num_leaves = len(levels[0][0])
        tree.height = len(levels)
        bases = []
        total = 0
        for level in levels:
            bases.append(total)
            total += len(level[0])
        tree.node_low = np.concatenate([level[0] for level in levels])
        tree.node_high = np.concatenate([level[1] for level in levels])
        child_start = np.empty(total, dtype=np.int32)
        child_end = np.empty(total, dtype=np.int32)
        for depth, level in enumerate(levels):
            base, count = bases[depth], len(level[0])
            offset = 0 if depth == 0 else bases[depth - 1]
            child_start[base : base + count] = level[2] + offset
            child_end[base : base + count] = level[3] + offset
        tree.child_start = child_start
        tree.child_end = child_end
        tree.entry_mindists = _row_sums(points)
        tree.node_mindists = _row_sums(tree.node_low)
        if disk is not None:
            tree._page_base = disk.allocate_pages(total)
            # Bulk loading writes every node (page) of the finished tree once.
            disk.write_many(total)
        else:
            tree._page_base = 0
        return tree

    @classmethod
    def from_arrays(
        cls,
        *,
        dimensions: int,
        max_entries: int,
        points,
        payloads,
        node_low,
        node_high,
        child_start,
        child_end,
        entry_mindists,
        node_mindists,
        num_leaves: int,
        height: int,
        disk: DiskSimulator | None = None,
    ) -> "FlatRTree":
        """Reassemble a tree from previously bulk-loaded arrays.

        Used by the store loader to adopt persisted (typically ``np.memmap``)
        sections verbatim — the arrays must come from :meth:`bulk_load` output
        with matching dtypes; no STR pass or validation is repeated here.
        """
        tree = object.__new__(cls)
        tree.dimensions = dimensions
        tree.max_entries = max_entries
        tree.disk = disk
        tree.points = points
        tree.payloads = payloads
        tree.node_low = node_low
        tree.node_high = node_high
        tree.child_start = child_start
        tree.child_end = child_end
        tree.entry_mindists = entry_mindists
        tree.node_mindists = node_mindists
        tree.num_leaves = num_leaves
        tree.height = height
        tree._page_base = disk.allocate_pages(len(node_low)) if disk is not None else 0
        return tree

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.points)

    @property
    def root_id(self) -> int:
        return len(self.node_low) - 1

    def node_count(self) -> int:
        """Total number of nodes (simulated pages) in the tree."""
        return len(self.node_low)

    def is_leaf(self, node_id: int) -> bool:
        return node_id < self.num_leaves

    def charge_read(self, node_id: int) -> None:
        if self.disk is not None:
            self.disk.read(self._page_base + node_id)

    def all_entries(self):
        """Every data entry in leaf order (validation and tests).

        Materializes :class:`~repro.index.rtree.RTreeEntry` objects for API
        parity with the pointer tree — a per-entry cost acceptable only off
        the hot path; query code reads ``points``/``payloads`` directly.
        """
        from repro.index.geometry import Rect
        from repro.index.rtree import RTreeEntry

        return [
            RTreeEntry(Rect.from_point(row), int(payload))
            for row, payload in zip(self.points.tolist(), self.payloads.tolist())
        ]

    def drain(self) -> Iterator[tuple[float, tuple[float, ...], int]]:
        """Yield ``(mindist, point, payload)`` in best-first order, expanding
        every node (no pruning, no IO charges; used by structural tests)."""
        if not len(self):
            return
        heap: list[tuple[float, int, int, int]] = []
        counter = itertools.count()
        heap.append((float(self.node_mindists[self.root_id]), next(counter), _NODE, self.root_id))
        while heap:
            mindist, _, kind, index = heapq.heappop(heap)
            if kind == _ENTRY:
                yield mindist, tuple(self.points[index]), int(self.payloads[index])
                continue
            start, end = int(self.child_start[index]), int(self.child_end[index])
            if self.is_leaf(index):
                for row in range(start, end):
                    heapq.heappush(
                        heap, (float(self.entry_mindists[row]), next(counter), _ENTRY, row)
                    )
            else:
                for child in range(start, end):
                    heapq.heappush(
                        heap, (float(self.node_mindists[child]), next(counter), _NODE, child)
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlatRTree(n={len(self)}, nodes={self.node_count()}, "
            f"height={self.height}, d={self.dimensions})"
        )


class VectorDominanceWindow:
    """Bulk + suffix dominance tests over one kernel :class:`VectorStore`.

    The columnar BBS loop's view of a growing skyline window whose dominance
    relation is plain vector dominance (BBS, BBS+, SDC).  ``exclude_equal``
    configures the MBB corner test (classical BBS must not prune an MBB whose
    best corner *equals* a resident; the m-dominance baselines prune it).

    The suffix methods rely on the store being append-only for the duration
    of the traversal (true for every BBS-style loop: skyline members are
    final and never evicted mid-run).
    """

    __slots__ = ("store", "exclude_equal")

    def __init__(self, store, *, exclude_equal: bool) -> None:
        self.store = store
        self.exclude_equal = exclude_equal

    def size(self) -> int:
        return len(self.store)

    def block_rects(self, lows, highs, counter) -> list[bool]:
        """Per MBB: weakly dominated by any current member?

        Vector dominance only consults the best (low) corner; ``highs`` is
        part of the shared window protocol for relations — t-dominance —
        whose MBB verdict needs the full extent.
        """
        return self.store.mbr_block_dominated(
            lows, counter=counter, exclude_equal=self.exclude_equal
        )

    def block_points(self, rows, counter) -> list[bool]:
        """Per point row: strictly dominated by any current member?"""
        return self.store.block_dominated_mask(rows, counter=counter)

    def rect_suffix(self, low, high, start: int, counter) -> bool:
        return self.store.any_weakly_dominates(
            low, counter, exclude_equal=self.exclude_equal, start=start
        )

    def point_suffix(self, point, start: int, counter) -> bool:
        return self.store.any_dominates(point, counter, start=start)


def run_bbs_flat(
    tree: FlatRTree,
    *,
    dominated_point,
    dominated_rect,
    on_result,
    stats,
    clock=None,
    window=None,
) -> list[int]:
    """The columnar BBS loop over a :class:`FlatRTree`.

    Semantics match the pointer loop in :func:`repro.skyline.bbs.run_bbs`
    exactly: items are popped in (mindist, insertion) order and tested
    against the dominance window *at pop time*, so results, discovery order,
    node expansions and IO charges are identical to the pointer traversal of
    the same tree.

    Without a ``window`` the per-item predicates are called exactly like the
    pointer loop.  With one (:class:`VectorDominanceWindow` for vector
    dominance, :class:`~repro.core.tdominance.TDominanceWindow` for the
    paper's exact relation), every
    expansion additionally tests all children in a single kernel bulk call
    and remembers each child's verdict plus the window size it was computed
    at; the child's own pop then consults only the members appended since
    (``start=prefix``).  Verdicts compose exactly — dominance by a member is
    permanent — and so do the charges: ``prefix + suffix`` comparisons are
    the very comparisons the pointer loop performs at pop time, which keeps
    dominance-check counts identical under the early-exiting reference
    kernel and never higher under the batched one.
    """
    results: list[int] = []
    if not len(tree):
        return results
    points = tree.points
    payloads = tree.payloads
    node_low = tree.node_low
    node_high = tree.node_high
    child_start = tree.child_start
    child_end = tree.child_end
    entry_mindists = tree.entry_mindists
    node_mindists = tree.node_mindists
    counter = itertools.count()
    push = heapq.heappush
    # Heap item: (mindist, tiebreak, kind, index, prefix, prefix_dominated).
    root = tree.root_id
    heap: list[tuple[float, int, int, int, int, bool]] = [
        (float(node_mindists[root]), next(counter), _NODE, root, 0, False)
    ]
    while heap:
        _, _, kind, index, prefix, prefix_dominated = heapq.heappop(heap)
        if kind == _ENTRY:
            stats.points_examined += 1
            point = points[index]
            payload = payloads[index]
            if window is not None:
                if prefix_dominated or window.point_suffix(point, prefix, stats):
                    continue
            elif dominated_point(point, payload):
                continue
            on_result(point, payload)
            results.append(payload)
            if clock is not None:
                clock.record_result()
            continue
        if window is not None:
            if prefix_dominated or window.rect_suffix(
                node_low[index], node_high[index], prefix, stats
            ):
                continue
        elif dominated_rect(node_low[index], node_high[index]):
            continue
        stats.nodes_expanded += 1
        tree.charge_read(index)
        start, end = int(child_start[index]), int(child_end[index])
        if index < tree.num_leaves:
            if window is not None:
                verdicts = window.block_points(points[start:end], stats)
                base = window.size()
                for row in range(start, end):
                    push(
                        heap,
                        (
                            float(entry_mindists[row]),
                            next(counter),
                            _ENTRY,
                            row,
                            base,
                            verdicts[row - start],
                        ),
                    )
            else:
                for row in range(start, end):
                    push(
                        heap,
                        (float(entry_mindists[row]), next(counter), _ENTRY, row, 0, False),
                    )
        else:
            if window is not None:
                verdicts = window.block_rects(
                    node_low[start:end], node_high[start:end], stats
                )
                base = window.size()
                for child in range(start, end):
                    push(
                        heap,
                        (
                            float(node_mindists[child]),
                            next(counter),
                            _NODE,
                            child,
                            base,
                            verdicts[child - start],
                        ),
                    )
            else:
                for child in range(start, end):
                    push(
                        heap,
                        (float(node_mindists[child]), next(counter), _NODE, child, 0, False),
                    )
    return results


class GrowableRowMatrix:
    """A row-appendable 2-D float64 array with amortized-doubling storage.

    The storage substrate of the array-backed virtual-point index: rows are
    appended as skyline points arrive, queries read the compact ``view``.
    """

    __slots__ = ("_buffer", "_size")

    _INITIAL_CAPACITY = 16

    def __init__(self, columns: int) -> None:
        self._buffer = np.empty((self._INITIAL_CAPACITY, columns), dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def view(self) -> np.ndarray:
        return self._buffer[: self._size]

    def append(self, row: Sequence[float]) -> None:
        if self._size == len(self._buffer):
            grown = np.empty(
                (2 * len(self._buffer), self._buffer.shape[1]), dtype=np.float64
            )
            grown[: self._size] = self._buffer
            self._buffer = grown
        self._buffer[self._size] = row
        self._size += 1
