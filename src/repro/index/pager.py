"""Simulated disk pages, IO accounting and an LRU buffer pool.

The paper reports *total time* as CPU time plus a fixed charge per IO
(5 msec in Section VI-B).  To reproduce that cost model in a pure-Python
setting, every R-tree node is treated as one disk page; reading a node during
query processing goes through a :class:`DiskSimulator`, which counts physical
reads (optionally absorbed by an LRU :class:`BufferPool`) and can convert the
counts into simulated seconds.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.exceptions import IndexError_

#: Default IO charge used by the paper (5 milliseconds per IO).
DEFAULT_IO_COST_SECONDS = 0.005

#: Default page size used to estimate node fanout (bytes).
DEFAULT_PAGE_SIZE = 4096


@dataclass(slots=True)
class IOStats:
    """Counters accumulated by a :class:`DiskSimulator`."""

    reads: int = 0
    writes: int = 0
    buffer_hits: int = 0

    @property
    def total_ios(self) -> int:
        return self.reads + self.writes

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.buffer_hits = 0

    def merged_with(self, other: "IOStats") -> "IOStats":
        return IOStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            buffer_hits=self.buffer_hits + other.buffer_hits,
        )


class BufferPool:
    """A tiny LRU buffer pool over page identifiers.

    ``capacity=0`` disables buffering entirely (every access is a physical IO),
    matching the paper's "no buffers" experimental setting.
    """

    __slots__ = ("_capacity", "_pages")

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise IndexError_("buffer pool capacity must be non-negative")
        self._capacity = capacity
        self._pages: OrderedDict[int, None] = OrderedDict()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._pages)

    def access(self, page_id: int) -> bool:
        """Touch a page; return True on a buffer hit, False on a miss."""
        if self._capacity == 0:
            return False
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            return True
        self._pages[page_id] = None
        if len(self._pages) > self._capacity:
            self._pages.popitem(last=False)
        return False

    def clear(self) -> None:
        self._pages.clear()


@dataclass
class DiskSimulator:
    """Counts page reads/writes and converts them into simulated IO time."""

    io_cost_seconds: float = DEFAULT_IO_COST_SECONDS
    buffer_pool: BufferPool = field(default_factory=BufferPool)
    stats: IOStats = field(default_factory=IOStats)
    _next_page_id: int = 0

    def allocate_page(self) -> int:
        """Allocate a fresh page identifier (used when building index nodes)."""
        page_id = self._next_page_id
        self._next_page_id += 1
        return page_id

    def allocate_pages(self, count: int) -> int:
        """Allocate ``count`` consecutive page identifiers; returns the first.

        The bulk twin of :meth:`allocate_page`, used when a whole index is
        materialized at once (array-backed bulk loading allocates every node
        page in one O(1) reservation instead of a per-node Python loop).
        """
        if count < 0:
            raise IndexError_("cannot allocate a negative number of pages")
        first = self._next_page_id
        self._next_page_id += count
        return first

    def read(self, page_id: int) -> None:
        """Record a page read, going through the buffer pool."""
        if self.buffer_pool.access(page_id):
            self.stats.buffer_hits += 1
        else:
            self.stats.reads += 1

    def write(self, page_id: int) -> None:
        """Record a page write (bulk loading, index construction)."""
        self.stats.writes += 1

    def write_many(self, count: int) -> None:
        """Record ``count`` page writes in one O(1) charge.

        Bulk loading writes every node of the finished tree exactly once;
        charging them individually would be a per-node Python loop for a
        counter increment.  Same counters as ``count`` :meth:`write` calls.
        """
        if count < 0:
            raise IndexError_("cannot record a negative number of writes")
        self.stats.writes += count

    def io_time(self) -> float:
        """Simulated seconds spent on IO so far."""
        return self.stats.total_ios * self.io_cost_seconds

    def reset(self) -> None:
        self.stats.reset()
        self.buffer_pool.clear()


def fanout_for_page(dimensions: int, page_size: int = DEFAULT_PAGE_SIZE, *, entry_overhead: int = 8) -> int:
    """Estimate how many entries fit in one page for a given dimensionality.

    Each entry stores a low/high coordinate pair per dimension (8 bytes each)
    plus a pointer/payload; this mirrors how the paper sizes R-tree nodes.
    The result is clamped to a sensible range for an in-memory simulation.
    """
    entry_bytes = 2 * 8 * dimensions + entry_overhead
    fanout = page_size // entry_bytes
    return max(4, min(256, fanout))
