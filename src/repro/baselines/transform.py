"""The Chan et al. transformation: PO values to spanning-tree intervals only.

Every PO value is replaced by the two coordinates of its single spanning-tree
interval ``[minpost, post]`` (Section II-B/II-C).  Because non-tree edges are
ignored, the mapping is *incomplete*: dominance in the transformed space —
called m-dominance — is stronger than true dominance, so skylines computed
with it may contain false hits that must be eliminated by cross-examination.

To keep "smaller is better" on every transformed dimension (so the standard
vector dominance and the BBS mindist ordering apply directly), the ``post``
coordinate is stored as ``|domain| - post``: containment
``[minpost_i, post_i] ⊇ [minpost_j, post_j]`` is then exactly componentwise
``<=`` on ``(minpost, |domain| - post)``.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from functools import cached_property

from repro.core.mapping import group_distinct_rows
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.exceptions import SchemaError
from repro.index.pager import DiskSimulator
from repro.index.registry import resolve_index
from repro.index.rtree import RTree
from repro.order.encoding import DomainEncoding, encode_domain
from repro.skyline.dominance import dominates_vectors, weakly_dominates_vectors

Value = Hashable


@dataclass(frozen=True, slots=True)
class BaselinePoint:
    """A distinct value combination in the Chan et al. transformed space."""

    index: int
    coords: tuple[float, ...]
    to_values: tuple[float, ...]
    po_values: tuple[Value, ...]
    record_ids: tuple[int, ...]
    uncovered_level: int

    @property
    def completely_covered(self) -> bool:
        return self.uncovered_level == 0


class BaselineMapping:
    """Dataset transformed to ``TO-dims x (I1, I2) per PO attribute``."""

    def __init__(
        self,
        dataset: Dataset,
        encodings: Sequence[DomainEncoding] | None = None,
        *,
        parent_choice: str = "first",
    ) -> None:
        schema = dataset.schema
        if schema.num_partial_order == 0:
            raise SchemaError("BaselineMapping requires at least one PO attribute")
        self.dataset = dataset
        self.schema: Schema = schema
        if encodings is None:
            encodings = [
                encode_domain(attribute.dag, parent_choice=parent_choice)
                for attribute in schema.partial_order_attributes
            ]
        self.encodings: tuple[DomainEncoding, ...] = tuple(encodings)
        self.points: list[BaselinePoint] = self._build_points()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build_points(self) -> list[BaselinePoint]:
        schema = self.schema
        points: list[BaselinePoint] = []
        for values, record_ids in group_distinct_rows(self.dataset):
            to_values = schema.canonical_to_values(values)
            po_values = schema.partial_values(values)
            interval_coords: list[float] = []
            level = 0
            for encoding, value in zip(self.encodings, po_values):
                interval = encoding.tree_interval(value)
                interval_coords.append(float(interval.low))
                interval_coords.append(float(encoding.cardinality - interval.high))
                level = max(level, encoding.uncovered[value])
            points.append(
                BaselinePoint(
                    index=len(points),
                    coords=to_values + tuple(interval_coords),
                    to_values=to_values,
                    po_values=po_values,
                    record_ids=record_ids,
                    uncovered_level=level,
                )
            )
        return points

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def num_total_order(self) -> int:
        return self.schema.num_total_order

    @property
    def num_partial_order(self) -> int:
        return self.schema.num_partial_order

    @property
    def dimensions(self) -> int:
        """Dimensionality of the transformed space (|TO| + 2 |PO|)."""
        return self.num_total_order + 2 * self.num_partial_order

    def __len__(self) -> int:
        return len(self.points)

    @cached_property
    def max_uncovered_level(self) -> int:
        point_max = max((p.uncovered_level for p in self.points), default=0)
        domain_max = max(e.max_uncovered_level for e in self.encodings)
        return max(point_max, domain_max)

    def point(self, index: int) -> BaselinePoint:
        return self.points[index]

    def record_ids_for(self, point_indices: Sequence[int]) -> list[int]:
        ids: list[int] = []
        for index in point_indices:
            ids.extend(self.points[index].record_ids)
        return ids

    # ------------------------------------------------------------------ #
    # Dominance relations
    # ------------------------------------------------------------------ #
    def m_dominates(self, p: BaselinePoint, q: BaselinePoint) -> bool:
        """m-dominance: dominance in the transformed space (strong, may miss)."""
        return dominates_vectors(p.coords, q.coords)

    def weakly_m_dominates_corner(self, p: BaselinePoint, corner: Sequence[float]) -> bool:
        """Used to prune MBBs: p at least as good as the MBB's best corner."""
        return weakly_dominates_vectors(p.coords, corner)

    def actually_dominates(self, p: BaselinePoint, q: BaselinePoint) -> bool:
        """Ground-truth dominance (used for cross-examination of false hits)."""
        strictly_better = False
        for a, b in zip(p.to_values, q.to_values):
            if a > b:
                return False
            if a < b:
                strictly_better = True
        for encoding, value_p, value_q in zip(self.encodings, p.po_values, q.po_values):
            if value_p == value_q:
                continue
            if encoding.dag.is_preferred(value_p, value_q):
                strictly_better = True
            else:
                return False
        return strictly_better

    # ------------------------------------------------------------------ #
    # Index construction
    # ------------------------------------------------------------------ #
    def build_rtree(
        self,
        point_indices: Sequence[int] | None = None,
        *,
        max_entries: int = 32,
        disk: DiskSimulator | None = None,
        index=None,
    ) -> RTree:
        """Bulk-load an R-tree over (a subset of) the transformed points.

        ``index`` selects the spatial backend (``"flat"``/``"pointer"`` or
        ``None`` for the process default); the baselines only bulk-load and
        traverse, so the read-only flat tree serves them as well.
        """
        if point_indices is None:
            selected = self.points
        else:
            selected = [self.points[i] for i in point_indices]
        if resolve_index(index) == "flat":
            from repro.index.flat import FlatRTree

            return FlatRTree.bulk_load_pairs(
                self.dimensions,
                ((p.coords, p.index) for p in selected),
                max_entries=max_entries,
                disk=disk,
            )
        return RTree.bulk_load(
            self.dimensions,
            ((p.coords, p.index) for p in selected),
            max_entries=max_entries,
            disk=disk,
        )

    def strata(self) -> dict[int, list[BaselinePoint]]:
        """Points grouped by uncovered level, in increasing level order (SDC+)."""
        grouped: dict[int, list[BaselinePoint]] = {}
        for point in self.points:
            grouped.setdefault(point.uncovered_level, []).append(point)
        return dict(sorted(grouped.items()))
