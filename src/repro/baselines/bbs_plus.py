"""BBS+ : BBS over the transformed space with final false-hit elimination.

BBS+ (Chan et al., SIGMOD 2005; Section II-C of the paper) runs plain BBS in
the incomplete ``(minpost, post)`` interval space.  Because m-dominance misses
preferences that only follow non-tree edges, the set of non-m-dominated points
is a superset of the skyline.  BBS+ therefore keeps every such point in an
intermediate list and, once the traversal finishes, cross-examines the list
with *actual* dominance to delete false hits.  The algorithm is consequently
not progressive: nothing can be reported before the very end.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.transform import BaselineMapping, BaselinePoint
from repro.data.dataset import Dataset
from repro.index.pager import DiskSimulator
from repro.index.rtree import RTree
from repro.order.encoding import DomainEncoding
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.bbs import run_bbs


def bbs_plus_skyline(
    dataset: Dataset,
    *,
    encodings: Sequence[DomainEncoding] | None = None,
    mapping: BaselineMapping | None = None,
    tree: RTree | None = None,
    max_entries: int = 32,
    disk: DiskSimulator | None = None,
) -> SkylineResult:
    """Compute the skyline with BBS+ (m-dominance BBS + final cross-examination)."""
    if mapping is None:
        mapping = BaselineMapping(dataset, encodings)
    if tree is None:
        tree = mapping.build_rtree(max_entries=max_entries, disk=disk)

    stats = SkylineStats()
    clock = RunClock(stats, disk)

    candidates: list[BaselinePoint] = []

    def dominated_point(point, payload) -> bool:
        candidate = mapping.point(int(payload))
        for resident in candidates:
            stats.dominance_checks += 1
            if mapping.m_dominates(resident, candidate):
                return True
        return False

    def dominated_rect(low, high) -> bool:
        for resident in candidates:
            stats.dominance_checks += 1
            if mapping.weakly_m_dominates_corner(resident, low):
                return True
        return False

    def on_result(point, payload) -> None:
        candidates.append(mapping.point(int(payload)))

    run_bbs(
        tree,
        dominated_point=dominated_point,
        dominated_rect=dominated_rect,
        on_result=on_result,
        stats=stats,
        clock=None,  # BBS+ is not progressive: no per-result events until the end.
    )

    # Cross-examination: eliminate candidates actually dominated by another
    # candidate.  Any true dominator of a false hit is itself represented in
    # the candidate list (transitively), so this filter is complete.
    skyline_points: list[BaselinePoint] = []
    for candidate in candidates:
        dominated = False
        for other in candidates:
            if other is candidate:
                continue
            stats.dominance_checks += 1
            if mapping.actually_dominates(other, candidate):
                dominated = True
                break
        if dominated:
            stats.false_hits_removed += 1
        else:
            skyline_points.append(candidate)
            clock.record_result()

    clock.finish()
    skyline_ids = mapping.record_ids_for([p.index for p in skyline_points])
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
