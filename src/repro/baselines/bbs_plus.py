"""BBS+ : BBS over the transformed space with final false-hit elimination.

BBS+ (Chan et al., SIGMOD 2005; Section II-C of the paper) runs plain BBS in
the incomplete ``(minpost, post)`` interval space.  Because m-dominance misses
preferences that only follow non-tree edges, the set of non-m-dominated points
is a superset of the skyline.  BBS+ therefore keeps every such point in an
intermediate list and, once the traversal finishes, cross-examines the list
with *actual* dominance to delete false hits.  The algorithm is consequently
not progressive: nothing can be reported before the very end.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.transform import BaselineMapping, BaselinePoint
from repro.data.dataset import Dataset
from repro.index.pager import DiskSimulator
from repro.index.rtree import RTree
from repro.kernels import RecordTables, resolve_kernel
from repro.order.encoding import DomainEncoding
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.bbs import run_bbs, vector_window


def bbs_plus_skyline(
    dataset: Dataset,
    *,
    encodings: Sequence[DomainEncoding] | None = None,
    mapping: BaselineMapping | None = None,
    tree: RTree | None = None,
    max_entries: int = 32,
    disk: DiskSimulator | None = None,
    kernel=None,
    index=None,
) -> SkylineResult:
    """Compute the skyline with BBS+ (m-dominance BBS + final cross-examination)."""
    if mapping is None:
        mapping = BaselineMapping(dataset, encodings)
    if tree is None:
        tree = mapping.build_rtree(max_entries=max_entries, disk=disk, index=index)

    stats = SkylineStats()
    clock = RunClock(stats, disk)
    kernel = resolve_kernel(kernel)

    # m-dominance is plain vector dominance in the transformed space, so the
    # candidate list is mirrored into a kernel vector store.
    candidates: list[BaselinePoint] = []
    candidate_store = kernel.vector_store(mapping.dimensions)
    window = vector_window(tree, candidate_store, exclude_equal=False)

    def dominated_point(point, payload) -> bool:
        candidate = mapping.point(int(payload))
        return candidate_store.any_dominates(candidate.coords, counter=stats)

    def dominated_rect(low, high) -> bool:
        return candidate_store.any_weakly_dominates(low, counter=stats)

    def on_result(point, payload) -> None:
        candidate = mapping.point(int(payload))
        candidates.append(candidate)
        candidate_store.append(candidate.coords)

    run_bbs(
        tree,
        dominated_point=dominated_point,
        dominated_rect=dominated_rect,
        on_result=on_result,
        stats=stats,
        clock=None,  # BBS+ is not progressive: no per-result events until the end.
        window=window,
    )

    # Cross-examination: eliminate candidates actually dominated by another
    # candidate.  Any true dominator of a false hit is itself represented in
    # the candidate list (transitively), so this filter is complete.  Distinct
    # value combinations make strict dominance immune to self-comparison, so
    # the whole list can be cross-examined in one batched kernel call.
    tables = RecordTables.from_encodings(mapping.num_total_order, mapping.encodings)
    encoded = [
        (p.to_values, tables.encode_po(p.po_values)) for p in candidates
    ]
    dominated_mask = kernel.record_block_dominated_mask(
        tables, encoded, encoded, counter=stats
    )
    skyline_points: list[BaselinePoint] = []
    for candidate, dominated in zip(candidates, dominated_mask):
        if dominated:
            stats.false_hits_removed += 1
        else:
            skyline_points.append(candidate)
            clock.record_result()

    clock.finish()
    skyline_ids = mapping.record_ids_for([p.index for p in skyline_points])
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
