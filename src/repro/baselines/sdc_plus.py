"""SDC+ : stratification by uncovered level with per-stratum R-trees.

SDC+ (Chan et al., SIGMOD 2005; Section II-C of the paper) partitions the
data into strata by the *uncovered level* of their PO values (the maximum
number of non-tree edges on any incoming path) and builds one R-tree per
stratum.  Strata are processed in increasing level order — points of a level
can never be dominated by points of a higher level — and the algorithm
maintains:

* a **global list** of confirmed skyline points (from finished strata), and
* a **local list** per stratum that may temporarily contain false hits.

MBBs are pruned with m-dominance against both lists.  When a leaf entry is
de-heaped it is checked with *actual* dominance against the local list; if it
survives, local-list members it dominates are evicted (on-the-fly false-hit
elimination) and the point is finally checked against the global list.  When
a stratum's traversal finishes its local list contains only true skyline
points, which are reported and appended to the global list — hence SDC+ is
progressive per stratum, but not optimally progressive.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.transform import BaselineMapping, BaselinePoint
from repro.data.dataset import Dataset
from repro.index.pager import DiskSimulator
from repro.index.rtree import RTree
from repro.kernels import RecordTables, resolve_kernel
from repro.order.encoding import DomainEncoding
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.bbs import run_bbs


def sdc_plus_skyline(
    dataset: Dataset,
    *,
    encodings: Sequence[DomainEncoding] | None = None,
    mapping: BaselineMapping | None = None,
    stratum_trees: dict[int, RTree] | None = None,
    max_entries: int = 32,
    disk: DiskSimulator | None = None,
    kernel=None,
    index=None,
) -> SkylineResult:
    """Compute the skyline with SDC+ (strata by uncovered level).

    ``stratum_trees`` may supply pre-built per-stratum R-trees (keyed by
    uncovered level); otherwise they are bulk-loaded here, charged to
    ``disk`` if one is given.  The per-item dominance tests run against
    *two* windows (local and global lists), one of which is evicted
    mid-traversal, so the flat tree is traversed with the plain pop-time
    predicates (no cached block verdicts — those require append-only
    windows).
    """
    if mapping is None:
        mapping = BaselineMapping(dataset, encodings)
    strata = mapping.strata()
    if stratum_trees is None:
        stratum_trees = {
            level: mapping.build_rtree(
                [p.index for p in points], max_entries=max_entries, disk=disk, index=index
            )
            for level, points in strata.items()
        }

    stats = SkylineStats()
    clock = RunClock(stats, disk)
    kernel = resolve_kernel(kernel)
    tables = RecordTables.from_encodings(mapping.num_total_order, mapping.encodings)

    def encode(point: BaselinePoint) -> tuple[tuple[float, ...], tuple[int, ...]]:
        return point.to_values, tables.encode_po(point.po_values)

    # Actual dominance runs through kernel record stores; m-dominance MBB
    # pruning through kernel vector stores over the transformed coordinates.
    global_record_store = kernel.record_store(tables)
    global_vector_store = kernel.vector_store(mapping.dimensions)
    ordered_results: list[BaselinePoint] = []

    for level in sorted(strata):
        tree = stratum_trees[level]
        local_list: list[BaselinePoint] = []
        local_record_store = kernel.record_store(tables)
        local_vector_store = kernel.vector_store(mapping.dimensions)

        def dominated_point(
            point,
            payload,
            local_list=local_list,
            local_record_store=local_record_store,
            local_vector_store=local_vector_store,
        ) -> bool:
            candidate = mapping.point(int(payload))
            encoded = encode(candidate)
            # Actual dominance against the local list (same stratum), fused
            # with the reverse direction: evict local residents the surviving
            # candidate actually dominates (they were false hits).
            dominated, evicted = local_record_store.dominance_masks(
                *encoded, counter=stats
            )
            if dominated:
                return True
            if any(evicted):
                keep = [not flag for flag in evicted]
                local_record_store.compress(keep)
                local_vector_store.compress(keep)
                local_list[:] = [p for p, k in zip(local_list, keep) if k]
                stats.false_hits_removed += len(keep) - sum(keep)
            # Actual dominance against the global list (previous strata).
            return global_record_store.any_dominates(*encoded, counter=stats)

        def dominated_rect(
            low, high, local_vector_store=local_vector_store
        ) -> bool:
            if global_vector_store.any_weakly_dominates(low, counter=stats):
                return True
            return local_vector_store.any_weakly_dominates(low, counter=stats)

        def on_result(
            point,
            payload,
            local_list=local_list,
            local_record_store=local_record_store,
            local_vector_store=local_vector_store,
        ) -> None:
            candidate = mapping.point(int(payload))
            local_list.append(candidate)
            local_record_store.append(*encode(candidate))
            local_vector_store.append(candidate.coords)

        run_bbs(
            tree,
            dominated_point=dominated_point,
            dominated_rect=dominated_rect,
            on_result=on_result,
            stats=stats,
            clock=None,
        )

        # The stratum is finished: its local list now holds only true skyline
        # points; report them and promote them to the global list.
        for resident in local_list:
            ordered_results.append(resident)
            clock.record_result()
            global_record_store.append(*encode(resident))
            global_vector_store.append(resident.coords)

    clock.finish()
    skyline_ids = mapping.record_ids_for([p.index for p in ordered_results])
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
