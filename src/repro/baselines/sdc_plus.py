"""SDC+ : stratification by uncovered level with per-stratum R-trees.

SDC+ (Chan et al., SIGMOD 2005; Section II-C of the paper) partitions the
data into strata by the *uncovered level* of their PO values (the maximum
number of non-tree edges on any incoming path) and builds one R-tree per
stratum.  Strata are processed in increasing level order — points of a level
can never be dominated by points of a higher level — and the algorithm
maintains:

* a **global list** of confirmed skyline points (from finished strata), and
* a **local list** per stratum that may temporarily contain false hits.

MBBs are pruned with m-dominance against both lists.  When a leaf entry is
de-heaped it is checked with *actual* dominance against the local list; if it
survives, local-list members it dominates are evicted (on-the-fly false-hit
elimination) and the point is finally checked against the global list.  When
a stratum's traversal finishes its local list contains only true skyline
points, which are reported and appended to the global list — hence SDC+ is
progressive per stratum, but not optimally progressive.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.transform import BaselineMapping, BaselinePoint
from repro.data.dataset import Dataset
from repro.index.pager import DiskSimulator
from repro.index.rtree import RTree
from repro.order.encoding import DomainEncoding
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.bbs import run_bbs


def sdc_plus_skyline(
    dataset: Dataset,
    *,
    encodings: Sequence[DomainEncoding] | None = None,
    mapping: BaselineMapping | None = None,
    stratum_trees: dict[int, RTree] | None = None,
    max_entries: int = 32,
    disk: DiskSimulator | None = None,
) -> SkylineResult:
    """Compute the skyline with SDC+ (strata by uncovered level).

    ``stratum_trees`` may supply pre-built per-stratum R-trees (keyed by
    uncovered level); otherwise they are bulk-loaded here, charged to
    ``disk`` if one is given.
    """
    if mapping is None:
        mapping = BaselineMapping(dataset, encodings)
    strata = mapping.strata()
    if stratum_trees is None:
        stratum_trees = {
            level: mapping.build_rtree(
                [p.index for p in points], max_entries=max_entries, disk=disk
            )
            for level, points in strata.items()
        }

    stats = SkylineStats()
    clock = RunClock(stats, disk)

    global_list: list[BaselinePoint] = []
    ordered_results: list[BaselinePoint] = []

    for level in sorted(strata):
        tree = stratum_trees[level]
        local_list: list[BaselinePoint] = []

        def dominated_point(point, payload, local_list=local_list) -> bool:
            candidate = mapping.point(int(payload))
            # Actual dominance against the local list (same stratum).
            for resident in local_list:
                stats.dominance_checks += 1
                if mapping.actually_dominates(resident, candidate):
                    return True
            # Cross-examination: the candidate survived, so evict local
            # residents it actually dominates (they were false hits).
            evicted = 0
            for resident in list(local_list):
                stats.dominance_checks += 1
                if mapping.actually_dominates(candidate, resident):
                    local_list.remove(resident)
                    evicted += 1
            stats.false_hits_removed += evicted
            # Actual dominance against the global list (previous strata).
            for resident in global_list:
                stats.dominance_checks += 1
                if mapping.actually_dominates(resident, candidate):
                    return True
            return False

        def dominated_rect(low, high, local_list=local_list) -> bool:
            for resident in global_list:
                stats.dominance_checks += 1
                if mapping.weakly_m_dominates_corner(resident, low):
                    return True
            for resident in local_list:
                stats.dominance_checks += 1
                if mapping.weakly_m_dominates_corner(resident, low):
                    return True
            return False

        def on_result(point, payload, local_list=local_list) -> None:
            local_list.append(mapping.point(int(payload)))

        run_bbs(
            tree,
            dominated_point=dominated_point,
            dominated_rect=dominated_rect,
            on_result=on_result,
            stats=stats,
            clock=None,
        )

        # The stratum is finished: its local list now holds only true skyline
        # points; report them and promote them to the global list.
        for resident in local_list:
            ordered_results.append(resident)
            clock.record_result()
        global_list.extend(local_list)

    clock.finish()
    skyline_ids = mapping.record_ids_for([p.index for p in ordered_results])
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
