"""Baselines: the stratified m-dominance methods of Chan et al. (SIGMOD 2005).

These are the algorithms the paper compares against (Section II-C):

* :mod:`~repro.baselines.transform` — the incomplete mapping of each PO value
  to its single spanning-tree ``[minpost, post]`` interval, giving two TO
  dimensions (``I1``, ``I2``) per PO attribute, and the resulting
  *m-dominance* relation (stronger than true dominance, hence false hits).
* :mod:`~repro.baselines.bbs_plus` — BBS+ : BBS over the transformed space
  with a final cross-examination pass; not progressive.
* :mod:`~repro.baselines.sdc` — SDC : two strata (completely / partially
  covered points); completely covered results can be reported early.
* :mod:`~repro.baselines.sdc_plus` — SDC+ : one stratum (and R-tree) per
  uncovered level, processed in sequence with local/global skyline lists and
  on-the-fly false-hit elimination.  This is the strongest prior method and
  the benchmark opponent of TSS throughout Section VI.
"""

from repro.baselines.bbs_plus import bbs_plus_skyline
from repro.baselines.sdc import sdc_skyline
from repro.baselines.sdc_plus import sdc_plus_skyline
from repro.baselines.transform import BaselineMapping, BaselinePoint

__all__ = [
    "BaselineMapping",
    "BaselinePoint",
    "bbs_plus_skyline",
    "sdc_skyline",
    "sdc_plus_skyline",
]
