"""SDC: Stratification by Dominance Classification (two strata).

SDC (Chan et al., SIGMOD 2005; Section II-C of the paper) improves the
progressiveness of BBS+ by exploiting the fact that m-dominance is *exact*
for points whose PO values are all *completely covered* (every incoming path
consists of tree edges only).  During the m-dominance BBS traversal:

* a non-m-dominated, completely covered point is guaranteed to be a skyline
  point and is reported immediately;
* a non-m-dominated, partially covered point may be a false hit and is only
  resolved by cross-examination at the end.

The candidate list holds both kinds; false hits among the partially covered
candidates are eliminated with actual dominance once the traversal finishes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.transform import BaselineMapping, BaselinePoint
from repro.data.dataset import Dataset
from repro.index.pager import DiskSimulator
from repro.index.rtree import RTree
from repro.kernels import RecordTables, resolve_kernel
from repro.order.encoding import DomainEncoding
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.bbs import run_bbs, vector_window


def sdc_skyline(
    dataset: Dataset,
    *,
    encodings: Sequence[DomainEncoding] | None = None,
    mapping: BaselineMapping | None = None,
    tree: RTree | None = None,
    max_entries: int = 32,
    disk: DiskSimulator | None = None,
    kernel=None,
    index=None,
) -> SkylineResult:
    """Compute the skyline with SDC (two strata: completely / partially covered)."""
    if mapping is None:
        mapping = BaselineMapping(dataset, encodings)
    if tree is None:
        tree = mapping.build_rtree(max_entries=max_entries, disk=disk, index=index)

    stats = SkylineStats()
    clock = RunClock(stats, disk)
    kernel = resolve_kernel(kernel)

    candidates: list[BaselinePoint] = []
    candidate_store = kernel.vector_store(mapping.dimensions)
    window = vector_window(tree, candidate_store, exclude_equal=False)
    confirmed: list[BaselinePoint] = []  # completely covered, reported early
    unresolved: list[BaselinePoint] = []  # partially covered, resolved at the end

    def dominated_point(point, payload) -> bool:
        candidate = mapping.point(int(payload))
        return candidate_store.any_dominates(candidate.coords, counter=stats)

    def dominated_rect(low, high) -> bool:
        return candidate_store.any_weakly_dominates(low, counter=stats)

    def on_result(point, payload) -> None:
        candidate = mapping.point(int(payload))
        candidates.append(candidate)
        candidate_store.append(candidate.coords)
        if candidate.completely_covered:
            confirmed.append(candidate)
            clock.record_result()
        else:
            unresolved.append(candidate)

    run_bbs(
        tree,
        dominated_point=dominated_point,
        dominated_rect=dominated_rect,
        on_result=on_result,
        stats=stats,
        clock=None,
        window=window,
    )

    # Resolve the partially covered stratum with actual dominance checks, in
    # one batched kernel call (strictness makes self-comparison harmless for
    # distinct value combinations).
    tables = RecordTables.from_encodings(mapping.num_total_order, mapping.encodings)
    dominators = [(p.to_values, tables.encode_po(p.po_values)) for p in candidates]
    targets = [(p.to_values, tables.encode_po(p.po_values)) for p in unresolved]
    dominated_mask = kernel.record_block_dominated_mask(
        tables, dominators, targets, counter=stats
    )
    survivors: list[BaselinePoint] = []
    for candidate, dominated in zip(unresolved, dominated_mask):
        if dominated:
            stats.false_hits_removed += 1
        else:
            survivors.append(candidate)
            clock.record_result()

    clock.finish()
    ordered = confirmed + survivors
    skyline_ids = mapping.record_ids_for([p.index for p in ordered])
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
