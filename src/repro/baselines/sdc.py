"""SDC: Stratification by Dominance Classification (two strata).

SDC (Chan et al., SIGMOD 2005; Section II-C of the paper) improves the
progressiveness of BBS+ by exploiting the fact that m-dominance is *exact*
for points whose PO values are all *completely covered* (every incoming path
consists of tree edges only).  During the m-dominance BBS traversal:

* a non-m-dominated, completely covered point is guaranteed to be a skyline
  point and is reported immediately;
* a non-m-dominated, partially covered point may be a false hit and is only
  resolved by cross-examination at the end.

The candidate list holds both kinds; false hits among the partially covered
candidates are eliminated with actual dominance once the traversal finishes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.transform import BaselineMapping, BaselinePoint
from repro.data.dataset import Dataset
from repro.index.pager import DiskSimulator
from repro.index.rtree import RTree
from repro.order.encoding import DomainEncoding
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.bbs import run_bbs


def sdc_skyline(
    dataset: Dataset,
    *,
    encodings: Sequence[DomainEncoding] | None = None,
    mapping: BaselineMapping | None = None,
    tree: RTree | None = None,
    max_entries: int = 32,
    disk: DiskSimulator | None = None,
) -> SkylineResult:
    """Compute the skyline with SDC (two strata: completely / partially covered)."""
    if mapping is None:
        mapping = BaselineMapping(dataset, encodings)
    if tree is None:
        tree = mapping.build_rtree(max_entries=max_entries, disk=disk)

    stats = SkylineStats()
    clock = RunClock(stats, disk)

    candidates: list[BaselinePoint] = []
    confirmed: list[BaselinePoint] = []  # completely covered, reported early
    unresolved: list[BaselinePoint] = []  # partially covered, resolved at the end

    def dominated_point(point, payload) -> bool:
        candidate = mapping.point(int(payload))
        for resident in candidates:
            stats.dominance_checks += 1
            if mapping.m_dominates(resident, candidate):
                return True
        return False

    def dominated_rect(low, high) -> bool:
        for resident in candidates:
            stats.dominance_checks += 1
            if mapping.weakly_m_dominates_corner(resident, low):
                return True
        return False

    def on_result(point, payload) -> None:
        candidate = mapping.point(int(payload))
        candidates.append(candidate)
        if candidate.completely_covered:
            confirmed.append(candidate)
            clock.record_result()
        else:
            unresolved.append(candidate)

    run_bbs(
        tree,
        dominated_point=dominated_point,
        dominated_rect=dominated_rect,
        on_result=on_result,
        stats=stats,
        clock=None,
    )

    # Resolve the partially covered stratum with actual dominance checks.
    survivors: list[BaselinePoint] = []
    for candidate in unresolved:
        dominated = False
        for other in candidates:
            if other is candidate:
                continue
            stats.dominance_checks += 1
            if mapping.actually_dominates(other, candidate):
                dominated = True
                break
        if dominated:
            stats.false_hits_removed += 1
        else:
            survivors.append(candidate)
            clock.record_result()

    clock.finish()
    ordered = confirmed + survivors
    skyline_ids = mapping.record_ids_for([p.index for p in ordered])
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
