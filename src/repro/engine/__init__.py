"""Query engines layered on top of the skyline algorithms."""

from repro.engine.batch import BatchQuery, BatchQueryEngine, BatchQueryResult

__all__ = ["BatchQuery", "BatchQueryEngine", "BatchQueryResult"]
