"""Semantic DAG signatures and the shared per-DAG encoding cache.

Queries are keyed by the *semantic* topology of their preference DAGs —
values plus transitive-closure edges — so two specifications that imply the
same preference relation (a Hasse diagram vs its transitive closure) share
one cache entry.  :class:`EncodingCache` maps those signatures to
:class:`~repro.order.encoding.DomainEncoding` objects under an LRU bound;
the batch engine and every sharded-executor worker each hold one.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

from repro.engine.lru import LRUDict
from repro.exceptions import QueryError
from repro.order.dag import PartialOrderDAG
from repro.order.encoding import DomainEncoding, encode_domain

Value = Hashable


def validate_override_domains(
    attributes: Sequence, overrides: Mapping[str, PartialOrderDAG]
) -> None:
    """Reject overrides of unknown attributes or with shrunk value domains.

    The shared query-validation invariant of the batch engine and the
    sharded executor: dynamic preferences re-rank a domain, they never
    change it.  Checking domain coverage up front is the cheap equivalent
    of full row re-validation, so both paths can swap schemas with
    ``validate=False``.
    """
    known = {attribute.name: attribute for attribute in attributes}
    unknown = set(overrides) - set(known)
    if unknown:
        raise QueryError(f"query overrides non-PO attributes: {sorted(unknown)}")
    for name, dag in overrides.items():
        missing = set(known[name].domain) - set(dag.values)
        if missing:
            raise QueryError(
                f"override for {name!r} is missing domain values: "
                f"{sorted(missing, key=repr)}"
            )

#: Semantic signature of one preference DAG (values + closure edges).
DagKey = tuple[tuple[Value, ...], tuple[tuple[Value, Value], ...]]


def dag_signature(dag: PartialOrderDAG) -> DagKey:
    """Semantic identity of a preference DAG: values + transitive closure."""
    return (
        dag.values,
        tuple(sorted(dag.transitive_closure_edges(), key=repr)),
    )


class EncodingCache:
    """An LRU-bounded map from DAG signatures to interval encodings."""

    __slots__ = ("_entries",)

    def __init__(self, capacity: int) -> None:
        self._entries: LRUDict[DagKey, DomainEncoding] = LRUDict(capacity)

    def encodings_for(
        self,
        attributes: Sequence,
        overrides: Mapping[str, PartialOrderDAG],
        *,
        keys: Sequence[DagKey] | None = None,
    ) -> list[DomainEncoding]:
        """One encoding per PO attribute, honoring per-attribute overrides.

        ``keys`` may supply precomputed signatures (one per attribute, in
        order) to avoid recomputing them.
        """
        encodings: list[DomainEncoding] = []
        for index, attribute in enumerate(attributes):
            dag = overrides.get(attribute.name, attribute.dag)
            key = keys[index] if keys is not None else dag_signature(dag)
            encoding = self._entries.get(key)
            if encoding is None:
                encoding = encode_domain(dag)
                self._entries[key] = encoding
            encodings.append(encoding)
        return encodings

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def evictions(self) -> int:
        return self._entries.evictions
