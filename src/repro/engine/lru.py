"""A small bounded mapping with least-recently-used eviction.

Long-running services keep a :class:`~repro.engine.batch.BatchQueryEngine`
alive across millions of queries; its per-topology result and encoding caches
must therefore be bounded.  :class:`LRUDict` is the shared primitive: a
dict-shaped container that evicts the least recently *used* entry (reads
refresh recency) once a fixed capacity is exceeded, counting evictions so
cache pressure is observable in service statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Iterator
from typing import Generic, TypeVar

from repro.exceptions import QueryError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUDict(Generic[K, V]):
    """A bounded mapping evicting the least recently used entry."""

    __slots__ = ("capacity", "evictions", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise QueryError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.evictions = 0
        self._entries: OrderedDict[K, V] = OrderedDict()

    def get(self, key: K, default: V | None = None) -> V | None:
        """Look a key up, refreshing its recency on a hit."""
        try:
            value = self._entries[key]
        except KeyError:
            return default
        self._entries.move_to_end(key)
        return value

    def __setitem__(self, key: K, value: V) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()
