"""A small bounded mapping with least-recently-used eviction.

Long-running services keep a :class:`~repro.engine.batch.BatchQueryEngine`
alive across millions of queries; its per-topology result and encoding caches
must therefore be bounded.  :class:`LRUDict` is the shared primitive: a
dict-shaped container that evicts the least recently *used* entry (reads
refresh recency) once a fixed capacity is exceeded, counting evictions so
cache pressure is observable in service statistics.

The container is thread-safe: the concurrent query service reads and writes
these caches from several executor threads at once, and an unguarded
``move_to_end`` racing a ``popitem`` would corrupt the underlying
``OrderedDict``.  Lookups use a private sentinel internally, so a *stored*
``None`` (or any falsy value, e.g. a cached empty skyline) is distinguishable
from a miss — callers that store such values pass their own sentinel as
``default``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable, Iterator
from typing import Any, Generic, TypeVar, cast, overload

from repro.exceptions import QueryError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")
D = TypeVar("D")

#: Private miss marker: distinct from every storable value, including ``None``.
_MISSING: Any = object()


class LRUDict(Generic[K, V]):
    """A bounded, thread-safe mapping evicting the least recently used entry."""

    __slots__ = ("capacity", "evictions", "_entries", "_lock")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise QueryError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.evictions = 0
        self._entries: OrderedDict[K, V] = OrderedDict()
        self._lock = threading.RLock()

    @overload
    def get(self, key: K) -> V | None: ...

    @overload
    def get(self, key: K, default: D) -> V | D: ...

    def get(self, key: K, default: D | None = None) -> V | D | None:
        """Look a key up, refreshing its recency on a hit.

        A stored value is returned even when it equals ``default`` — only a
        genuinely absent key yields ``default``.  Callers that store ``None``
        must pass a sentinel of their own to tell the two apart.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                return default
            self._entries.move_to_end(key)
            return cast(V, value)

    def __getitem__(self, key: K) -> V:
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                raise KeyError(key)
            self._entries.move_to_end(key)
            return value

    def __setitem__(self, key: K, value: V) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    @overload
    def pop(self, key: K) -> V: ...

    @overload
    def pop(self, key: K, default: D) -> V | D: ...

    def pop(self, key: K, default: D = _MISSING) -> V | D:
        """Remove and return a stored value; ``KeyError`` without a default."""
        with self._lock:
            value = self._entries.pop(key, _MISSING)
            if value is _MISSING:
                if default is _MISSING:
                    raise KeyError(key)
                return default
            return cast(V, value)

    def setdefault(self, key: K, value: V) -> V:
        """Insert ``value`` unless the key is present; return the stored value.

        The whole get-or-insert runs under one lock acquisition, so two
        threads racing to create the same entry (e.g. a per-topology query
        lock) always agree on a single winner.
        """
        with self._lock:
            stored = self._entries.get(key, _MISSING)
            if stored is not _MISSING:
                self._entries.move_to_end(key)
                return cast(V, stored)
            self[key] = value
            return value

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[K]:
        with self._lock:
            return iter(list(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
