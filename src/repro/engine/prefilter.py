"""The shared per-PO-group TO-Pareto prefilter.

Records with identical PO value combinations tie on every PO attribute under
*every* preference DAG, so dominance between them is decided by the TO
attributes alone; within each PO group only the TO-Pareto front can ever
appear in any query's skyline.  The reduction is query-independent, which is
why both the :class:`~repro.engine.batch.BatchQueryEngine` (at construction)
and the store writer (at pack time, so loaders can skip the pass entirely)
run the very same code — extracted here so the two can never drift.

Both paths return identical survivor lists: the record walk is the reference
the columnar one must match (pinned by the engine's property tests), and the
dominance kernels agree bitwise on ``pareto_mask``.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.data.columns import EncodedFrame, group_rows

Value = Hashable


def prefilter_survivors(schema, dataset, frame, kernel) -> list[int]:
    """Ascending row ids of each PO-combination group's TO-Pareto front.

    ``frame`` (an :class:`~repro.data.columns.EncodedFrame`) selects the
    columnar path; ``dataset`` the record path.  With no TO attributes (or no
    rows) every record survives.
    """
    if frame is not None:
        if not schema.num_total_order or not len(frame):
            return list(range(len(frame)))
        return _frame_survivors(frame, kernel)
    if not schema.num_total_order or not len(dataset):
        # Explicit record fallback: no frame was handed in.
        return [record.id for record in dataset.records]  # reprolint: disable=no-record-hot-path -- record-path fallback
    groups: dict[tuple[Value, ...], list[int]] = {}
    for record in dataset.records:  # reprolint: disable=no-record-hot-path -- record-path fallback
        groups.setdefault(schema.partial_values(record.values), []).append(record.id)
    survivors: list[int] = []
    for member_ids in groups.values():
        if len(member_ids) == 1:
            survivors.append(member_ids[0])
            continue
        rows = [
            schema.canonical_to_values(dataset[record_id].values)
            for record_id in member_ids
        ]
        mask = kernel.pareto_mask(rows)
        survivors.extend(
            record_id for record_id, keep in zip(member_ids, mask) if keep
        )
    survivors.sort()
    return survivors


def _frame_survivors(frame: EncodedFrame, kernel) -> list[int]:
    """Columnar prefilter: group rows by PO-code combination, then one
    :meth:`pareto_mask <repro.kernels.base.DominanceKernel.pareto_mask>` per
    group over frame slices (no per-record encoding)."""
    survivors: list[int] = []
    if frame.uses_numpy:
        _, code_groups = group_rows(frame.codes)
        for member_rows in code_groups:
            if len(member_rows) == 1:
                survivors.append(int(member_rows[0]))
                continue
            mask = kernel.pareto_mask(frame.to[member_rows])
            survivors.extend(int(row) for row, keep in zip(member_rows, mask) if keep)
    else:
        groups: dict[tuple, list[int]] = {}
        for row, code_row in enumerate(frame.codes):
            groups.setdefault(tuple(code_row), []).append(row)
        for member_rows in groups.values():
            if len(member_rows) == 1:
                survivors.append(member_rows[0])
                continue
            mask = kernel.pareto_mask([frame.to[row] for row in member_rows])
            survivors.extend(row for row, keep in zip(member_rows, mask) if keep)
    survivors.sort()
    return survivors
