"""Batch evaluation of many skyline queries over one dataset.

A *batch query* re-specifies the preference DAG of some (or all) PO
attributes while the data stays fixed — the dynamic-preference scenario of
Section V of the paper, but answered for a whole set of queries at once.
:class:`BatchQueryEngine` amortizes two kinds of work across the batch:

* **Shared dominance work.**  Records with identical PO value combinations
  tie on every PO attribute under *every* possible preference DAG, so
  dominance between them is decided by the TO attributes alone.  The engine
  therefore partitions the data by PO combination once and keeps only each
  group's TO-Pareto front (one vectorized :meth:`pareto_mask
  <repro.kernels.base.DominanceKernel.pareto_mask>` call per group).  The
  dropped records are dominated under every query and can never appear in
  any skyline; every query then runs against the reduced dataset.
* **Per-topology result caching.**  Queries are keyed by the *semantic*
  topology of their preference DAGs (values plus transitive-closure edges,
  per PO attribute).  Two queries that induce the same preference relation —
  even through differently drawn Hasse diagrams — share one skyline
  computation, and the per-DAG interval encodings are cached the same way.

Per query, the engine runs sTSS (or SFS for TO-only schemas) on the reduced
dataset through the configured dominance kernel and maps the resulting ids
back to the original dataset.  Both caches are bounded LRU maps
(``cache_size``) so a long-running service cannot grow memory without limit,
and with ``workers``/``num_shards`` the per-query work is delegated to a
:class:`~repro.parallel.executor.ShardedExecutor` over the reduced dataset.

The engine is a concurrency-safe façade: :meth:`BatchQueryEngine.run_query`
may be called from many threads at once.  Queries synchronize on a
per-``dag_signature`` lock — concurrent queries over *distinct* topologies
interleave freely (their shard-local phases overlap), while concurrent
queries over the *same* topology elect one computing thread and serve the
rest from the shared result cache.  Counters and :meth:`summary` snapshots
are kept consistent under a dedicated state lock.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.parallel.executor import ShardedQueryResult
    from repro.store.reader import DatasetStore

from repro.core.mapping import TSSMapping
from repro.core.stss import stss_skyline
from repro.data.columns import EncodedFrame, resolve_frame_mode
from repro.data.dataset import Dataset
from repro.engine.prefilter import prefilter_survivors
from repro.engine.encodings import (
    DagKey,
    EncodingCache,
    dag_signature,
    validate_override_domains,
)
from repro.engine.lru import LRUDict
from repro.exceptions import QueryError
from repro.kernels import resolve_kernel
from repro.order.dag import PartialOrderDAG
from repro.order.encoding import DomainEncoding
from repro.skyline.base import SkylineStats
from repro.skyline.sfs import sfs_skyline

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "BatchQuery",
    "BatchQueryEngine",
    "BatchQueryResult",
    "DagKey",
    "TopologyKey",
    "dag_signature",
    "queries_from_seeds",
    "random_query_preferences",
]

#: Signature of a whole query: one DagKey per PO attribute, in schema order.
TopologyKey = tuple[DagKey, ...]


@dataclass(frozen=True)
class BatchQuery:
    """One skyline query of a batch: a name plus per-attribute DAG overrides.

    An empty ``dag_overrides`` mapping asks for the skyline under the
    dataset's own (base) preferences.
    """

    name: str
    dag_overrides: Mapping[str, PartialOrderDAG] = field(default_factory=dict)


@dataclass
class BatchQueryResult:
    """Outcome of one query of a batch.

    ``sharded`` carries the per-phase accounting (and local-phase wall-clock
    window) of the underlying sharded run, when the engine has an executor
    and the result was computed rather than served from the cache.
    """

    name: str
    skyline_ids: list[int]
    topology_key: TopologyKey
    from_cache: bool
    seconds: float
    stats: SkylineStats | None = None
    sharded: "ShardedQueryResult | None" = None

    @property
    def skyline_set(self) -> frozenset[int]:
        return frozenset(self.skyline_ids)


#: Default bound of the per-topology result / encoding LRU caches.
DEFAULT_CACHE_SIZE = 256

#: Result-cache miss marker — distinct from any cached value, so a cached
#: empty skyline (or ``None``) is never mistaken for a miss.
_CACHE_MISS = object()


class BatchQueryEngine:
    """Evaluate many skyline queries over one dataset with shared work.

    ``cache_size`` bounds both LRU caches (results and per-DAG encodings).
    ``workers``/``num_shards``/``partitioner`` optionally route each evaluated
    query through a sharded executor built over the reduced dataset
    (``workers=0`` with ``num_shards>1`` shards in-process; ``workers>=1``
    uses a persistent worker pool — close the engine, e.g. as a context
    manager, to release it).
    """

    def __init__(
        self,
        dataset: "Dataset | DatasetStore | str | os.PathLike",
        *,
        kernel=None,
        max_entries: int = 32,
        prefilter: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
        workers: int | str | None = None,
        num_shards: int | None = None,
        partitioner="round-robin",
        merge_strategy: str | None = None,
        use_frame: bool | None = None,
        index=None,
        mmap: bool | None = None,
    ) -> None:
        # A path or an open DatasetStore selects the persisted plane: the
        # encoded frame, the prefilter survivors and (for base-preference
        # queries) the mapping/tree come straight out of the packed file —
        # nothing is re-encoded, re-filtered or re-bulk-loaded.
        from repro.store.reader import DatasetStore

        store: DatasetStore | None = None
        if isinstance(dataset, (str, os.PathLike)):
            store = DatasetStore.open(dataset, mmap=mmap)
        elif isinstance(dataset, DatasetStore):
            store = dataset
        self._store = store
        if store is not None:
            dataset = None
            self.schema = store.schema
            self._num_rows = store.num_rows
        else:
            self.schema = dataset.schema
            self._num_rows = len(dataset)
        self._dataset = dataset
        self.kernel = resolve_kernel(kernel)
        # Spatial index backend for the per-query data R-trees (resolved once
        # so typos fail fast and sharded workers receive the same choice).
        from repro.index.registry import resolve_index

        self.index = resolve_index(index)
        self.max_entries = max_entries
        self.cache_size = cache_size
        self._result_cache: LRUDict[TopologyKey, list[int]] = LRUDict(cache_size)
        self._encoding_cache = EncodingCache(cache_size)
        self.queries_evaluated = 0
        self.cache_hits = 0
        # Owns the counters and snapshot reads; never held while computing.
        self._state_lock = threading.Lock()
        # One lock per topology signature, so only same-topology queries
        # serialize.  Evicting a lock someone still holds is harmless: a
        # latecomer creates a fresh lock and at worst duplicates work the
        # result cache then deduplicates.
        self._query_locks: LRUDict[TopologyKey, threading.Lock] = LRUDict(
            max(cache_size, 64)
        )
        # Cumulative wall clock per pipeline phase (encode the frame, build
        # per-query mappings + the shared prefilter, bulk-load the per-query
        # data R-trees, run the skyline scans, merge across shards); read via
        # :meth:`summary`.  Sharded runs fold tree construction into their
        # workers' local phase, so ``index_build`` tracks the in-process path.
        self._phase_seconds = {
            "encode": 0.0,
            "build": 0.0,
            "index_build": 0.0,
            "query": 0.0,
            "merge": 0.0,
        }
        # The columnar data plane: the dataset encoded once, sliced once more
        # for the prefilter survivors; ``None`` keeps the record path.  With
        # a store the frame is the packed one (mapped or loaded, never
        # re-encoded); disabling the frame on a store instead materializes
        # records from the same file (the pure-Python fallback).
        self._use_frame = resolve_frame_mode(use_frame)
        started = time.perf_counter()
        if store is not None:
            if self._use_frame:
                self._frame = store.frame()
            else:
                self._frame = None
                self._dataset = dataset = store.dataset()
        else:
            self._frame = (
                EncodedFrame.from_dataset(dataset) if self._use_frame else None
            )
        self._phase_seconds["encode"] += time.perf_counter() - started
        # Mirrors the kernel registry: an explicit ``workers`` wins, ``None``
        # consults REPRO_WORKERS, and 0 means single-process evaluation.
        # The merge strategy resolves the same way (REPRO_MERGE) and is
        # validated even when no executor is built, so typos fail fast.
        from repro.parallel.executor import resolve_merge_strategy, resolve_workers

        resolved_workers = resolve_workers(workers)
        merge_strategy = resolve_merge_strategy(merge_strategy)
        sharded = resolved_workers >= 1 or (num_shards is not None and num_shards > 1)
        started = time.perf_counter()
        if store is not None and self._frame is not None:
            # The packed prefilter pass (validated at pack time against both
            # backends); skipping it costs nothing since the survivor list
            # is one mmap'd section.
            self._candidate_ids = (
                store.survivors() if prefilter else list(range(self._num_rows))
            )
        else:
            self._candidate_ids = (
                self._prefilter_survivors()
                if prefilter
                else list(range(self._num_rows))
            )
        # Base-preference queries may adopt the store's packed mapping/tree;
        # their point record ids index the *packed* survivor order, which is
        # this engine's reduced order only when the prefilter is on.
        self._store_base_usable = (
            store is not None
            and self._frame is not None
            and prefilter
            and store.has_base_mapping
        )
        self._base_artifacts = None
        # The reduced record view backs the record fallback and the sharded
        # partitioners; the pure frame path reads only the reduced frame, so
        # the per-record subset is skipped entirely there (store-backed
        # engines never materialize it — sharding partitions the frame).
        if store is not None and self._frame is not None:
            self._reduced = None
        elif len(self._candidate_ids) == self._num_rows:
            self._reduced = dataset
        elif self._frame is not None and not sharded:
            self._reduced = None
        else:
            self._reduced = dataset.subset(self._candidate_ids)
        self._phase_seconds["build"] += time.perf_counter() - started
        started = time.perf_counter()
        self._reduced_frame = (
            self._frame
            if self._frame is not None
            and len(self._candidate_ids) == self._num_rows
            else (
                self._frame.take(self._candidate_ids)
                if self._frame is not None
                else None
            )
        )
        self._phase_seconds["encode"] += time.perf_counter() - started
        self._executor = None
        if sharded:
            from repro.parallel.executor import ShardedExecutor

            started = time.perf_counter()
            ship_store = store if self._reduced is None and store is not None else None
            self._executor = ShardedExecutor(
                self._reduced,
                workers=resolved_workers,
                num_shards=num_shards,
                partitioner=partitioner,
                kernel=self.kernel,
                max_entries=max_entries,
                merge_strategy=merge_strategy,
                encoding_cache_size=cache_size,
                frame=self._reduced_frame,
                use_frame=self._use_frame,
                index=self.index,
                store=ship_store,
                store_rows=self._candidate_ids if ship_store is not None else None,
            )
            self._phase_seconds["build"] += time.perf_counter() - started

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def executor(self):
        """The sharded executor evaluating this engine's queries, if any."""
        return self._executor

    @property
    def dataset(self) -> Dataset:
        """The engine's record view (store-backed engines materialize lazily)."""
        if self._dataset is None and self._store is not None:
            self._dataset = self._store.dataset()
        return self._dataset

    @property
    def store(self):
        """The backing :class:`~repro.store.reader.DatasetStore`, if any."""
        return self._store

    def close(self) -> None:
        """Release the sharded executor's worker pool, if one is running."""
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "BatchQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Shared dominance work
    # ------------------------------------------------------------------ #
    def _prefilter_survivors(self) -> list[int]:
        """Keep only each PO-combination group's TO-Pareto front.

        Query-independent: within a group the PO attributes tie under every
        preference DAG, so a record strictly TO-dominated by a group sibling
        is dominated under every query.  Delegates to
        :func:`repro.engine.prefilter.prefilter_survivors` — the very same
        code the store writer runs at pack time, so packed survivor lists
        can never drift from a fresh engine's.
        """
        return prefilter_survivors(
            self.schema, self._dataset, self._frame, self.kernel
        )

    @property
    def candidate_count(self) -> int:
        """Records that can appear in some query's skyline (after prefilter)."""
        return len(self._candidate_ids)

    def _stored_base_artifacts(self, query: BatchQuery, key: TopologyKey):
        """The store's packed base mapping (+ tree, when compatible), cached.

        The packed flat tree is adopted only when this engine actually
        queries through the flat backend with the packed fanout; otherwise
        the tree is rebuilt over the packed mapping's points (still no
        re-mapping).  Guarded by :attr:`_store_base_usable` — the packed
        record ids index the packed survivor order.
        """
        with self._state_lock:
            cached = self._base_artifacts
        if cached is not None:
            return cached
        store = self._store
        mapping = store.base_mapping(encodings=self._encodings_for(query, key))
        if (
            self.index == "flat"
            and store.has_base_index
            and self.max_entries == store.base_max_entries
        ):
            tree = store.base_tree()
        else:
            tree = mapping.build_rtree(
                max_entries=self.max_entries, index=self.index
            )
        with self._state_lock:
            if self._base_artifacts is None:
                self._base_artifacts = (mapping, tree)
            return self._base_artifacts

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #
    def topology_key(self, query: BatchQuery) -> TopologyKey:
        po_names = {a.name for a in self.schema.partial_order_attributes}
        unknown = set(query.dag_overrides) - po_names
        if unknown:
            raise QueryError(
                f"query {query.name!r} overrides non-PO attributes: {sorted(unknown)}"
            )
        keys: list[DagKey] = []
        for attribute in self.schema.partial_order_attributes:
            dag = query.dag_overrides.get(attribute.name, attribute.dag)
            keys.append(dag_signature(dag))
        return tuple(keys)

    def _encodings_for(
        self, query: BatchQuery, key: TopologyKey
    ) -> list[DomainEncoding]:
        return self._encoding_cache.encodings_for(
            self.schema.partial_order_attributes, query.dag_overrides, keys=key
        )

    def _cached_result(
        self, query: BatchQuery, key: TopologyKey, started: float
    ) -> BatchQueryResult | None:
        """A cache-hit result (counting the hit), or ``None`` on a miss."""
        cached = self._result_cache.get(key, _CACHE_MISS)
        if cached is _CACHE_MISS:
            return None
        with self._state_lock:
            self.cache_hits += 1
        return BatchQueryResult(
            name=query.name,
            skyline_ids=list(cached),
            topology_key=key,
            from_cache=True,
            seconds=time.perf_counter() - started,
        )

    def run_query(self, query: BatchQuery) -> BatchQueryResult:
        """Answer one query (possibly from the per-topology cache).

        Thread-safe: concurrent callers over distinct topologies proceed in
        parallel; concurrent callers over the same topology serialize on a
        per-``dag_signature`` lock, where all but the first are then served
        by the result cache the winner filled.
        """
        started = time.perf_counter()
        key = self.topology_key(query)
        hit = self._cached_result(query, key, started)
        if hit is not None:
            return hit

        query_lock = self._query_locks.setdefault(key, threading.Lock())
        with query_lock:
            # Re-check under the topology lock: while we waited, another
            # thread may have computed and cached this very topology.
            hit = self._cached_result(query, key, started)
            if hit is not None:
                return hit
            stats = None
            sharded = None
            build_seconds = index_build_seconds = query_seconds = merge_seconds = 0.0
            if self._executor is not None:
                sharded = self._executor.query(query.dag_overrides, name=query.name)
                reduced_ids = sharded.skyline_ids
                query_seconds = sharded.seconds_local
                merge_seconds = sharded.seconds_merge
            else:
                if query.dag_overrides:
                    # Domain coverage is checked up front (the shared cheap
                    # equivalent of full row validation, same as the sharded
                    # path) so the dataset swap can skip re-walking every
                    # row on each topology miss.
                    validate_override_domains(
                        self.schema.partial_order_attributes, query.dag_overrides
                    )
                if self.schema.num_partial_order:
                    phase_started = time.perf_counter()
                    tree = None
                    if not query.dag_overrides and self._store_base_usable:
                        # Base-preference query over a store: adopt the packed
                        # mapping (and tree, when compatible) instead of
                        # re-mapping / re-bulk-loading.
                        mapping, tree = self._stored_base_artifacts(query, key)
                    elif self._reduced_frame is not None:
                        # Columnar path: map the shared frame directly under
                        # the effective schema — no per-record re-walk.
                        schema = (
                            self.schema.replace_partial_order(dict(query.dag_overrides))
                            if query.dag_overrides
                            else self.schema
                        )
                        mapping = TSSMapping(
                            None,
                            self._encodings_for(query, key),
                            schema=schema,
                            frame=self._reduced_frame,
                        )
                    else:
                        if query.dag_overrides:
                            schema = self.schema.replace_partial_order(
                                dict(query.dag_overrides)
                            )
                            data = self._reduced.with_schema(schema, validate=False)
                        else:
                            data = self._reduced
                        mapping = TSSMapping(
                            data, self._encodings_for(query, key), use_frame=False
                        )
                    index_started = time.perf_counter()
                    build_seconds = index_started - phase_started
                    if tree is None:
                        tree = mapping.build_rtree(
                            max_entries=self.max_entries, index=self.index
                        )
                    query_started = time.perf_counter()
                    index_build_seconds = query_started - index_started
                    result = stss_skyline(
                        mapping=mapping, tree=tree, kernel=self.kernel, index=self.index
                    )
                    query_seconds = time.perf_counter() - query_started
                else:
                    query_started = time.perf_counter()
                    if self._reduced_frame is not None:
                        result = sfs_skyline(
                            None, frame=self._reduced_frame, kernel=self.kernel
                        )
                    else:
                        result = sfs_skyline(
                            self._reduced, kernel=self.kernel, use_frame=False
                        )
                    query_seconds = time.perf_counter() - query_started
                reduced_ids = result.skyline_ids
                stats = result.stats
            skyline_ids = sorted(
                self._candidate_ids[reduced_id] for reduced_id in reduced_ids
            )
            with self._state_lock:
                self.queries_evaluated += 1
                self._phase_seconds["build"] += build_seconds
                self._phase_seconds["index_build"] += index_build_seconds
                self._phase_seconds["query"] += query_seconds
                self._phase_seconds["merge"] += merge_seconds
            self._result_cache[key] = skyline_ids
        return BatchQueryResult(
            name=query.name,
            skyline_ids=list(skyline_ids),
            topology_key=key,
            from_cache=False,
            seconds=time.perf_counter() - started,
            stats=stats,
            sharded=sharded,
        )

    def run(self, queries: Iterable[BatchQuery]) -> list[BatchQueryResult]:
        """Answer a whole batch in order."""
        return [self.run_query(query) for query in queries]

    def summary(self) -> dict[str, object]:
        """A consistent snapshot of counters, cache sizes and shard state.

        The counters are read under the state lock, so a summary taken while
        queries are in flight never shows e.g. a hit count from after a
        query the evaluation count has not seen yet.
        """
        with self._state_lock:
            queries_evaluated = self.queries_evaluated
            cache_hits = self.cache_hits
            phase_seconds = dict(self._phase_seconds)
        summary: dict[str, object] = {
            "dataset_size": self._num_rows,
            "candidates_after_prefilter": self.candidate_count,
            "frame": self._frame is not None,
            "store": (
                {
                    "path": self._store.path,
                    "format_version": self._store.format_version,
                    "mmap": self._store.uses_mmap,
                }
                if self._store is not None
                else None
            ),
            "phase_seconds": phase_seconds,
            "queries_evaluated": queries_evaluated,
            "cache_hits": cache_hits,
            # Live LRU entries — a lower bound on distinct topologies seen
            # once evictions start (cache_evictions tells the rest).
            "cached_topologies": len(self._result_cache),
            "cache_capacity": self.cache_size,
            "cache_evictions": self._result_cache.evictions,
            "encoding_cache_entries": len(self._encoding_cache),
            "encoding_cache_evictions": self._encoding_cache.evictions,
            "kernel": self.kernel.name,
            "index": self.index,
            "workers": self._executor.workers if self._executor is not None else 0,
        }
        if self._executor is not None:
            summary["sharding"] = self._executor.summary()
        return summary


def random_query_preferences(
    schema, query_seed: int, *, max_probability: float = 0.5
) -> dict[str, PartialOrderDAG]:
    """A random dynamic preference specification over the schema's PO domains.

    Mirrors the benchmark harness's query generator: each PO attribute keeps
    its value domain but re-draws preference edges over a random ranking,
    with a probability calibrated to the base DAG's density.
    """
    import random

    overrides: dict[str, PartialOrderDAG] = {}
    for attr_index, attribute in enumerate(schema.partial_order_attributes):
        dag = attribute.dag
        rng = random.Random(query_seed * 1009 + attr_index)
        values = list(dag.values)
        rng.shuffle(values)
        pairs = len(values) * (len(values) - 1) / 2 or 1.0
        probability = min(max_probability, dag.num_edges / pairs * 2.0)
        edges = [
            (values[i], values[j])
            for i in range(len(values))
            for j in range(i + 1, len(values))
            if rng.random() < probability
        ]
        overrides[attribute.name] = PartialOrderDAG(dag.values, edges)
    return overrides


def queries_from_seeds(schema, seeds: Sequence[int]) -> list[BatchQuery]:
    """One random :class:`BatchQuery` per seed (named ``q<seed>``)."""
    return [
        BatchQuery(name=f"q{seed}", dag_overrides=random_query_preferences(schema, seed))
        for seed in seeds
    ]
