"""Batch evaluation of many skyline queries over one dataset.

A *batch query* re-specifies the preference DAG of some (or all) PO
attributes while the data stays fixed — the dynamic-preference scenario of
Section V of the paper, but answered for a whole set of queries at once.
:class:`BatchQueryEngine` amortizes two kinds of work across the batch:

* **Shared dominance work.**  Records with identical PO value combinations
  tie on every PO attribute under *every* possible preference DAG, so
  dominance between them is decided by the TO attributes alone.  The engine
  therefore partitions the data by PO combination once and keeps only each
  group's TO-Pareto front (one vectorized :meth:`pareto_mask
  <repro.kernels.base.DominanceKernel.pareto_mask>` call per group).  The
  dropped records are dominated under every query and can never appear in
  any skyline; every query then runs against the reduced rows — a row-index
  *view* over the shared frame, not a materialized copy.
* **Per-topology result caching.**  Queries are keyed by the *semantic*
  topology of their preference DAGs (values plus transitive-closure edges,
  per PO attribute).  Two queries that induce the same preference relation —
  even through differently drawn Hasse diagrams — share one skyline
  computation, and the per-DAG interval encodings are cached the same way.

Per query, the engine runs sTSS (or SFS for TO-only schemas) on the reduced
rows through the configured dominance kernel and maps the resulting ids back
to stable record ids.  Both caches are bounded LRU maps (``cache_size``) so
a long-running service cannot grow memory without limit, and with
``workers``/``num_shards`` the per-query work is delegated to a
:class:`~repro.parallel.executor.ShardedExecutor` over the reduced rows.

**Live mutations** ride on the columnar delta plane
(:mod:`repro.delta`): :meth:`BatchQueryEngine.insert` encodes new rows into
an append-only :class:`~repro.delta.frame.DeltaFrame` over the immutable
base and :meth:`BatchQueryEngine.delete` tombstones stable record ids.
Queries then answer ``SKY(base ∪ delta)`` by cross-examining the (cached)
base skyline against a per-query delta skyline — two batched kernel calls,
bitwise-identical to a from-scratch rebuild over the live rows.  Deleting a
base row may resurrect prefilter-dropped group siblings; a
:class:`~repro.delta.candidates.BaseCandidateTracker` recomputes exactly the
dirty groups' Pareto fronts.  Store-backed engines persist every mutation in
a crash-safe sidecar :class:`~repro.store.delta.DeltaLog` and fold the delta
into a fresh packed base once ``compact_threshold`` mutations accumulate
(atomic ``os.replace``; ids survive via the store's ``row_ids`` section).

The engine is a concurrency-safe façade: :meth:`BatchQueryEngine.run_query`
may be called from many threads at once.  Queries synchronize on a
per-``dag_signature`` lock — concurrent queries over *distinct* topologies
interleave freely (their shard-local phases overlap), while concurrent
queries over the *same* topology elect one computing thread and serve the
rest from the shared result cache.  Mutations are writers: a small
read/write latch lets any number of queries overlap each other but never a
mutation.  Counters and :meth:`summary` snapshots are kept consistent under
a dedicated state lock.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.parallel.executor import ShardedQueryResult
    from repro.store.reader import DatasetStore

from repro.config import resolve_compact_threshold, resolve_crc_mode
from repro.core.mapping import TSSMapping
from repro.core.stss import stss_skyline
from repro.data.columns import EncodedFrame, resolve_frame_mode
from repro.data.dataset import Dataset
from repro.delta.candidates import BaseCandidateTracker
from repro.delta.frame import DeltaFrame, dataset_from_frame
from repro.delta.merge import cross_examine, tables_blocks
from repro.engine.prefilter import prefilter_survivors
from repro.engine.encodings import (
    DagKey,
    EncodingCache,
    dag_signature,
    validate_override_domains,
)
from repro.engine.lru import LRUDict
from repro.exceptions import DeadlineExceededError, QueryError
from repro.faults.registry import trip as _fault_trip
from repro.kernels import resolve_kernel
from repro.kernels.tables import RecordTables
from repro.order.dag import PartialOrderDAG
from repro.order.encoding import DomainEncoding
from repro.skyline.base import SkylineStats
from repro.skyline.sfs import sfs_skyline

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "BatchQuery",
    "BatchQueryEngine",
    "BatchQueryResult",
    "DagKey",
    "TopologyKey",
    "dag_signature",
    "queries_from_seeds",
    "random_query_preferences",
]

#: Signature of a whole query: one DagKey per PO attribute, in schema order.
TopologyKey = tuple[DagKey, ...]


@dataclass(frozen=True)
class BatchQuery:
    """One skyline query of a batch: a name plus per-attribute DAG overrides.

    An empty ``dag_overrides`` mapping asks for the skyline under the
    dataset's own (base) preferences.
    """

    name: str
    dag_overrides: Mapping[str, PartialOrderDAG] = field(default_factory=dict)


@dataclass
class BatchQueryResult:
    """Outcome of one query of a batch.

    ``sharded`` carries the per-phase accounting (and local-phase wall-clock
    window) of the underlying sharded run, when the engine has an executor
    and the result was computed rather than served from the cache.
    """

    name: str
    skyline_ids: list[int]
    topology_key: TopologyKey
    from_cache: bool
    seconds: float
    stats: SkylineStats | None = None
    sharded: "ShardedQueryResult | None" = None

    @property
    def skyline_set(self) -> frozenset[int]:
        return frozenset(self.skyline_ids)


#: Default bound of the per-topology result / encoding LRU caches.
DEFAULT_CACHE_SIZE = 256

#: Result-cache miss marker — distinct from any cached value, so a cached
#: empty skyline (or ``None``) is never mistaken for a miss.
_CACHE_MISS = object()


class _ReadWriteLatch:
    """A minimal many-readers / one-writer latch (writer-preferring enough).

    Queries are readers (they share every engine structure), mutations and
    compaction are writers.  Not reentrant across kinds: a holder of the
    write side must not re-acquire either side.
    """

    __slots__ = ("_cond", "_readers", "_writer")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            while self._writer or self._readers:
                self._cond.wait()
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class BatchQueryEngine:
    """Evaluate many skyline queries over one dataset with shared work.

    ``cache_size`` bounds both LRU caches (results and per-DAG encodings).
    ``workers``/``num_shards``/``partitioner`` optionally route each evaluated
    query through a sharded executor built over the reduced rows
    (``workers=0`` with ``num_shards>1`` shards in-process; ``workers>=1``
    uses a persistent worker pool — close the engine, e.g. as a context
    manager, to release it).  ``crc`` selects the store checksum mode
    (``"eager"``/``"lazy"``, see :meth:`DatasetStore.open
    <repro.store.reader.DatasetStore.open>`) and ``compact_threshold`` the
    number of pending delta mutations that triggers automatic compaction
    (0 disables; both fall back to ``REPRO_CRC`` / ``REPRO_COMPACT_THRESHOLD``).
    """

    def __init__(
        self,
        dataset: "Dataset | DatasetStore | str | os.PathLike",
        *,
        kernel=None,
        max_entries: int = 32,
        prefilter: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
        workers: int | str | None = None,
        num_shards: int | None = None,
        partitioner="round-robin",
        merge_strategy: str | None = None,
        use_frame: bool | None = None,
        index=None,
        mmap: bool | None = None,
        crc: str | None = None,
        compact_threshold: int | str | None = None,
    ) -> None:
        # A path or an open DatasetStore selects the persisted plane: the
        # encoded frame, the prefilter survivors and (for base-preference
        # queries) the mapping/tree come straight out of the packed file —
        # nothing is re-encoded, re-filtered or re-bulk-loaded.
        from repro.store.reader import DatasetStore

        self._crc_mode = resolve_crc_mode(crc)
        self._compact_threshold = resolve_compact_threshold(compact_threshold)
        store: DatasetStore | None = None
        if isinstance(dataset, (str, os.PathLike)):
            store = DatasetStore.open(dataset, mmap=mmap, crc=self._crc_mode)
        elif isinstance(dataset, DatasetStore):
            store = dataset
        self._store = store
        if store is not None:
            dataset = None
            self.schema = store.schema
            self._num_rows = store.num_rows
        else:
            self.schema = dataset.schema
            self._num_rows = len(dataset)
        self._dataset = dataset
        self.kernel = resolve_kernel(kernel)
        # Spatial index backend for the per-query data R-trees (resolved once
        # so typos fail fast and sharded workers receive the same choice).
        from repro.index.registry import resolve_index

        self.index = resolve_index(index)
        self.max_entries = max_entries
        self.cache_size = cache_size
        self._prefilter = bool(prefilter)
        self._result_cache: LRUDict[TopologyKey, list[int]] = LRUDict(cache_size)
        # Base-side skylines as *frame rows*, per topology.  Survives inserts
        # (the base did not change) and is dropped only when the live base
        # row set does: base deletes and compaction.
        self._base_cache: LRUDict[TopologyKey, list[int]] = LRUDict(cache_size)
        self._encoding_cache = EncodingCache(cache_size)
        self.queries_evaluated = 0
        self.cache_hits = 0
        self.mutations_applied = 0
        self.compactions = 0
        # Owns the counters and snapshot reads; never held while computing.
        self._state_lock = threading.Lock()
        # Queries read the engine structures concurrently; mutations /
        # compaction swap them under the write side.
        self._latch = _ReadWriteLatch()
        # One lock per topology signature, so only same-topology queries
        # serialize.  Evicting a lock someone still holds is harmless: a
        # latecomer creates a fresh lock and at worst duplicates work the
        # result cache then deduplicates.
        self._query_locks: LRUDict[TopologyKey, threading.Lock] = LRUDict(
            max(cache_size, 64)
        )
        # Cumulative wall clock per pipeline phase (warm the kernel's compiled
        # functions, encode the frame, build per-query mappings + the shared
        # prefilter, bulk-load the per-query data R-trees, run the skyline
        # scans, merge across shards); read via :meth:`summary`.  Sharded runs
        # fold tree construction into their workers' local phase, so
        # ``index_build`` tracks the in-process path.
        self._phase_seconds = {
            "kernel_warmup": 0.0,
            "encode": 0.0,
            "build": 0.0,
            "index_build": 0.0,
            "query": 0.0,
            "merge": 0.0,
        }
        # JIT backends compile their dominance loops on first call; trigger
        # that here so the cost lands in its own phase instead of inflating
        # the first query's timing.  Non-compiled backends return immediately.
        started = time.perf_counter()
        if self.kernel.warmup():
            self._phase_seconds["kernel_warmup"] += time.perf_counter() - started
        # The columnar data plane: the dataset encoded once; queries then
        # read it through row-index views (never a materialized survivor
        # copy).  ``None`` keeps the record path.  With a store the frame is
        # the packed one (mapped or loaded, never re-encoded); disabling the
        # frame on a store instead materializes records from the same file
        # (the pure-Python fallback).
        self._use_frame = resolve_frame_mode(use_frame)
        started = time.perf_counter()
        if store is not None:
            if self._use_frame:
                self._frame = store.frame()
            else:
                self._frame = None
                self._dataset = dataset = store.dataset()
        else:
            self._frame = (
                EncodedFrame.from_dataset(dataset) if self._use_frame else None
            )
        self._phase_seconds["encode"] += time.perf_counter() - started
        # Stable ``base row -> record id`` mapping (None = identity).  A
        # store packed by compaction carries one; fresh data starts identity.
        self._row_ids = store.row_ids() if store is not None else None
        # Mirrors the kernel registry: an explicit ``workers`` wins, ``None``
        # consults REPRO_WORKERS, and 0 means single-process evaluation.
        # The merge strategy resolves the same way (REPRO_MERGE) and is
        # validated even when no executor is built, so typos fail fast.
        from repro.parallel.executor import resolve_merge_strategy, resolve_workers

        self._workers_resolved = resolve_workers(workers)
        self._merge_strategy = resolve_merge_strategy(merge_strategy)
        self._num_shards_config = num_shards
        self._partitioner = partitioner
        self._sharded = self._workers_resolved >= 1 or (
            num_shards is not None and num_shards > 1
        )
        started = time.perf_counter()
        if store is not None and self._frame is not None:
            # The packed prefilter pass (validated at pack time against both
            # backends); skipping it costs nothing since the survivor list
            # is one mmap'd section.
            self._candidate_rows = (
                store.survivors() if prefilter else list(range(self._num_rows))
            )
        else:
            self._candidate_rows = (
                self._prefilter_survivors()
                if prefilter
                else list(range(self._num_rows))
            )
        self._phase_seconds["build"] += time.perf_counter() - started
        # Base-preference queries may adopt the store's packed mapping/tree;
        # their point record ids index the *packed* survivor order, which is
        # this engine's reduced order only while the prefilter is on and no
        # base row has been deleted.
        self._store_base_usable = (
            store is not None
            and self._frame is not None
            and prefilter
            and store.has_base_mapping
        )
        self._base_artifacts = None
        # The delta plane: built lazily on the first mutation (or delta-log
        # replay); ``None`` means the base alone answers every query.
        self._delta: DeltaFrame | None = None
        self._tracker: BaseCandidateTracker | None = None
        self._log = None
        # Set when the sidecar log needed quarantine at open (see
        # :meth:`DeltaLog.recover <repro.store.delta.DeltaLog.recover>`).
        self._delta_recovery: dict | None = None
        self._mutation_frame: EncodedFrame | None = None
        self._executor = None
        if store is not None:
            self._replay_delta_log()
        self._build_reduced_state()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def executor(self):
        """The sharded executor evaluating this engine's queries, if any."""
        return self._executor

    @property
    def dataset(self) -> Dataset:
        """The engine's record view (frame/store-backed engines materialize
        lazily)."""
        if self._dataset is None:
            if self._store is not None:
                self._dataset = self._store.dataset()
            elif self._frame is not None:
                self._dataset = dataset_from_frame(self._frame)
        return self._dataset

    @property
    def store(self):
        """The backing :class:`~repro.store.reader.DatasetStore`, if any."""
        return self._store

    def close(self) -> None:
        """Release the sharded executor's worker pool, if one is running."""
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "BatchQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Shared dominance work
    # ------------------------------------------------------------------ #
    def _prefilter_survivors(self) -> list[int]:
        """Keep only each PO-combination group's TO-Pareto front.

        Query-independent: within a group the PO attributes tie under every
        preference DAG, so a record strictly TO-dominated by a group sibling
        is dominated under every query.  Delegates to
        :func:`repro.engine.prefilter.prefilter_survivors` — the very same
        code the store writer runs at pack time, so packed survivor lists
        can never drift from a fresh engine's.
        """
        return prefilter_survivors(
            self.schema, self._dataset, self._frame, self.kernel
        )

    @property
    def candidate_count(self) -> int:
        """Records that can appear in some query's skyline (after prefilter)."""
        return len(self._candidate_rows)

    @property
    def _candidate_ids(self) -> list[int]:
        """Stable record ids of the candidate rows (compat/introspection)."""
        return [self._stable_id_of_row(row) for row in self._candidate_rows]

    def _stable_id_of_row(self, row: int) -> int:
        return row if self._row_ids is None else self._row_ids[row]

    def _stored_base_artifacts(self, query: BatchQuery, key: TopologyKey):
        """The store's packed base mapping (+ tree, when compatible), cached.

        The packed flat tree is adopted only when this engine actually
        queries through the flat backend with the packed fanout; otherwise
        the tree is rebuilt over the packed mapping's points (still no
        re-mapping).  Guarded by :attr:`_store_base_usable` — the packed
        record ids index the packed survivor order.
        """
        with self._state_lock:
            cached = self._base_artifacts
        if cached is not None:
            return cached
        store = self._store
        mapping = store.base_mapping(encodings=self._encodings_for(query, key))
        if (
            self.index == "flat"
            and store.has_base_index
            and self.max_entries == store.base_max_entries
        ):
            tree = store.base_tree()
        else:
            tree = mapping.build_rtree(
                max_entries=self.max_entries, index=self.index
            )
        with self._state_lock:
            if self._base_artifacts is None:
                self._base_artifacts = (mapping, tree)
            return self._base_artifacts

    # ------------------------------------------------------------------ #
    # Reduced state (initial build + rebuilds after base-live changes)
    # ------------------------------------------------------------------ #
    def _build_reduced_state(self) -> None:
        """Derive every candidate-dependent structure from ``_candidate_rows``.

        Called at construction and again whenever the live base row set
        changes (base delete that dirtied a Pareto front, compaction).  The
        in-process frame path keeps only a row-index view
        (:attr:`_reduced_rows`); a materialized row-subset frame is built
        solely for the sharded executor, which partitions rows across
        shards/processes and therefore needs its own copy anyway.
        """
        full = len(self._candidate_rows) == self._num_rows
        self._reduced_rows = None if full else list(self._candidate_rows)
        started = time.perf_counter()
        # The reduced record view backs the record fallback and the sharded
        # partitioners; the frame path reads row views of the shared frame,
        # so no per-record subset is materialized there (store-backed
        # engines never materialize it — sharding partitions the frame).
        if self._store is not None and self._frame is not None:
            self._reduced = None
        elif self._frame is not None and not self._sharded:
            self._reduced = None
        else:
            records = self.dataset
            self._reduced = (
                records if full else records.subset(self._candidate_rows)
            )
        self._phase_seconds["build"] += time.perf_counter() - started
        started = time.perf_counter()
        if self._frame is not None and self._sharded and not full:
            self._executor_frame = self._frame.take(self._candidate_rows)
        elif self._frame is not None and full:
            self._executor_frame = self._frame
        else:
            self._executor_frame = None
        self._phase_seconds["encode"] += time.perf_counter() - started
        old = self._executor
        self._executor = None
        if old is not None:
            old.close()
        if self._sharded:
            from repro.parallel.executor import ShardedExecutor

            started = time.perf_counter()
            ship_store = (
                self._store
                if self._reduced is None and self._store is not None
                else None
            )
            self._executor = ShardedExecutor(
                self._reduced,
                workers=self._workers_resolved,
                num_shards=self._num_shards_config,
                partitioner=self._partitioner,
                kernel=self.kernel,
                max_entries=self.max_entries,
                merge_strategy=self._merge_strategy,
                encoding_cache_size=self.cache_size,
                frame=self._executor_frame,
                use_frame=self._use_frame,
                index=self.index,
                store=ship_store,
                store_rows=self._candidate_rows if ship_store is not None else None,
            )
            self._phase_seconds["build"] += time.perf_counter() - started

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #
    def topology_key(self, query: BatchQuery) -> TopologyKey:
        po_names = {a.name for a in self.schema.partial_order_attributes}
        unknown = set(query.dag_overrides) - po_names
        if unknown:
            raise QueryError(
                f"query {query.name!r} overrides non-PO attributes: {sorted(unknown)}"
            )
        keys: list[DagKey] = []
        for attribute in self.schema.partial_order_attributes:
            dag = query.dag_overrides.get(attribute.name, attribute.dag)
            keys.append(dag_signature(dag))
        return tuple(keys)

    def _encodings_for(
        self, query: BatchQuery, key: TopologyKey
    ) -> list[DomainEncoding]:
        return self._encoding_cache.encodings_for(
            self.schema.partial_order_attributes, query.dag_overrides, keys=key
        )

    def _cached_result(
        self, query: BatchQuery, key: TopologyKey, started: float
    ) -> BatchQueryResult | None:
        """A cache-hit result (counting the hit), or ``None`` on a miss."""
        cached = self._result_cache.get(key, _CACHE_MISS)
        if cached is _CACHE_MISS:
            return None
        with self._state_lock:
            self.cache_hits += 1
        return BatchQueryResult(
            name=query.name,
            skyline_ids=list(cached),
            topology_key=key,
            from_cache=True,
            seconds=time.perf_counter() - started,
        )

    def _effective_schema(self, query: BatchQuery):
        if query.dag_overrides:
            return self.schema.replace_partial_order(dict(query.dag_overrides))
        return self.schema

    def _base_skyline_rows(
        self,
        query: BatchQuery,
        key: TopologyKey,
        *,
        deadline: float | None = None,
    ):
        """The base-side skyline as frame rows, via the per-topology cache.

        Returns ``(rows, stats, sharded_result, timers)`` where ``timers`` is
        the ``(build, index_build, query, merge)`` seconds of an actual
        computation (all zero on a base-cache hit).
        """
        cached = self._base_cache.get(key, _CACHE_MISS)
        if cached is not _CACHE_MISS:
            return list(cached), None, None, (0.0, 0.0, 0.0, 0.0)
        stats = None
        sharded = None
        build_seconds = index_build_seconds = query_seconds = merge_seconds = 0.0
        if self._executor is not None:
            sharded = self._executor.query(
                query.dag_overrides, name=query.name, deadline=deadline
            )
            reduced_ids = sharded.skyline_ids
            query_seconds = sharded.seconds_local
            merge_seconds = sharded.seconds_merge
        else:
            if query.dag_overrides:
                # Domain coverage is checked up front (the shared cheap
                # equivalent of full row validation, same as the sharded
                # path) so the frame/dataset swap can skip re-walking every
                # row on each topology miss.
                validate_override_domains(
                    self.schema.partial_order_attributes, query.dag_overrides
                )
            if self.schema.num_partial_order:
                phase_started = time.perf_counter()
                tree = None
                if not query.dag_overrides and self._store_base_usable:
                    # Base-preference query over a store: adopt the packed
                    # mapping (and tree, when compatible) instead of
                    # re-mapping / re-bulk-loading.
                    mapping, tree = self._stored_base_artifacts(query, key)
                elif self._frame is not None:
                    # Columnar path: map a row view of the shared frame under
                    # the effective schema — no survivor copy, no per-record
                    # re-walk.
                    mapping = TSSMapping(
                        None,
                        self._encodings_for(query, key),
                        schema=self._effective_schema(query),
                        frame=self._frame,
                        rows=self._reduced_rows,
                    )
                else:
                    if query.dag_overrides:
                        schema = self.schema.replace_partial_order(
                            dict(query.dag_overrides)
                        )
                        data = self._reduced.with_schema(schema, validate=False)
                    else:
                        data = self._reduced
                    mapping = TSSMapping(
                        data, self._encodings_for(query, key), use_frame=False
                    )
                index_started = time.perf_counter()
                build_seconds = index_started - phase_started
                if tree is None:
                    tree = mapping.build_rtree(
                        max_entries=self.max_entries, index=self.index
                    )
                query_started = time.perf_counter()
                index_build_seconds = query_started - index_started
                result = stss_skyline(
                    mapping=mapping, tree=tree, kernel=self.kernel, index=self.index
                )
                query_seconds = time.perf_counter() - query_started
            else:
                query_started = time.perf_counter()
                if self._frame is not None:
                    result = sfs_skyline(
                        None,
                        frame=self._frame,
                        rows=self._reduced_rows,
                        kernel=self.kernel,
                    )
                else:
                    result = sfs_skyline(
                        self._reduced, kernel=self.kernel, use_frame=False
                    )
                query_seconds = time.perf_counter() - query_started
            reduced_ids = result.skyline_ids
            stats = result.stats
        rows = [self._candidate_rows[reduced_id] for reduced_id in reduced_ids]
        self._base_cache[key] = rows
        timers = (build_seconds, index_build_seconds, query_seconds, merge_seconds)
        return rows, stats, sharded, timers

    def _merged_skyline_ids(
        self, query: BatchQuery, key: TopologyKey, base_rows: Sequence[int]
    ) -> list[int]:
        """``SKY(base ∪ delta)`` as sorted stable ids.

        The delta side runs the same per-query pipeline over a row view of
        the insert frame (live inserts only); the two partial skylines are
        then cross-examined with one batched ground-truth dominance call per
        direction — see :mod:`repro.delta.merge` for why the union of the
        mutual survivors is exactly the from-scratch skyline.
        """
        delta = self._delta
        live_positions = delta.live_insert_positions()
        insert_frame = delta.insert_frame()
        if self.schema.num_partial_order:
            mapping = TSSMapping(
                None,
                self._encodings_for(query, key),
                schema=self._effective_schema(query),
                frame=insert_frame,
                rows=live_positions,
            )
            tree = mapping.build_rtree(max_entries=self.max_entries, index=self.index)
            result = stss_skyline(
                mapping=mapping, tree=tree, kernel=self.kernel, index=self.index
            )
        else:
            result = sfs_skyline(
                None, frame=insert_frame, rows=live_positions, kernel=self.kernel
            )
        delta_rows = [live_positions[i] for i in result.skyline_ids]
        tables = RecordTables.from_schema(self._effective_schema(query))
        keep_base, keep_delta = cross_examine(
            self.kernel,
            tables,
            tables_blocks(self._mutation_base_frame(), list(base_rows), tables),
            tables_blocks(insert_frame, delta_rows, tables),
        )
        ids = [
            self._stable_id_of_row(row)
            for row, keep in zip(base_rows, keep_base)
            if keep
        ]
        ids.extend(
            delta.insert_ids_at(
                [row for row, keep in zip(delta_rows, keep_delta) if keep]
            )
        )
        return sorted(ids)

    @staticmethod
    def _check_deadline(deadline: float | None, phase: str) -> None:
        """Raise when the caller's absolute-monotonic deadline has passed.

        Called between query phases so a deadlined query stops burning CPU
        (and releases its topology lock and read latch) at the next phase
        boundary instead of running to completion for nobody.
        """
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceededError(
                f"query deadline exceeded before the {phase} phase"
            )

    def run_query(
        self, query: BatchQuery, *, deadline: float | None = None
    ) -> BatchQueryResult:
        """Answer one query (possibly from the per-topology cache).

        Thread-safe: concurrent callers over distinct topologies proceed in
        parallel; concurrent callers over the same topology serialize on a
        per-``dag_signature`` lock, where all but the first are then served
        by the result cache the winner filled.  Mutations never interleave
        with an in-flight query (read/write latch).

        ``deadline`` is an absolute :func:`time.monotonic` timestamp; the
        engine re-checks it between phases (base skyline, delta merge) and
        raises :class:`~repro.exceptions.DeadlineExceededError` — results are
        still all-or-nothing, a deadlined query never returns a partial
        skyline.
        """
        started = time.perf_counter()
        key = self.topology_key(query)
        hit = self._cached_result(query, key, started)
        if hit is not None:
            return hit

        query_lock = self._query_locks.setdefault(key, threading.Lock())
        with query_lock:
            # Re-check under the topology lock: while we waited, another
            # thread may have computed and cached this very topology.
            hit = self._cached_result(query, key, started)
            if hit is not None:
                return hit
            self._check_deadline(deadline, "base-skyline")
            self._latch.acquire_read()
            try:
                base_rows, stats, sharded, timers = self._base_skyline_rows(
                    query, key, deadline=deadline
                )
                build_seconds, index_build_seconds, query_seconds, merge_seconds = (
                    timers
                )
                self._check_deadline(deadline, "delta-merge")
                delta = self._delta
                if delta is not None and delta.live_insert_count:
                    merge_started = time.perf_counter()
                    skyline_ids = self._merged_skyline_ids(query, key, base_rows)
                    merge_seconds += time.perf_counter() - merge_started
                else:
                    skyline_ids = sorted(
                        self._stable_id_of_row(row) for row in base_rows
                    )
                with self._state_lock:
                    self.queries_evaluated += 1
                    self._phase_seconds["build"] += build_seconds
                    self._phase_seconds["index_build"] += index_build_seconds
                    self._phase_seconds["query"] += query_seconds
                    self._phase_seconds["merge"] += merge_seconds
                self._result_cache[key] = skyline_ids
            finally:
                self._latch.release_read()
        return BatchQueryResult(
            name=query.name,
            skyline_ids=list(skyline_ids),
            topology_key=key,
            from_cache=False,
            seconds=time.perf_counter() - started,
            stats=stats,
            sharded=sharded,
        )

    def run(self, queries: Iterable[BatchQuery]) -> list[BatchQueryResult]:
        """Answer a whole batch in order."""
        return [self.run_query(query) for query in queries]

    # ------------------------------------------------------------------ #
    # Live mutations (the delta plane)
    # ------------------------------------------------------------------ #
    def _mutation_base_frame(self) -> EncodedFrame:
        """The encoded base the delta plane layers over.

        The engine's own frame when the columnar path is on; otherwise a
        one-time encode of the record dataset (bitwise-pinned to the frame a
        columnar engine would hold, so both paths merge identically).
        """
        if self._frame is not None:
            return self._frame
        if self._mutation_frame is None:
            self._mutation_frame = EncodedFrame.from_dataset(self.dataset)
        return self._mutation_frame

    def _ensure_delta(self) -> DeltaFrame:
        if self._delta is None:
            self._delta = DeltaFrame(
                self._mutation_base_frame(), base_ids=self._row_ids
            )
            if self._store is not None and self._log is None:
                from repro.store.delta import DeltaLog, delta_log_path

                self._log = DeltaLog.ensure(
                    delta_log_path(self._store.path), self._store.generation
                )
        return self._delta

    def _ensure_tracker(self) -> BaseCandidateTracker:
        if self._tracker is None:
            self._tracker = BaseCandidateTracker(
                self._mutation_base_frame(),
                self.kernel,
                prefilter=self._prefilter,
                initial_rows=self._candidate_rows,
            )
        return self._tracker

    def _replay_delta_log(self) -> None:
        """Recover pending mutations from the store's sidecar log (at open).

        Only a log written against this very store generation applies; a
        stale one (compaction landed, crash before the log reset) is left to
        be discarded by the first mutation's :meth:`DeltaLog.ensure
        <repro.store.delta.DeltaLog.ensure>`.  A log corrupted beyond the
        torn-tail rule is quarantined by :meth:`DeltaLog.recover
        <repro.store.delta.DeltaLog.recover>` (never a refusal to open); the
        recovery report surfaces through :meth:`summary`.
        """
        from repro.store.delta import DeltaLog, delta_log_path

        log, report = DeltaLog.recover(
            delta_log_path(self._store.path), self._store.generation
        )
        self._delta_recovery = report
        if log is None:
            return
        self._log = log
        if not log.entries:
            return
        delta = self._ensure_delta()
        for entry in log.entries:
            if entry[0] == "insert":
                for record_id, to_values, codes in zip(entry[1], entry[2], entry[3]):
                    delta.replay_insert(record_id, to_values, codes)
            else:
                _, base_rows = delta.delete_ids(entry[1])
                if base_rows:
                    self._ensure_tracker().remove_rows(base_rows)
        if self._tracker is not None:
            candidates = self._tracker.candidates()
            if candidates != self._candidate_rows:
                self._candidate_rows = candidates
                self._store_base_usable = False
        self.mutations_applied += delta.mutations

    def insert(self, rows: Sequence[Sequence[object]]) -> list[int]:
        """Insert a batch of records; returns their newly allocated stable ids.

        Rows are validated against the schema, encoded into the canonical
        column layout and appended to the delta plane (and, store-backed, to
        the crash-safe sidebar log) — the base is never rewritten.  May
        trigger automatic compaction (``compact_threshold``).
        """
        rows = list(rows)
        if not rows:
            return []
        self._latch.acquire_write()
        try:
            delta = self._ensure_delta()
            ids = delta.insert_rows(rows)
            if self._log is not None:
                to_rows, code_rows = delta.insert_payload(ids)
                self._log.append_inserts(ids, to_rows, code_rows)
            self._note_mutation(len(ids))
            self._maybe_compact()
            return ids
        finally:
            self._latch.release_write()

    def delete(self, record_ids: Sequence[int]) -> list[int]:
        """Tombstone stable record ids; returns the ids actually deleted.

        Idempotent for already-deleted ids; unknown ids raise
        :class:`~repro.exceptions.QueryError`.  Deleting a base row that sat
        on its PO group's Pareto front resurrects the prefilter-dropped
        siblings it was masking (the candidate tracker recomputes exactly
        the dirty fronts).  May trigger automatic compaction.
        """
        record_ids = [int(record_id) for record_id in record_ids]
        if not record_ids:
            return []
        self._latch.acquire_write()
        try:
            delta = self._ensure_delta()
            removed, base_rows = delta.delete_ids(record_ids)
            if self._log is not None and removed:
                self._log.append_deletes(removed)
            if base_rows:
                self._apply_base_deletes(base_rows)
            if removed:
                self._note_mutation(len(removed))
                self._maybe_compact()
            return removed
        finally:
            self._latch.release_write()

    def _note_mutation(self, count: int) -> None:
        with self._state_lock:
            self.mutations_applied += count
        # Every mutation invalidates merged results; the base-side cache
        # survives unless the live base row set changed.
        self._result_cache.clear()

    def _apply_base_deletes(self, base_rows: Sequence[int]) -> None:
        tracker = self._ensure_tracker()
        if not tracker.remove_rows(base_rows):
            # The deleted rows were prefilter-dropped (dominated) — the
            # candidate set, every base skyline and the packed artifacts
            # still stand.
            return
        self._candidate_rows = tracker.candidates()
        self._base_cache.clear()
        self._base_artifacts = None
        self._store_base_usable = False
        self._build_reduced_state()

    def _maybe_compact(self) -> None:
        if (
            self._compact_threshold > 0
            and self._delta is not None
            and self._delta.mutations >= self._compact_threshold
        ):
            self._compact_locked()

    def compact(self) -> dict:
        """Fold the delta plane into a fresh base; returns a summary dict.

        Store-backed engines pack the live rows (with their surviving stable
        ids) to a temporary file, atomically ``os.replace`` it over the
        store, reset the sidecar log to the new generation and re-open —
        every intermediate state is CRC-valid and re-openable.  In-memory
        engines simply adopt the live frame as the new base.
        """
        self._latch.acquire_write()
        try:
            return self._compact_locked()
        finally:
            self._latch.release_write()

    def _compact_locked(self) -> dict:
        delta = self._delta
        if delta is None or not delta.mutations:
            return {"compacted": False, "reason": "no pending mutations"}
        live_frame, row_ids = delta.live_frame_and_ids()
        summary: dict[str, object] = {
            "compacted": True,
            "rows": len(row_ids),
            "folded_mutations": delta.mutations,
        }
        started = time.perf_counter()
        if self._store is not None:
            from repro.store.delta import DeltaLog, delta_log_path
            from repro.store.reader import DatasetStore
            from repro.store.writer import pack_frame

            store = self._store
            generation = store.generation + 1
            tmp_path = store.path + ".compact.tmp"
            pack_frame(
                live_frame,
                tmp_path,
                kernel=self.kernel,
                max_entries=self.max_entries,
                row_ids=row_ids,
                generation=generation,
            )
            # The commit point: readers see either the old store (+ the old
            # log, still at the old generation) or the new one.  A crash
            # after the replace but before the log reset leaves a stale-
            # generation log, which every loader discards.  Fault stages
            # bracket exactly that window for the crash-matrix tests.
            _fault_trip("delta.compact_replace", stage="pre")
            os.replace(tmp_path, store.path)
            _fault_trip("delta.compact_replace", stage="post")
            if self._log is not None:
                self._log.reset(generation)
            else:
                self._log = DeltaLog.ensure(
                    delta_log_path(store.path), generation
                )
            reopened = DatasetStore.open(
                store.path, mmap=store.uses_mmap, crc=self._crc_mode
            )
            self._store = reopened
            self._num_rows = reopened.num_rows
            self._row_ids = reopened.row_ids()
            if self._use_frame:
                self._frame = reopened.frame()
                self._dataset = None
            else:
                self._frame = None
                self._dataset = reopened.dataset()
            self._mutation_frame = None
            self._candidate_rows = (
                reopened.survivors()
                if self._prefilter
                else list(range(self._num_rows))
            )
            self._store_base_usable = (
                self._frame is not None
                and self._prefilter
                and reopened.has_base_mapping
            )
            summary["generation"] = generation
            summary["path"] = reopened.path
        else:
            identity = row_ids == list(range(len(row_ids)))
            self._row_ids = None if identity else row_ids
            self._num_rows = len(row_ids)
            if self._use_frame:
                self._frame = live_frame
                self._dataset = None
                self._mutation_frame = None
            else:
                self._frame = None
                self._dataset = dataset_from_frame(live_frame)
                self._mutation_frame = live_frame
            self._candidate_rows = (
                self._prefilter_survivors()
                if self._prefilter
                else list(range(self._num_rows))
            )
            self._store_base_usable = False
        self._delta = None
        self._tracker = None
        self._base_artifacts = None
        self._base_cache.clear()
        self._result_cache.clear()
        with self._state_lock:
            self.compactions += 1
        self._build_reduced_state()
        summary["seconds"] = time.perf_counter() - started
        return summary

    def summary(self) -> dict[str, object]:
        """A consistent snapshot of counters, cache sizes and shard state.

        The counters are read under the state lock, so a summary taken while
        queries are in flight never shows e.g. a hit count from after a
        query the evaluation count has not seen yet.
        """
        with self._state_lock:
            queries_evaluated = self.queries_evaluated
            cache_hits = self.cache_hits
            mutations_applied = self.mutations_applied
            compactions = self.compactions
            phase_seconds = dict(self._phase_seconds)
        delta = self._delta
        summary: dict[str, object] = {
            "dataset_size": self._num_rows,
            "candidates_after_prefilter": self.candidate_count,
            "frame": self._frame is not None,
            "store": (
                {
                    "path": self._store.path,
                    "format_version": self._store.format_version,
                    "generation": self._store.generation,
                    "mmap": self._store.uses_mmap,
                    "crc": self._store.crc_mode,
                    "degraded_sections": list(self._store.degraded_sections),
                }
                if self._store is not None
                else None
            ),
            "phase_seconds": phase_seconds,
            "queries_evaluated": queries_evaluated,
            "cache_hits": cache_hits,
            # Live LRU entries — a lower bound on distinct topologies seen
            # once evictions start (cache_evictions tells the rest).
            "cached_topologies": len(self._result_cache),
            "cache_capacity": self.cache_size,
            "cache_evictions": self._result_cache.evictions,
            "encoding_cache_entries": len(self._encoding_cache),
            "encoding_cache_evictions": self._encoding_cache.evictions,
            "kernel": self.kernel.name,
            "index": self.index,
            "workers": self._executor.workers if self._executor is not None else 0,
            "crc": self._crc_mode,
            "compact_threshold": self._compact_threshold,
            "mutations_applied": mutations_applied,
            "compactions": compactions,
            "delta_log_recovery": self._delta_recovery,
            "delta": (
                None
                if delta is None
                else {
                    "inserts": delta.num_inserts,
                    "live_inserts": delta.live_insert_count,
                    "base_deletes": delta.num_base_deletes,
                    "pending_mutations": delta.mutations,
                    "live_rows": delta.num_live,
                    "next_id": delta.next_id,
                }
            ),
        }
        if self._executor is not None:
            summary["sharding"] = self._executor.summary()
        return summary


def random_query_preferences(
    schema, query_seed: int, *, max_probability: float = 0.5
) -> dict[str, PartialOrderDAG]:
    """A random dynamic preference specification over the schema's PO domains.

    Mirrors the benchmark harness's query generator: each PO attribute keeps
    its value domain but re-draws preference edges over a random ranking,
    with a probability calibrated to the base DAG's density.
    """
    import random

    overrides: dict[str, PartialOrderDAG] = {}
    for attr_index, attribute in enumerate(schema.partial_order_attributes):
        dag = attribute.dag
        rng = random.Random(query_seed * 1009 + attr_index)
        values = list(dag.values)
        rng.shuffle(values)
        pairs = len(values) * (len(values) - 1) / 2 or 1.0
        probability = min(max_probability, dag.num_edges / pairs * 2.0)
        edges = [
            (values[i], values[j])
            for i in range(len(values))
            for j in range(i + 1, len(values))
            if rng.random() < probability
        ]
        overrides[attribute.name] = PartialOrderDAG(dag.values, edges)
    return overrides


def queries_from_seeds(schema, seeds: Sequence[int]) -> list[BatchQuery]:
    """One random :class:`BatchQuery` per seed (named ``q<seed>``)."""
    return [
        BatchQuery(name=f"q{seed}", dag_overrides=random_query_preferences(schema, seed))
        for seed in seeds
    ]
