"""Allow ``python -m repro <experiment> ...`` to run the benchmark CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
