"""Fully dynamic skyline queries: query-specified preferences *and* ideal values.

Section V-B of the paper closes with the fully dynamic case: a query that
specifies a partial order for every PO attribute **and** an ideal value for
every TO attribute.  Dominance is then defined with respect to the query —
a record beats another when it is at least as close to the ideal value on
every TO attribute, preferred-or-equal on every PO attribute, and strictly
better somewhere.  The per-group local skylines pre-computed for ordinary
dynamic queries are no longer valid (the TO preferences changed), so the
skyline within each group must be recomputed; caching of past results still
applies.

The implementation re-expresses the query as a *static* PO skyline problem
over a derived dataset whose TO attributes hold the distances to the ideal
values, and answers it with sTSS.  A small LRU cache keyed by the full query
(ideal values + canonical partial orders) makes repeated specifications free,
mirroring the caching discussion in the paper.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Mapping, Sequence

from repro.core.stss import stss_skyline
from repro.data.columns import EncodedFrame
from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.delta.frame import DeltaFrame, as_record_dataset
from repro.dynamic.cache import canonical_query_key
from repro.exceptions import QueryError
from repro.order.dag import PartialOrderDAG
from repro.skyline.base import SkylineResult

Value = Hashable


def _resolve_partial_orders(
    schema: Schema,
    partial_orders: Mapping[str, PartialOrderDAG] | Sequence[PartialOrderDAG],
) -> dict[str, PartialOrderDAG]:
    po_attributes = schema.partial_order_attributes
    if isinstance(partial_orders, Mapping):
        missing = [a.name for a in po_attributes if a.name not in partial_orders]
        if missing:
            raise QueryError(f"query does not specify a partial order for: {missing}")
        return {a.name: partial_orders[a.name] for a in po_attributes}
    dags = list(partial_orders)
    if len(dags) != len(po_attributes):
        raise QueryError(
            f"query specifies {len(dags)} partial orders, schema has {len(po_attributes)}"
        )
    return {a.name: dag for a, dag in zip(po_attributes, dags)}


def _resolve_ideal_values(
    schema: Schema, ideal_values: Mapping[str, float] | Sequence[float]
) -> dict[str, float]:
    to_attributes = schema.total_order_attributes
    if isinstance(ideal_values, Mapping):
        missing = [a.name for a in to_attributes if a.name not in ideal_values]
        if missing:
            raise QueryError(f"query does not specify an ideal value for: {missing}")
        return {a.name: float(ideal_values[a.name]) for a in to_attributes}
    values = list(ideal_values)
    if len(values) != len(to_attributes):
        raise QueryError(
            f"query specifies {len(values)} ideal values, schema has {len(to_attributes)} TO attributes"
        )
    return {a.name: float(v) for a, v in zip(to_attributes, values)}


def distance_transformed_dataset(
    dataset: Dataset,
    partial_orders: dict[str, PartialOrderDAG],
    ideal_values: dict[str, float],
) -> Dataset:
    """The derived dataset whose TO attributes hold distances to the ideal values.

    Every TO attribute becomes ``|value - ideal|`` with "smaller is better"
    (regardless of the original attribute's direction — distance to the ideal
    is what the fully dynamic query minimizes); PO attributes keep their
    values but adopt the query's preference DAGs.
    """
    schema = dataset.schema
    attributes = []
    for attribute in schema.attributes:
        if attribute.is_partial:
            attributes.append(
                PartialOrderAttribute(attribute.name, partial_orders[attribute.name])
            )
        else:
            attributes.append(TotalOrderAttribute(attribute.name, best="min"))
    derived_schema = Schema(attributes)

    to_positions = set(schema.total_order_positions)
    rows = []
    for record in dataset.records:
        row = []
        for position, value in enumerate(record.values):
            if position in to_positions:
                name = schema.attributes[position].name
                row.append(abs(float(value) - ideal_values[name]))
            else:
                row.append(value)
        rows.append(tuple(row))
    return Dataset(derived_schema, rows, validate=False)


def fully_dynamic_skyline(
    dataset: Dataset | EncodedFrame | DeltaFrame,
    partial_orders: Mapping[str, PartialOrderDAG] | Sequence[PartialOrderDAG],
    ideal_values: Mapping[str, float] | Sequence[float],
    **stss_options,
) -> SkylineResult:
    """Answer one fully dynamic skyline query (preferences + ideal TO values).

    Columnar sources (frames, live deltas) are materialized to records for
    the distance transform; over a delta the answer carries *stable* ids.
    """
    records, stable_ids = as_record_dataset(dataset)
    schema = records.schema
    resolved_orders = _resolve_partial_orders(schema, partial_orders)
    resolved_ideals = _resolve_ideal_values(schema, ideal_values)
    derived = distance_transformed_dataset(records, resolved_orders, resolved_ideals)
    result = stss_skyline(derived, **stss_options)
    if stable_ids is None:
        return result
    return SkylineResult(
        skyline_ids=[stable_ids[i] for i in result.skyline_ids],
        stats=result.stats,
        progress=result.progress,
    )


class FullyDynamicEngine:
    """Answer fully dynamic queries over one dataset, caching repeated queries.

    Over a live :class:`DeltaFrame` the cache is invalidated whenever the
    delta's version moves — a mutation makes every past answer stale.
    """

    def __init__(
        self,
        dataset: Dataset | EncodedFrame | DeltaFrame,
        *,
        cache_capacity: int = 32,
        **stss_options,
    ) -> None:
        if cache_capacity < 1:
            raise QueryError("cache capacity must be positive")
        self.dataset = dataset
        self.stss_options = stss_options
        self._capacity = cache_capacity
        self._cache: OrderedDict[tuple, SkylineResult] = OrderedDict()
        self._source_version = getattr(dataset, "version", None)
        self.hits = 0
        self.misses = 0

    def _key(
        self,
        partial_orders: dict[str, PartialOrderDAG],
        ideal_values: dict[str, float],
    ) -> tuple:
        names = [a.name for a in self.dataset.schema.partial_order_attributes]
        order_key = canonical_query_key(partial_orders, names)
        ideal_key = tuple(sorted(ideal_values.items()))
        return (order_key, ideal_key)

    def query(
        self,
        partial_orders: Mapping[str, PartialOrderDAG] | Sequence[PartialOrderDAG],
        ideal_values: Mapping[str, float] | Sequence[float],
    ) -> SkylineResult:
        schema = self.dataset.schema
        version = getattr(self.dataset, "version", None)
        if version != self._source_version:
            self._cache.clear()
            self._source_version = version
        resolved_orders = _resolve_partial_orders(schema, partial_orders)
        resolved_ideals = _resolve_ideal_values(schema, ideal_values)
        key = self._key(resolved_orders, resolved_ideals)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        result = fully_dynamic_skyline(
            self.dataset, resolved_orders, resolved_ideals, **self.stss_options
        )
        self._cache[key] = result
        while len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
        return result

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
