"""Dynamic adaptation of SDC+ (the baseline for Section VI-C).

SDC+ relies on a spanning tree of the preference DAG, so a dynamic query —
which redefines the DAG — invalidates every node interval and the whole
stratification of the data.  The adaptation the paper benchmarks against
therefore, per query:

1. recomputes the interval mapping and the stratum of every tuple,
2. partitions the tuples into strata with an external sort (at least two
   passes over the entire data set, an IO cost that cannot be amortized
   across queries), and
3. bulk-loads one R-tree per stratum before running SDC+ as usual.

This module reproduces that behaviour, charging the re-partitioning passes
and the index construction to the simulated disk, so the total-time gap to
dTSS has the same origin as in the paper (IO-bound index rebuilding).
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Mapping, Sequence

from repro.baselines.sdc_plus import sdc_plus_skyline
from repro.baselines.transform import BaselineMapping
from repro.data.columns import EncodedFrame
from repro.data.dataset import Dataset
from repro.delta.frame import DeltaFrame, as_record_dataset
from repro.exceptions import QueryError
from repro.index.pager import DiskSimulator
from repro.order.dag import PartialOrderDAG
from repro.order.encoding import encode_domain
from repro.skyline.base import SkylineResult

Value = Hashable

#: How many tuples fit in one simulated data page during re-partitioning.
DEFAULT_RECORDS_PER_PAGE = 100

#: External-sort passes over the data needed to re-partition into strata.
REPARTITION_READ_PASSES = 2
REPARTITION_WRITE_PASSES = 1


def sdc_plus_dynamic_skyline(
    dataset: Dataset | EncodedFrame | DeltaFrame,
    partial_orders: Mapping[str, PartialOrderDAG] | Sequence[PartialOrderDAG],
    *,
    max_entries: int = 32,
    disk: DiskSimulator | None = None,
    records_per_page: int = DEFAULT_RECORDS_PER_PAGE,
) -> SkylineResult:
    """Answer one dynamic skyline query by rebuilding SDC+ from scratch.

    Columnar sources are materialized to records first — that full pass over
    the live data is exactly the re-partitioning work this baseline is
    charged for anyway; over a delta the answer carries stable ids.
    """
    dataset, stable_ids = as_record_dataset(dataset)
    schema = dataset.schema
    po_attributes = schema.partial_order_attributes
    if isinstance(partial_orders, Mapping):
        missing = [a.name for a in po_attributes if a.name not in partial_orders]
        if missing:
            raise QueryError(f"query does not specify a partial order for: {missing}")
        dags = [partial_orders[a.name] for a in po_attributes]
    else:
        dags = list(partial_orders)
        if len(dags) != len(po_attributes):
            raise QueryError(
                f"query specifies {len(dags)} partial orders, schema has {len(po_attributes)}"
            )

    # Re-specify the schema with the query DAGs so actual-dominance checks use
    # the query's preferences, then recompute the interval mapping.
    query_schema = schema.replace_partial_order(
        {attribute.name: dag for attribute, dag in zip(po_attributes, dags)}
    )
    query_dataset = dataset.with_schema(query_schema, validate=False)
    encodings = [encode_domain(dag) for dag in dags]

    # Rebuild everything the query invalidated: the interval mapping, the
    # stratum of every point, and one bulk-loaded R-tree per stratum.  Unlike
    # the static experiments (where index construction is an offline step for
    # both competitors), this work happens per query and is charged.
    mapping = BaselineMapping(query_dataset, encodings)
    writes_before_build = disk.stats.writes if disk is not None else 0
    stratum_trees = {
        level: mapping.build_rtree(
            [p.index for p in points], max_entries=max_entries, disk=disk
        )
        for level, points in mapping.strata().items()
    }
    build_writes = (disk.stats.writes - writes_before_build) if disk is not None else 0

    result = sdc_plus_skyline(
        query_dataset,
        mapping=mapping,
        stratum_trees=stratum_trees,
        max_entries=max_entries,
        disk=disk,
    )

    # Charge the external re-partitioning passes over the data plus the index
    # construction writes to the query's counters.
    data_pages = max(1, math.ceil(len(dataset) / records_per_page))
    repartition_reads = REPARTITION_READ_PASSES * data_pages
    repartition_writes = REPARTITION_WRITE_PASSES * data_pages
    result.stats.io_reads += repartition_reads
    result.stats.io_writes += repartition_writes + build_writes
    if disk is not None:
        disk.stats.reads += repartition_reads
        disk.stats.writes += repartition_writes
    if stable_ids is not None:
        result = SkylineResult(
            skyline_ids=[stable_ids[i] for i in result.skyline_ids],
            stats=result.stats,
            progress=result.progress,
        )
    return result
