"""Dynamic skyline queries over PO domains (Section V of the paper).

A dynamic skyline query *specifies* the partial order of each PO attribute.
The data does not change between queries, so dTSS pre-partitions the points
into groups (one per PO value combination) with a small R-tree per group and,
per query, only needs a fresh topological sort / interval labelling before
processing groups in topological order against a global main-memory R-tree.

* :mod:`~repro.dynamic.groups` — the reusable per-group structures (group
  partitioning, per-group R-trees, optional local-skyline pre-computation).
* :mod:`~repro.dynamic.dtss` — the dTSS query processor.
* :mod:`~repro.dynamic.sdc_dynamic` — the dynamic adaptation of SDC+ used as
  the baseline: it must re-map every point and rebuild all index structures
  for each query (charged as extra passes over the data).
* :mod:`~repro.dynamic.cache` — caching of past dynamic query results keyed
  by the query's partial orders.

All entry points also accept the columnar data plane directly: an
:class:`~repro.data.columns.EncodedFrame` or a live
:class:`~repro.delta.frame.DeltaFrame` — over a delta, dTSS maintains its
group structures incrementally (:meth:`DTSSIndex.sync`) and results carry
stable record ids.
"""

from repro.dynamic.cache import DynamicQueryCache
from repro.dynamic.dtss import DTSSIndex, dtss_skyline
from repro.dynamic.fully_dynamic import FullyDynamicEngine, fully_dynamic_skyline
from repro.dynamic.groups import GroupedDataset, GroupPoint
from repro.dynamic.sdc_dynamic import sdc_plus_dynamic_skyline

__all__ = [
    "GroupedDataset",
    "GroupPoint",
    "DTSSIndex",
    "dtss_skyline",
    "sdc_plus_dynamic_skyline",
    "fully_dynamic_skyline",
    "FullyDynamicEngine",
    "DynamicQueryCache",
]
