"""Caching of past dynamic skyline query results (Section V-B).

Dynamic queries that specify the same partial orders produce the same
skyline, so their results can simply be reused.  The cache key canonicalizes
each query DAG into its domain values plus its transitively closed preference
pairs, which makes two specifications that imply the same preferences (e.g. a
Hasse diagram versus its transitive closure) hit the same entry.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Mapping, Sequence

from repro.exceptions import QueryError
from repro.order.dag import PartialOrderDAG
from repro.skyline.base import SkylineResult

Value = Hashable

CacheKey = tuple[tuple[tuple[Value, ...], frozenset[tuple[Value, Value]]], ...]


def canonical_query_key(
    partial_orders: Mapping[str, PartialOrderDAG] | Sequence[PartialOrderDAG],
    attribute_names: Sequence[str],
) -> CacheKey:
    """A hashable, order-insensitive representation of one dynamic query."""
    if isinstance(partial_orders, Mapping):
        missing = [name for name in attribute_names if name not in partial_orders]
        if missing:
            raise QueryError(f"query does not specify a partial order for: {missing}")
        dags = [partial_orders[name] for name in attribute_names]
    else:
        dags = list(partial_orders)
        if len(dags) != len(attribute_names):
            raise QueryError(
                f"query specifies {len(dags)} partial orders, schema has {len(attribute_names)}"
            )
    key_parts = []
    for dag in dags:
        values = tuple(sorted(dag.values, key=repr))
        closure = frozenset(dag.transitive_closure_edges())
        key_parts.append((values, closure))
    return tuple(key_parts)


class DynamicQueryCache:
    """A small LRU cache of dynamic query results keyed by their partial orders."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise QueryError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, SkylineResult] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self,
        partial_orders: Mapping[str, PartialOrderDAG] | Sequence[PartialOrderDAG],
        attribute_names: Sequence[str],
    ) -> SkylineResult | None:
        key = canonical_query_key(partial_orders, attribute_names)
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return result

    def put(
        self,
        partial_orders: Mapping[str, PartialOrderDAG] | Sequence[PartialOrderDAG],
        attribute_names: Sequence[str],
        result: SkylineResult,
    ) -> None:
        key = canonical_query_key(partial_orders, attribute_names)
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
