"""Per-PO-value group structures reused across dynamic skyline queries.

dTSS partitions the dataset into disjoint groups, one per combination of PO
attribute values (Section V-A).  Dominance relationships *within* a group
never depend on the query's partial order — all group members share the same
PO values — so the per-group R-trees over the TO attributes (and, optionally,
each group's local TO skyline, Section V-B) are built once and reused by
every query.

The structures are anchored on the columnar data plane: a
:class:`GroupedDataset` accepts a record :class:`~repro.data.dataset.Dataset`,
an :class:`~repro.data.columns.EncodedFrame` (grouped column-wise) or a live
:class:`~repro.delta.frame.DeltaFrame` — and under live mutations it is
maintained *incrementally*, rebuilding only the PO-value groups a mutation
batch actually touched (:meth:`GroupedDataset.apply_mutations`) instead of
re-partitioning the whole dataset the way the SDC+ adaptation must.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

from repro.core.mapping import group_distinct_rows
from repro.data.columns import EncodedFrame, group_rows
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.delta.frame import DeltaFrame
from repro.exceptions import SchemaError
from repro.index.pager import DiskSimulator
from repro.index.rtree import RTree
from repro.skyline.dominance import dominates_vectors

Value = Hashable


@dataclass(frozen=True, slots=True)
class GroupPoint:
    """A distinct value combination within one PO-value group."""

    index: int
    to_values: tuple[float, ...]
    po_values: tuple[Value, ...]
    record_ids: tuple[int, ...]


class GroupedDataset:
    """The dataset partitioned by PO value combination, with per-group R-trees.

    Accepts a record :class:`Dataset`, an :class:`EncodedFrame` (record ids =
    row positions) or a :class:`DeltaFrame` (record ids = stable ids, only
    live rows are grouped).  Columnar sources are grouped column-wise while
    preserving first-occurrence order, so an identity delta produces exactly
    the structures the record path builds.
    """

    def __init__(
        self,
        dataset: Dataset | EncodedFrame | DeltaFrame,
        *,
        max_entries: int = 32,
        disk: DiskSimulator | None = None,
        precompute_local_skylines: bool = False,
    ) -> None:
        schema = dataset.schema
        if schema.num_partial_order == 0:
            raise SchemaError("dynamic PO skylines need at least one PO attribute")
        if schema.num_total_order == 0:
            raise SchemaError("dynamic PO skylines need at least one TO attribute")
        self.dataset = dataset if isinstance(dataset, Dataset) else None
        self.schema: Schema = schema
        self.max_entries = max_entries
        self.disk = disk

        self.points: list[GroupPoint] = []
        self.groups: dict[tuple[Value, ...], list[GroupPoint]] = {}
        self._point_of_record: dict[int, GroupPoint] = {}
        if isinstance(dataset, Dataset):
            grouped: Iterable[tuple[tuple[float, ...], tuple[Value, ...], tuple[int, ...]]] = (
                (
                    schema.canonical_to_values(values),
                    schema.partial_values(values),
                    record_ids,
                )
                for values, record_ids in group_distinct_rows(dataset)
            )
        else:
            grouped = _columnar_groups(dataset)
        for to_values, po_values, record_ids in grouped:
            self._add_point(to_values, po_values, tuple(record_ids))

        self.group_trees: dict[tuple[Value, ...], RTree] = {
            key: self._build_tree(members) for key, members in self.groups.items()
        }

        self.local_skylines: dict[tuple[Value, ...], list[GroupPoint]] | None = None
        if precompute_local_skylines:
            self.local_skylines = {
                key: self._local_skyline(members) for key, members in self.groups.items()
            }

    def _add_point(
        self,
        to_values: tuple[float, ...],
        po_values: tuple[Value, ...],
        record_ids: tuple[int, ...],
    ) -> GroupPoint:
        point = GroupPoint(
            index=len(self.points),
            to_values=to_values,
            po_values=po_values,
            record_ids=record_ids,
        )
        self.points.append(point)
        self.groups.setdefault(po_values, []).append(point)
        for record_id in record_ids:
            self._point_of_record[record_id] = point
        return point

    def _build_tree(self, members: Sequence[GroupPoint]) -> RTree:
        return RTree.bulk_load(
            self.schema.num_total_order,
            ((point.to_values, point.index) for point in members),
            max_entries=self.max_entries,
            disk=self.disk,
        )

    # ------------------------------------------------------------------ #
    # Incremental maintenance (delta plane)
    # ------------------------------------------------------------------ #
    def apply_mutations(
        self,
        inserts: Iterable[tuple[int, Sequence[float], Sequence[Value]]] = (),
        deleted_ids: Iterable[int] = (),
    ) -> set[tuple[Value, ...]]:
        """Fold a mutation batch in, rebuilding only the touched groups.

        ``inserts`` are ``(record id, canonical TO values, PO values)``
        triples (the shape :meth:`DeltaFrame.insert_entries` yields);
        ``deleted_ids`` are stable ids — unknown ones are ignored, so a
        caller may pass tombstones of rows it never handed to this index.
        Returns the set of group keys that were rebuilt.
        """
        dead: set[int] = set()
        dirty: set[tuple[Value, ...]] = set()
        for record_id in deleted_ids:
            point = self._point_of_record.pop(int(record_id), None)
            if point is None:
                continue
            dead.add(int(record_id))
            dirty.add(point.po_values)
        pending: dict[tuple[Value, ...], list[tuple[int, tuple[float, ...]]]] = {}
        for record_id, to_values, po_values in inserts:
            key = tuple(po_values)
            pending.setdefault(key, []).append(
                (int(record_id), tuple(float(v) for v in to_values))
            )
            dirty.add(key)
        for key in dirty:
            self._rebuild_group(key, dead, pending.get(key, ()))
        return dirty

    def _rebuild_group(
        self,
        key: tuple[Value, ...],
        dead: set[int],
        inserts: Sequence[tuple[int, tuple[float, ...]]],
    ) -> None:
        members: dict[tuple[float, ...], list[int]] = {}
        for point in self.groups.get(key, ()):
            ids = [i for i in point.record_ids if i not in dead]
            if ids:
                members.setdefault(point.to_values, []).extend(ids)
        for record_id, to_values in inserts:
            members.setdefault(to_values, []).append(record_id)
        if not members:
            self.groups.pop(key, None)
            self.group_trees.pop(key, None)
            if self.local_skylines is not None:
                self.local_skylines.pop(key, None)
            return
        # Fresh GroupPoints are appended to self.points (indices are R-tree
        # payloads, so they must never shift); the group's old points simply
        # become unreferenced.
        self.groups[key] = []
        fresh = [
            self._add_point(to_values, key, tuple(ids))
            for to_values, ids in members.items()
        ]
        self.group_trees[key] = self._build_tree(fresh)
        if self.local_skylines is not None:
            self.local_skylines[key] = self._local_skyline(fresh)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def num_total_order(self) -> int:
        return self.schema.num_total_order

    @property
    def num_partial_order(self) -> int:
        return self.schema.num_partial_order

    def __len__(self) -> int:
        return len(self.points)

    def point(self, index: int) -> GroupPoint:
        return self.points[index]

    def group_keys(self) -> list[tuple[Value, ...]]:
        return list(self.groups)

    def record_ids_for(self, point_indices: Sequence[int]) -> list[int]:
        ids: list[int] = []
        for index in point_indices:
            ids.extend(self.points[index].record_ids)
        return ids

    # ------------------------------------------------------------------ #
    # Local skylines (Section V-B pre-processing optimization)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _local_skyline(members: list[GroupPoint]) -> list[GroupPoint]:
        """The TO-only skyline of one group (its PO values are all identical)."""
        ordered = sorted(members, key=lambda p: sum(p.to_values))
        skyline: list[GroupPoint] = []
        for candidate in ordered:
            if not any(dominates_vectors(s.to_values, candidate.to_values) for s in skyline):
                skyline.append(candidate)
        return skyline

    def ensure_local_skylines(self) -> dict[tuple[Value, ...], list[GroupPoint]]:
        """Compute (and memoize) the local skylines if not done at build time."""
        if self.local_skylines is None:
            self.local_skylines = {
                key: self._local_skyline(members) for key, members in self.groups.items()
            }
        return self.local_skylines


def _columnar_groups(
    source: EncodedFrame | DeltaFrame,
) -> list[tuple[tuple[float, ...], tuple[Value, ...], list[int]]]:
    """Group a columnar source's (live) rows by full value combination.

    Yields ``(canonical TO values, PO values, record ids)`` per distinct row
    in first-occurrence order — the exact contract of dict-based grouping
    over record tuples, so the record and columnar paths build identical
    structures.  NumPy-backed frames group vectorized via :func:`group_rows`
    on one combined matrix; tuple-backed frames fall back to a dict sweep.
    """
    if isinstance(source, DeltaFrame):
        base_rows = source.live_base_rows()
        blocks = [
            (source.base, base_rows, [source.stable_id_of_base_row(r) for r in base_rows])
        ]
        positions = source.live_insert_positions()
        if positions:
            blocks.append((source.insert_frame(), positions, source.insert_ids_at(positions)))
        codec = source.codec
    else:
        blocks = [(source, list(range(len(source))), list(range(len(source))))]
        codec = source.codec
    domains = codec.domains
    num_po = len(domains)

    uses_numpy = blocks[0][0].uses_numpy
    if uses_numpy:
        import numpy as np

        num_to = blocks[0][0].schema.num_total_order
        matrices = []
        ids: list[int] = []
        for frame, rows, block_ids in blocks:
            index = np.asarray(rows, dtype=np.intp)
            matrices.append(
                np.concatenate(
                    [frame.to[index], frame.codes[index].astype(np.float64)], axis=1
                )
            )
            ids.extend(block_ids)
        unique, grouped_rows = group_rows(np.concatenate(matrices, axis=0))
        result = []
        for g, member_rows in enumerate(grouped_rows):
            to_values = tuple(float(v) for v in unique[g, :num_to])
            po_values = tuple(
                domains[k][int(unique[g, num_to + k])] for k in range(num_po)
            )
            result.append((to_values, po_values, [ids[i] for i in member_rows]))
        return result

    groups: dict[tuple[tuple[float, ...], tuple[Value, ...]], list[int]] = {}
    for frame, rows, block_ids in blocks:
        for row, record_id in zip(rows, block_ids):
            to_values = tuple(frame.to[row])
            codes = frame.codes[row]
            po_values = tuple(domains[k][codes[k]] for k in range(num_po))
            groups.setdefault((to_values, po_values), []).append(record_id)
    return [(to, po, ids) for (to, po), ids in groups.items()]
