"""Per-PO-value group structures reused across dynamic skyline queries.

dTSS partitions the dataset into disjoint groups, one per combination of PO
attribute values (Section V-A).  Dominance relationships *within* a group
never depend on the query's partial order — all group members share the same
PO values — so the per-group R-trees over the TO attributes (and, optionally,
each group's local TO skyline, Section V-B) are built once and reused by
every query.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.core.mapping import group_distinct_rows
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.exceptions import SchemaError
from repro.index.pager import DiskSimulator
from repro.index.rtree import RTree
from repro.skyline.dominance import dominates_vectors

Value = Hashable


@dataclass(frozen=True, slots=True)
class GroupPoint:
    """A distinct value combination within one PO-value group."""

    index: int
    to_values: tuple[float, ...]
    po_values: tuple[Value, ...]
    record_ids: tuple[int, ...]


class GroupedDataset:
    """The dataset partitioned by PO value combination, with per-group R-trees."""

    def __init__(
        self,
        dataset: Dataset,
        *,
        max_entries: int = 32,
        disk: DiskSimulator | None = None,
        precompute_local_skylines: bool = False,
    ) -> None:
        schema = dataset.schema
        if schema.num_partial_order == 0:
            raise SchemaError("dynamic PO skylines need at least one PO attribute")
        if schema.num_total_order == 0:
            raise SchemaError("dynamic PO skylines need at least one TO attribute")
        self.dataset = dataset
        self.schema: Schema = schema
        self.max_entries = max_entries
        self.disk = disk

        self.points: list[GroupPoint] = []
        self.groups: dict[tuple[Value, ...], list[GroupPoint]] = {}
        for values, record_ids in group_distinct_rows(dataset):
            to_values = schema.canonical_to_values(values)
            po_values = schema.partial_values(values)
            point = GroupPoint(
                index=len(self.points),
                to_values=to_values,
                po_values=po_values,
                record_ids=record_ids,
            )
            self.points.append(point)
            self.groups.setdefault(po_values, []).append(point)

        self.group_trees: dict[tuple[Value, ...], RTree] = {
            key: RTree.bulk_load(
                schema.num_total_order,
                ((point.to_values, point.index) for point in members),
                max_entries=max_entries,
                disk=disk,
            )
            for key, members in self.groups.items()
        }

        self.local_skylines: dict[tuple[Value, ...], list[GroupPoint]] | None = None
        if precompute_local_skylines:
            self.local_skylines = {
                key: self._local_skyline(members) for key, members in self.groups.items()
            }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def num_total_order(self) -> int:
        return self.schema.num_total_order

    @property
    def num_partial_order(self) -> int:
        return self.schema.num_partial_order

    def __len__(self) -> int:
        return len(self.points)

    def point(self, index: int) -> GroupPoint:
        return self.points[index]

    def group_keys(self) -> list[tuple[Value, ...]]:
        return list(self.groups)

    def record_ids_for(self, point_indices: Sequence[int]) -> list[int]:
        ids: list[int] = []
        for index in point_indices:
            ids.extend(self.points[index].record_ids)
        return ids

    # ------------------------------------------------------------------ #
    # Local skylines (Section V-B pre-processing optimization)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _local_skyline(members: list[GroupPoint]) -> list[GroupPoint]:
        """The TO-only skyline of one group (its PO values are all identical)."""
        ordered = sorted(members, key=lambda p: sum(p.to_values))
        skyline: list[GroupPoint] = []
        for candidate in ordered:
            if not any(dominates_vectors(s.to_values, candidate.to_values) for s in skyline):
                skyline.append(candidate)
        return skyline

    def ensure_local_skylines(self) -> dict[tuple[Value, ...], list[GroupPoint]]:
        """Compute (and memoize) the local skylines if not done at build time."""
        if self.local_skylines is None:
            self.local_skylines = {
                key: self._local_skyline(members) for key, members in self.groups.items()
            }
        return self.local_skylines
