"""dTSS: dynamic Topologically-Sorted Skylines (Section V).

A dynamic skyline query specifies the partial order of every PO attribute.
dTSS keeps the per-group structures of :class:`~repro.dynamic.groups.GroupedDataset`
untouched across queries and, per query, only

1. topologically sorts the query DAGs and computes their interval encodings
   (cheap: proportional to the PO domain sizes, not to the data),
2. visits the groups in topological order of their PO values — which
   establishes *precedence* across groups, while BBS's mindist order
   establishes it within a group — and
3. checks every candidate for t-dominance against the global main-memory
   R-tree ``Tm`` of virtual skyline points (or a plain skyline list), which
   gives *exactness*.

A non-dominated point is therefore reported immediately.  A whole group whose
R-tree root is t-dominated is skipped without reading any of its nodes —
exactly the behaviour of the paper's example (group ``Gc`` in Figure 5).

Section V-B's optimizations are both supported: per-group local-skyline
pre-computation (only local skyline points can ever be global skyline points,
because group members share all their PO values) and caching of past query
results (:mod:`repro.dynamic.cache`).
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

from repro.core.virtual_rtree import VirtualPointIndex
from repro.data.columns import EncodedFrame
from repro.data.dataset import Dataset
from repro.delta.frame import DeltaFrame
from repro.dynamic.groups import GroupedDataset, GroupPoint
from repro.exceptions import QueryError
from repro.index.pager import DiskSimulator
from repro.order.dag import PartialOrderDAG
from repro.order.encoding import DomainEncoding, encode_domain
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.bbs import run_bbs

Value = Hashable


class DTSSIndex:
    """Reusable dTSS structures: group partitioning plus per-group R-trees.

    Built over a record :class:`Dataset`, an :class:`EncodedFrame` or a live
    :class:`DeltaFrame`.  Over a delta, :meth:`sync` folds mutations applied
    since construction (or the last sync) into the group structures
    incrementally — only the touched PO-value groups are rebuilt, the rest
    of the offline investment survives.
    """

    def __init__(
        self,
        dataset: Dataset | EncodedFrame | DeltaFrame,
        *,
        max_entries: int = 32,
        disk: DiskSimulator | None = None,
        precompute_local_skylines: bool = False,
    ) -> None:
        self.grouped = GroupedDataset(
            dataset,
            max_entries=max_entries,
            disk=disk,
            precompute_local_skylines=precompute_local_skylines,
        )
        self.source = dataset
        self.dataset = dataset if isinstance(dataset, Dataset) else None
        self.disk = disk
        # Sync cursor over the delta's mutation stream: the grouped build
        # already reflects everything applied up to now.
        if isinstance(dataset, DeltaFrame):
            self._synced_inserts = dataset.num_inserts
            self._synced_dead = set(dataset.dead_ids())
        else:
            self._synced_inserts = 0
            self._synced_dead: set[int] = set()

    # ------------------------------------------------------------------ #
    # Incremental maintenance (delta plane)
    # ------------------------------------------------------------------ #
    def sync(self, delta: DeltaFrame | None = None) -> dict[str, int]:
        """Fold a delta's new mutations in; returns what was applied.

        With no argument, syncs against the :class:`DeltaFrame` the index
        was built over.  Inserts that were tombstoned before this sync are
        skipped entirely (they were never visible to any query here).
        """
        if delta is None:
            delta = self.source if isinstance(self.source, DeltaFrame) else None
        if delta is None:
            raise QueryError("sync() needs the DeltaFrame this index was built over")
        dead_now = set(delta.dead_ids())
        new_dead = dead_now - self._synced_dead
        fresh = delta.insert_entries(self._synced_inserts)
        # Inserts tombstoned before this sync were never visible here:
        # neither inserted nor deleted, they don't touch any group.
        new_dead -= {entry[0] for entry in fresh} & new_dead
        inserts = [entry for entry in fresh if entry[0] not in dead_now]
        rebuilt = self.grouped.apply_mutations(inserts, new_dead)
        self._synced_inserts = delta.num_inserts
        self._synced_dead = dead_now
        return {
            "inserts": len(inserts),
            "deletes": len(new_dead),
            "groups_rebuilt": len(rebuilt),
        }

    # ------------------------------------------------------------------ #
    # Query processing
    # ------------------------------------------------------------------ #
    def query(
        self,
        partial_orders: Mapping[str, PartialOrderDAG] | Sequence[PartialOrderDAG],
        *,
        use_virtual_rtree: bool = False,
        use_local_skylines: bool = False,
    ) -> SkylineResult:
        """Answer one dynamic skyline query.

        Parameters
        ----------
        partial_orders:
            The query's preference specification: either a mapping from PO
            attribute name to its :class:`PartialOrderDAG`, or a sequence of
            DAGs in schema order.  Every PO value present in the data must
            belong to the corresponding DAG.
        use_virtual_rtree:
            Use the global main-memory R-tree ``Tm`` for t-dominance checks;
            otherwise scan the global skyline list.  The R-tree dramatically
            reduces pairwise checks but has larger constants in pure Python,
            so the list scan is the default (it is also the paper's
            "no main-memory R-tree" fairness setting).
        use_local_skylines:
            Use the pre-computed per-group local skylines (Section V-B)
            instead of traversing the per-group R-trees.
        """
        encodings = self._encode_query(partial_orders)
        grouped = self.grouped
        schema = grouped.schema

        stats = SkylineStats()
        clock = RunClock(stats, self.disk)

        virtual_index: VirtualPointIndex | None = None
        skyline_list: list[GroupPoint] = []
        if use_virtual_rtree:
            virtual_index = VirtualPointIndex(schema.num_total_order, encodings)

        results: list[int] = []

        def candidate_dominated(to_values: tuple[float, ...], po_values: tuple[Value, ...]) -> bool:
            stats.dominance_checks += 1
            if virtual_index is not None:
                return virtual_index.dominates_candidate_point(to_values, po_values)
            for resident in skyline_list:
                if all(a <= b for a, b in zip(resident.to_values, to_values)) and all(
                    encoding.t_prefers_or_equal(rv, cv)
                    for encoding, rv, cv in zip(encodings, resident.po_values, po_values)
                ):
                    return True
            return False

        def report(point: GroupPoint) -> None:
            results.append(point.index)
            skyline_list.append(point)
            if virtual_index is not None:
                virtual_index.insert_skyline_point(point.to_values, point.po_values, point.index)
            clock.record_result()

        for key in self._group_order(encodings):
            if use_local_skylines:
                for point in grouped.ensure_local_skylines()[key]:
                    stats.points_examined += 1
                    if not candidate_dominated(point.to_values, point.po_values):
                        report(point)
                continue

            tree = grouped.group_trees[key]

            def dominated_point(point, payload, key=key) -> bool:
                candidate = grouped.point(int(payload))
                return candidate_dominated(candidate.to_values, candidate.po_values)

            def dominated_rect(low, high, key=key) -> bool:
                return candidate_dominated(tuple(low), key)

            def on_result(point, payload, key=key) -> None:
                report(grouped.point(int(payload)))

            run_bbs(
                tree,
                dominated_point=dominated_point,
                dominated_rect=dominated_rect,
                on_result=on_result,
                stats=stats,
                clock=None,  # report() records progress itself
            )

        clock.finish()
        skyline_ids = grouped.record_ids_for(results)
        return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _encode_query(
        self, partial_orders: Mapping[str, PartialOrderDAG] | Sequence[PartialOrderDAG]
    ) -> tuple[DomainEncoding, ...]:
        schema = self.grouped.schema
        po_attributes = schema.partial_order_attributes
        if isinstance(partial_orders, Mapping):
            missing = [a.name for a in po_attributes if a.name not in partial_orders]
            if missing:
                raise QueryError(f"query does not specify a partial order for: {missing}")
            dags = [partial_orders[a.name] for a in po_attributes]
        else:
            dags = list(partial_orders)
            if len(dags) != len(po_attributes):
                raise QueryError(
                    f"query specifies {len(dags)} partial orders, schema has {len(po_attributes)}"
                )
        encodings = []
        for po_index, (attribute, dag) in enumerate(zip(po_attributes, dags)):
            data_values = {po_values[po_index] for po_values in self.grouped.groups}
            unknown = {value for value in data_values if value not in dag}
            if unknown:
                raise QueryError(
                    f"query partial order for {attribute.name!r} is missing data values: "
                    f"{sorted(map(repr, unknown))}"
                )
            encodings.append(encode_domain(dag))
        return tuple(encodings)

    def _group_order(self, encodings: Sequence[DomainEncoding]) -> list[tuple[Value, ...]]:
        """Groups sorted so that any potential dominator group comes first.

        If one group's PO values are preferred-or-equal to another's on every
        PO attribute (and differ somewhere), the sum of its topological
        ordinals is strictly smaller, so ordering groups by that sum
        guarantees cross-group precedence.
        """

        def sort_key(key: tuple[Value, ...]) -> tuple[float, ...]:
            total = sum(encoding.ordinal(value) for encoding, value in zip(encodings, key))
            ordinals = tuple(encoding.ordinal(value) for encoding, value in zip(encodings, key))
            return (float(total),) + tuple(float(o) for o in ordinals)

        return sorted(self.grouped.groups, key=sort_key)


def dtss_skyline(
    dataset: Dataset | EncodedFrame | DeltaFrame,
    partial_orders: Mapping[str, PartialOrderDAG] | Sequence[PartialOrderDAG],
    *,
    index: DTSSIndex | None = None,
    max_entries: int = 32,
    disk: DiskSimulator | None = None,
    use_virtual_rtree: bool = False,
    use_local_skylines: bool = False,
) -> SkylineResult:
    """One-shot dTSS: build (or reuse) the group index and answer one query."""
    if index is None:
        index = DTSSIndex(
            dataset,
            max_entries=max_entries,
            disk=disk,
            precompute_local_skylines=use_local_skylines,
        )
    return index.query(
        partial_orders,
        use_virtual_rtree=use_virtual_rtree,
        use_local_skylines=use_local_skylines,
    )
