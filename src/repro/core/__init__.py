"""The paper's primary contribution: the TSS framework and the sTSS algorithm.

* :mod:`~repro.core.mapping` — the TSS transform of a dataset into the mapped
  space (canonical TO values + one topological ordinal per PO attribute),
  with exact-duplicate grouping and data R-tree construction.
* :mod:`~repro.core.tdominance` — exact t-preference / t-dominance checks for
  points and MBBs (Definitions 1 and 2).
* :mod:`~repro.core.dyadic` — dyadic-range pre-computation of the interval
  sets associated with ``A_TO`` ranges (first optimization of Section IV-B).
* :mod:`~repro.core.virtual_rtree` — the main-memory R-tree of virtual
  skyline points answering Boolean range queries (second optimization of
  Section IV-B).
* :mod:`~repro.core.stss` — the sTSS algorithm: BBS over the mapped space
  with t-dominance, optimally progressive and exact.
* :mod:`~repro.core.framework` — a high-level facade: ``compute_skyline`` with
  a selectable algorithm, returning records and run statistics.
"""

from repro.core.dyadic import DyadicIntervalCache
from repro.core.framework import ALGORITHMS, compute_skyline, skyline_records
from repro.core.mapping import MappedPoint, TSSMapping, group_distinct_rows
from repro.core.stss import stss_skyline
from repro.core.tdominance import TDominanceChecker
from repro.core.virtual_rtree import VirtualPointIndex

__all__ = [
    "TSSMapping",
    "MappedPoint",
    "group_distinct_rows",
    "TDominanceChecker",
    "DyadicIntervalCache",
    "VirtualPointIndex",
    "stss_skyline",
    "compute_skyline",
    "skyline_records",
    "ALGORITHMS",
]
