"""The TSS transform: datasets mapped into the ``TO x A_TO`` space.

TSS maps every record into a numeric space with one dimension per TO
attribute (canonical values, smaller is better) and one dimension per PO
attribute holding the value's ordinal in the topological sort of its
preference DAG (Section III-B).  Because the topological sort respects every
preference edge, visiting points of this space in ascending L1 distance from
the origin guarantees the *precedence* property.

Exact duplicates (records with identical attribute values) are grouped into a
single :class:`MappedPoint` carrying all their record ids.  Distinct mapped
points can then never tie on every attribute, which makes "weakly better
everywhere and not the same point" equivalent to strict dominance and keeps
every pruning rule exact.

Construction has two equivalent paths: the record path walks the dataset's
``Record`` tuples (reference), and the columnar path consumes an
:class:`~repro.data.columns.EncodedFrame` — grouping duplicates with one
``np.unique`` over the mapped-coordinate matrix and remapping the frame's
canonical PO codes into each encoding's topological positions with one
gather.  Both paths yield identical points in identical (first-occurrence)
order, so everything downstream — R-tree layout, BBS traversal, dominance
check counts — is unchanged; a mapping can also be built from a frame alone
(``dataset=None``), which is how sharded workers operate on shipped column
blocks.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from functools import cached_property

from repro.data.columns import EncodedFrame, group_rows, resolve_frame_mode
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.exceptions import SchemaError
from repro.index.pager import DiskSimulator
from repro.index.registry import resolve_index
from repro.index.rtree import RTree
from repro.order.encoding import DomainEncoding, encode_domain

Value = Hashable


@dataclass(frozen=True, slots=True)
class MappedPoint:
    """A distinct value combination in the mapped space.

    Attributes
    ----------
    index:
        Position of this point in the mapping's point list (used as the
        R-tree payload).
    coords:
        Mapped coordinates: canonical TO values followed by one topological
        ordinal per PO attribute.
    to_values:
        The canonical TO values only.
    po_values:
        The original PO attribute values (schema order).
    record_ids:
        Ids of every dataset record with exactly these attribute values.
    """

    index: int
    coords: tuple[float, ...]
    to_values: tuple[float, ...]
    po_values: tuple[Value, ...]
    record_ids: tuple[int, ...]


def group_distinct_rows(dataset: Dataset) -> list[tuple[tuple[Value, ...], tuple[int, ...]]]:
    """Group record ids by their exact attribute-value tuple (insertion order)."""
    groups: dict[tuple[Value, ...], list[int]] = {}
    for record in dataset.records:
        groups.setdefault(record.values, []).append(record.id)
    return [(values, tuple(ids)) for values, ids in groups.items()]


class TSSMapping:
    """A dataset transformed into the TSS mapped space, plus its data R-tree."""

    def __init__(
        self,
        dataset: Dataset | None = None,
        encodings: Sequence[DomainEncoding] | None = None,
        *,
        schema: Schema | None = None,
        frame: EncodedFrame | None = None,
        rows: Sequence[int] | None = None,
        use_frame: bool | None = None,
        toposort_strategy: str = "kahn",
        parent_choice: str = "first",
    ) -> None:
        if dataset is None and frame is None:
            raise SchemaError("TSSMapping needs a dataset or an encoded frame")
        if schema is None:
            schema = dataset.schema if dataset is not None else frame.schema
        if schema.num_partial_order == 0:
            raise SchemaError("TSSMapping requires at least one PO attribute; use plain BBS otherwise")
        self.dataset = dataset
        self.schema: Schema = schema
        if encodings is None:
            encodings = [
                encode_domain(attribute.dag, strategy=toposort_strategy, parent_choice=parent_choice)
                for attribute in schema.partial_order_attributes
            ]
        if len(encodings) != schema.num_partial_order:
            raise SchemaError("one DomainEncoding per PO attribute is required")
        self.encodings: tuple[DomainEncoding, ...] = tuple(encodings)
        if frame is None and dataset is not None and resolve_frame_mode(use_frame):
            frame = EncodedFrame.from_dataset(dataset)
        self.frame = frame
        # Mapped-coordinate matrix of the distinct points (row g = coords of
        # point g), retained by the columnar build so the flat R-tree can
        # bulk-load without re-materializing coordinates; ``None`` until
        # needed elsewhere (see :meth:`mapped_matrix`).
        self._mapped_matrix = None
        if frame is not None:
            self.points: list[MappedPoint] = self._build_points_from_frame(frame, rows)
        else:
            if rows is not None:
                raise SchemaError("TSSMapping row subsets require an encoded frame")
            self.points = self._build_points()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build_points(self) -> list[MappedPoint]:
        schema = self.schema
        points: list[MappedPoint] = []
        for values, record_ids in group_distinct_rows(self.dataset):
            to_values = schema.canonical_to_values(values)
            po_values = schema.partial_values(values)
            ordinals = tuple(
                float(encoding.ordinal(value))
                for encoding, value in zip(self.encodings, po_values)
            )
            points.append(
                MappedPoint(
                    index=len(points),
                    coords=to_values + ordinals,
                    to_values=to_values,
                    po_values=po_values,
                    record_ids=record_ids,
                )
            )
        return points

    def _topo_code_maps(self) -> list[dict[Value, int]]:
        """Per PO attribute: value -> position in the topological order."""
        return [
            {value: position for position, value in enumerate(encoding.order)}
            for encoding in self.encodings
        ]

    def _build_points_from_frame(
        self, frame: EncodedFrame, rows: Sequence[int] | None = None
    ) -> list[MappedPoint]:
        """Columnar twin of :meth:`_build_points` over an encoded frame.

        The frame's canonical codes are gathered into topological positions
        (``ordinal - 1``); duplicate grouping is one ``np.unique`` over the
        mapped-coordinate matrix, reordered to first occurrence so the point
        list is identical to the record path's.  ``rows`` restricts the build
        to a row subset without materializing a reduced frame — point
        ``record_ids`` are then positions within ``rows``, exactly as a
        ``frame.take(rows)`` build would number them.
        """
        topo_codes = frame.remap_codes(self._topo_code_maps(), rows)
        to_block = frame.gather_to(rows)
        length = len(frame) if rows is None else len(rows)
        orders = [encoding.order for encoding in self.encodings]
        if not frame.uses_numpy:
            points: list[MappedPoint] = []
            groups: dict[tuple, list[int]] = {}
            for row_index in range(length):
                key = (tuple(to_block[row_index]), tuple(topo_codes[row_index]))
                groups.setdefault(key, []).append(row_index)
            for (to_values, codes), row_ids in groups.items():
                ordinals = tuple(float(code + 1) for code in codes)
                points.append(
                    MappedPoint(
                        index=len(points),
                        coords=tuple(to_values) + ordinals,
                        to_values=tuple(to_values),
                        po_values=tuple(order[code] for order, code in zip(orders, codes)),
                        record_ids=tuple(row_ids),
                    )
                )
            return points
        import numpy as np

        num_to = self.num_total_order
        coords = np.empty((length, self.dimensions), dtype=float)
        coords[:, :num_to] = to_block
        coords[:, num_to:] = topo_codes
        coords[:, num_to:] += 1.0
        unique_coords, groups = group_rows(coords)
        self._mapped_matrix = unique_coords
        points = []
        for index, (unique_row, row_ids) in enumerate(zip(unique_coords, groups)):
            row = unique_row.tolist()
            points.append(
                MappedPoint(
                    index=index,
                    coords=tuple(row),
                    to_values=tuple(row[:num_to]),
                    po_values=tuple(
                        order[int(ordinal) - 1]
                        for order, ordinal in zip(orders, row[num_to:])
                    ),
                    record_ids=tuple(row_ids.tolist()),
                )
            )
        return points

    @classmethod
    def from_stored(cls, schema, encodings, coords, groups) -> "TSSMapping":
        """Rebuild a mapping from persisted coordinates and record groups.

        ``coords`` is the ``(points, dimensions)`` mapped matrix (NumPy array
        — typically a store's memmap view — or tuple rows) and ``groups`` the
        per-point record-id tuples, both exactly as a fresh build over the
        same frame would produce them; ``encodings`` must be the deterministic
        base encodings the store was packed under.  No grouping or ordinal
        gathering is repeated.
        """
        mapping = object.__new__(cls)
        mapping.dataset = None
        mapping.schema = schema
        mapping.encodings = tuple(encodings)
        if len(mapping.encodings) != schema.num_partial_order:
            raise SchemaError("one DomainEncoding per PO attribute is required")
        mapping.frame = None
        uses_numpy = not isinstance(coords, (tuple, list))
        mapping._mapped_matrix = coords if uses_numpy else None
        orders = [encoding.order for encoding in mapping.encodings]
        num_to = schema.num_total_order
        points: list[MappedPoint] = []
        for index, group in enumerate(groups):
            row = coords[index].tolist() if uses_numpy else list(coords[index])
            points.append(
                MappedPoint(
                    index=index,
                    coords=tuple(row),
                    to_values=tuple(row[:num_to]),
                    po_values=tuple(
                        order[int(ordinal) - 1]
                        for order, ordinal in zip(orders, row[num_to:])
                    ),
                    record_ids=tuple(group),
                )
            )
        mapping.points = points
        return mapping

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def num_total_order(self) -> int:
        return self.schema.num_total_order

    @property
    def num_partial_order(self) -> int:
        return self.schema.num_partial_order

    @property
    def dimensions(self) -> int:
        """Dimensionality of the mapped space (|TO| + |PO|)."""
        return self.num_total_order + self.num_partial_order

    def __len__(self) -> int:
        return len(self.points)

    @cached_property
    def to_offset(self) -> int:
        """Index of the first PO (ordinal) coordinate inside ``coords``."""
        return self.num_total_order

    @cached_property
    def point_codes(self) -> list[tuple[int, ...]]:
        """Per point: the PO codes (topological position, 0-based).

        Derived once from the mapped ordinals so skyline stores can feed
        kernel calls without re-deriving codes per dominance check.
        """
        offset = self.to_offset
        return [
            tuple(int(c) - 1 for c in point.coords[offset:]) for point in self.points
        ]

    def point(self, index: int) -> MappedPoint:
        return self.points[index]

    # ------------------------------------------------------------------ #
    # Index construction
    # ------------------------------------------------------------------ #
    def mapped_matrix(self):
        """The mapped coordinates as one ``(points, dimensions)`` matrix.

        Served from the columnar build's retained array when the mapping was
        constructed from a NumPy-backed frame (row g is already point g's
        coordinates — zero conversion), materialized once otherwise.
        """
        import numpy as np

        if self._mapped_matrix is None:
            self._mapped_matrix = np.array(
                [point.coords for point in self.points], dtype=np.float64
            ).reshape(len(self.points), self.dimensions)
        return self._mapped_matrix

    def build_rtree(
        self,
        *,
        max_entries: int = 32,
        disk: DiskSimulator | None = None,
        index=None,
    ) -> RTree:
        """Bulk-load the data R-tree over the mapped points (payload = point index).

        ``index`` selects the spatial backend (``"flat"``/``"pointer"`` or
        ``None`` for the process default); the flat tree loads straight off
        the mapped-coordinate matrix with zero per-point Python objects.
        """
        if resolve_index(index) == "flat":
            from repro.index.flat import FlatRTree

            return FlatRTree.bulk_load(
                self.dimensions, self.mapped_matrix(), max_entries=max_entries, disk=disk
            )
        return RTree.bulk_load(
            self.dimensions,
            ((point.coords, point.index) for point in self.points),
            max_entries=max_entries,
            disk=disk,
        )

    # ------------------------------------------------------------------ #
    # Decoding helpers
    # ------------------------------------------------------------------ #
    def ordinal_range_of_rect(self, low: Sequence[float], high: Sequence[float], po_index: int) -> tuple[int, int]:
        """The ``A_TO`` ordinal range an MBB spans for the ``po_index``-th PO attribute."""
        dimension = self.to_offset + po_index
        return int(low[dimension]), int(high[dimension])

    def record_ids_for(self, point_indices: Sequence[int]) -> list[int]:
        """Expand mapped-point indices back into dataset record ids."""
        ids: list[int] = []
        for index in point_indices:
            ids.extend(self.points[index].record_ids)
        return ids
