"""The TSS transform: datasets mapped into the ``TO x A_TO`` space.

TSS maps every record into a numeric space with one dimension per TO
attribute (canonical values, smaller is better) and one dimension per PO
attribute holding the value's ordinal in the topological sort of its
preference DAG (Section III-B).  Because the topological sort respects every
preference edge, visiting points of this space in ascending L1 distance from
the origin guarantees the *precedence* property.

Exact duplicates (records with identical attribute values) are grouped into a
single :class:`MappedPoint` carrying all their record ids.  Distinct mapped
points can then never tie on every attribute, which makes "weakly better
everywhere and not the same point" equivalent to strict dominance and keeps
every pruning rule exact.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from functools import cached_property

from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.exceptions import SchemaError
from repro.index.pager import DiskSimulator
from repro.index.rtree import RTree
from repro.order.encoding import DomainEncoding, encode_domain

Value = Hashable


@dataclass(frozen=True, slots=True)
class MappedPoint:
    """A distinct value combination in the mapped space.

    Attributes
    ----------
    index:
        Position of this point in the mapping's point list (used as the
        R-tree payload).
    coords:
        Mapped coordinates: canonical TO values followed by one topological
        ordinal per PO attribute.
    to_values:
        The canonical TO values only.
    po_values:
        The original PO attribute values (schema order).
    record_ids:
        Ids of every dataset record with exactly these attribute values.
    """

    index: int
    coords: tuple[float, ...]
    to_values: tuple[float, ...]
    po_values: tuple[Value, ...]
    record_ids: tuple[int, ...]


def group_distinct_rows(dataset: Dataset) -> list[tuple[tuple[Value, ...], tuple[int, ...]]]:
    """Group record ids by their exact attribute-value tuple (insertion order)."""
    groups: dict[tuple[Value, ...], list[int]] = {}
    for record in dataset.records:
        groups.setdefault(record.values, []).append(record.id)
    return [(values, tuple(ids)) for values, ids in groups.items()]


class TSSMapping:
    """A dataset transformed into the TSS mapped space, plus its data R-tree."""

    def __init__(
        self,
        dataset: Dataset,
        encodings: Sequence[DomainEncoding] | None = None,
        *,
        toposort_strategy: str = "kahn",
        parent_choice: str = "first",
    ) -> None:
        schema = dataset.schema
        if schema.num_partial_order == 0:
            raise SchemaError("TSSMapping requires at least one PO attribute; use plain BBS otherwise")
        self.dataset = dataset
        self.schema: Schema = schema
        if encodings is None:
            encodings = [
                encode_domain(attribute.dag, strategy=toposort_strategy, parent_choice=parent_choice)
                for attribute in schema.partial_order_attributes
            ]
        if len(encodings) != schema.num_partial_order:
            raise SchemaError("one DomainEncoding per PO attribute is required")
        self.encodings: tuple[DomainEncoding, ...] = tuple(encodings)
        self.points: list[MappedPoint] = self._build_points()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build_points(self) -> list[MappedPoint]:
        schema = self.schema
        points: list[MappedPoint] = []
        for values, record_ids in group_distinct_rows(self.dataset):
            to_values = schema.canonical_to_values(values)
            po_values = schema.partial_values(values)
            ordinals = tuple(
                float(encoding.ordinal(value))
                for encoding, value in zip(self.encodings, po_values)
            )
            points.append(
                MappedPoint(
                    index=len(points),
                    coords=to_values + ordinals,
                    to_values=to_values,
                    po_values=po_values,
                    record_ids=record_ids,
                )
            )
        return points

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def num_total_order(self) -> int:
        return self.schema.num_total_order

    @property
    def num_partial_order(self) -> int:
        return self.schema.num_partial_order

    @property
    def dimensions(self) -> int:
        """Dimensionality of the mapped space (|TO| + |PO|)."""
        return self.num_total_order + self.num_partial_order

    def __len__(self) -> int:
        return len(self.points)

    @cached_property
    def to_offset(self) -> int:
        """Index of the first PO (ordinal) coordinate inside ``coords``."""
        return self.num_total_order

    def point(self, index: int) -> MappedPoint:
        return self.points[index]

    # ------------------------------------------------------------------ #
    # Index construction
    # ------------------------------------------------------------------ #
    def build_rtree(
        self, *, max_entries: int = 32, disk: DiskSimulator | None = None
    ) -> RTree:
        """Bulk-load the data R-tree over the mapped points (payload = point index)."""
        return RTree.bulk_load(
            self.dimensions,
            ((point.coords, point.index) for point in self.points),
            max_entries=max_entries,
            disk=disk,
        )

    # ------------------------------------------------------------------ #
    # Decoding helpers
    # ------------------------------------------------------------------ #
    def ordinal_range_of_rect(self, low: Sequence[float], high: Sequence[float], po_index: int) -> tuple[int, int]:
        """The ``A_TO`` ordinal range an MBB spans for the ``po_index``-th PO attribute."""
        dimension = self.to_offset + po_index
        return int(low[dimension]), int(high[dimension])

    def record_ids_for(self, point_indices: Sequence[int]) -> list[int]:
        """Expand mapped-point indices back into dataset record ids."""
        ids: list[int] = []
        for index in point_indices:
            ids.extend(self.points[index].record_ids)
        return ids
