"""Dyadic-range pre-computation of interval sets for ``A_TO`` ranges.

Checking whether a point t-dominates an R-tree MBB requires the merged
interval set of *every* PO value inside the MBB's ``A_TO`` range (Section
IV-B, first optimization).  Recomputing that union per MBB touches up to
``|A_TO|`` values; pre-computing it for every possible range needs quadratic
space.  The paper's compromise is to pre-compute the interval sets of the
*dyadic ranges* of the domain — the nodes of a binary tree built over
``A_TO`` — so that any range decomposes into ``O(log |range|)`` pre-computed
pieces at linear storage cost.
"""

from __future__ import annotations

from repro.exceptions import PartialOrderError
from repro.order.encoding import DomainEncoding
from repro.order.intervals import Interval, IntervalSet


class DyadicIntervalCache:
    """Pre-computed interval sets for the dyadic ranges of one ``A_TO`` domain.

    The domain ``[1, n]`` is padded to the next power of two ``m``; the cache
    stores one :class:`~repro.order.intervals.IntervalSet` per node of a
    complete binary tree over ``[1, m]`` (only nodes that intersect the real
    domain are materialized).  :meth:`range_interval_set` answers any ordinal
    range by merging at most ``2 log m`` cached sets.
    """

    def __init__(self, encoding: DomainEncoding) -> None:
        self.encoding = encoding
        self.domain_size = encoding.cardinality
        if self.domain_size < 1:
            raise PartialOrderError("cannot build a dyadic cache over an empty domain")
        size = 1
        while size < self.domain_size:
            size *= 2
        self._padded_size = size
        # _cache[(level_size, start)] = merged interval set of ordinals
        # [start, start + level_size - 1] intersected with the real domain.
        self._cache: dict[tuple[int, int], IntervalSet] = {}
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        # Leaves: single ordinals.
        for ordinal in range(1, self.domain_size + 1):
            value = self.encoding.value_at(ordinal)
            self._cache[(1, ordinal)] = self.encoding.interval_set(value)
        # Internal dyadic nodes, bottom-up.
        size = 2
        while size <= self._padded_size:
            for start in range(1, self._padded_size + 1, size):
                if start > self.domain_size:
                    continue
                left = self._cache.get((size // 2, start))
                right = self._cache.get((size // 2, start + size // 2))
                if left is None and right is None:
                    continue
                if left is None:
                    merged = right
                elif right is None:
                    merged = left
                else:
                    merged = left.union(right)
                self._cache[(size, start)] = merged  # type: ignore[assignment]
            size *= 2

    @property
    def num_cached_ranges(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def range_interval_set(self, low_ordinal: int, high_ordinal: int) -> IntervalSet:
        """Merged interval set of all values with ordinal in ``[low, high]``."""
        low = max(1, int(low_ordinal))
        high = min(self.domain_size, int(high_ordinal))
        if low > high:
            return IntervalSet()
        pieces: list[Interval] = []
        for size, start in self._decompose(low, high):
            cached = self._cache.get((size, start))
            if cached is not None:
                pieces.extend(cached.intervals)
        return IntervalSet(pieces)

    def _decompose(self, low: int, high: int) -> list[tuple[int, int]]:
        """Cover ``[low, high]`` with maximal dyadic ranges (canonical decomposition)."""
        ranges: list[tuple[int, int]] = []
        position = low
        while position <= high:
            # Largest dyadic block starting at `position` (alignment constraint)
            # that does not extend past `high`.
            size = 1
            while (
                size * 2 <= self._padded_size
                and (position - 1) % (size * 2) == 0
                and position + size * 2 - 1 <= high
            ):
                size *= 2
            ranges.append((size, position))
            position += size
        return ranges
