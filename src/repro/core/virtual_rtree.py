"""Main-memory R-tree of virtual skyline points for fast t-dominance checks.

Second optimization of Section IV-B: every skyline point is represented by
*virtual points* in the space ``TO-dims x (I1, I2) per PO attribute`` — one
virtual point per combination of intervals associated with its PO values.
Checking whether a candidate point or MBB is t-dominated then reduces to one
or a few Boolean range queries against this index, instead of a scan over the
whole skyline list:

* a candidate **point** is dominated iff some virtual point is at least as
  good on every TO dimension and its interval contains the candidate value's
  own postorder number on every PO dimension (a single Boolean query);
* a candidate **MBB** is safely prunable when, for every combination of
  intervals in the merged interval sets of its ``A_TO`` ranges, some virtual
  point covers the combination while being at least as good on the TO
  dimensions.  Every potential point inside the MBB is then dominated by one
  of the skyline points answering these queries.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.core.mapping import MappedPoint
from repro.index.geometry import Rect
from repro.index.rtree import RTree
from repro.order.encoding import DomainEncoding
from repro.order.intervals import IntervalSet

#: Effectively unbounded coordinate used for open-ended query ranges.
_INFINITY = 1e18

#: Maximum number of interval combinations examined when testing one MBB.
#: Exceeding the cap makes the check answer "not dominated", which is always
#: safe (the node is simply expanded instead of pruned).
DEFAULT_MAX_COMBINATIONS = 128


class VirtualPointIndex:
    """The global main-memory R-tree ``Tm`` of virtual skyline points."""

    def __init__(
        self,
        num_total_order: int,
        encodings: Sequence[DomainEncoding],
        *,
        max_entries: int = 16,
        max_combinations: int = DEFAULT_MAX_COMBINATIONS,
    ) -> None:
        self.num_total_order = num_total_order
        self.encodings = tuple(encodings)
        self.max_combinations = max_combinations
        self.dimensions = num_total_order + 2 * len(self.encodings)
        self._tree = RTree(self.dimensions, max_entries=max_entries)
        self._num_skyline_points = 0
        self._num_virtual_points = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_skyline_points(self) -> int:
        return self._num_skyline_points

    @property
    def num_virtual_points(self) -> int:
        return self._num_virtual_points

    def __len__(self) -> int:
        return self._num_virtual_points

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def insert_skyline_point(self, to_values: Sequence[float], po_values: Sequence[object], payload: object) -> int:
        """Insert all virtual points of one new skyline point; returns how many."""
        interval_sets = [
            encoding.interval_set(value) for encoding, value in zip(self.encodings, po_values)
        ]
        inserted = 0
        for combination in itertools.product(*(s.intervals for s in interval_sets)):
            coords = list(float(v) for v in to_values)
            for interval in combination:
                coords.append(float(interval.low))
                coords.append(float(interval.high))
            self._tree.insert(tuple(coords), payload)
            inserted += 1
        self._num_skyline_points += 1
        self._num_virtual_points += inserted
        return inserted

    def insert_mapped_point(self, point: MappedPoint) -> int:
        """Convenience wrapper for static sTSS (payload = mapped point index)."""
        return self.insert_skyline_point(point.to_values, point.po_values, point.index)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def dominates_candidate_point(
        self, to_values: Sequence[float], po_values: Sequence[object]
    ) -> bool:
        """Is a candidate point t-dominated by any already-inserted skyline point?

        Exact for candidates whose value combination differs from every
        skyline point's (guaranteed by the duplicate grouping of
        :class:`~repro.core.mapping.TSSMapping`).
        """
        posts = [
            encoding.tree.post[value] for encoding, value in zip(self.encodings, po_values)
        ]
        rect = self._query_rect(to_values, [(post, post) for post in posts])
        return self._tree.boolean_range_query(rect)

    def dominates_candidate_mbb(
        self,
        low: Sequence[float],
        high: Sequence[float],
        range_sets: Sequence[IntervalSet],
    ) -> bool:
        """May the MBB be pruned (every potential point inside it is dominated)?

        ``low``/``high`` are the MBB corners in the mapped (``TO x A_TO``)
        space; ``range_sets`` holds, per PO attribute, the merged interval set
        of the MBB's ``A_TO`` range.  Answers "False" (do not prune) when any
        range set is empty or the number of combinations exceeds the cap.
        """
        if self._num_skyline_points == 0:
            return False
        combination_count = 1
        for range_set in range_sets:
            if len(range_set) == 0:
                return False
            combination_count *= len(range_set)
            if combination_count > self.max_combinations:
                return False
        # Fast path: one query with each range set's minimum bounding
        # interval.  A virtual point covering the MBI combination covers every
        # interval combination at once, so a hit proves dominance without
        # enumerating the product.
        if combination_count > 1:
            mbi_rect = self._query_rect(
                low[: self.num_total_order],
                [
                    (mbi.low, mbi.high)
                    for mbi in (s.bounding_interval() for s in range_sets)
                ],
            )
            if self._tree.boolean_range_query(mbi_rect):
                return True
        for combination in itertools.product(*(s.intervals for s in range_sets)):
            rect = self._query_rect(
                low[: self.num_total_order],
                [(interval.low, interval.high) for interval in combination],
            )
            if not self._tree.boolean_range_query(rect):
                return False
        return True

    def _query_rect(
        self, to_upper_bounds: Sequence[float], interval_bounds: Sequence[tuple[float, float]]
    ) -> Rect:
        """Query box: TO dims in (-inf, bound]; per PO attr I1 <= low, I2 >= high."""
        low = [-_INFINITY] * self.num_total_order
        high = [float(bound) for bound in to_upper_bounds]
        for interval_low, interval_high in interval_bounds:
            low.append(-_INFINITY)
            high.append(float(interval_low))
            low.append(float(interval_high))
            high.append(_INFINITY)
        return Rect(tuple(low), tuple(high))
