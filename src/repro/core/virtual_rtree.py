"""Main-memory index of virtual skyline points for fast t-dominance checks.

Second optimization of Section IV-B: every skyline point is represented by
*virtual points* in the space ``TO-dims x (I1, I2) per PO attribute`` — one
virtual point per combination of intervals associated with its PO values.
Checking whether a candidate point or MBB is t-dominated then reduces to one
or a few Boolean range queries against this index, instead of a scan over the
whole skyline list:

* a candidate **point** is dominated iff some virtual point is at least as
  good on every TO dimension and its interval contains the candidate value's
  own postorder number on every PO dimension (a single Boolean query);
* a candidate **MBB** is safely prunable when, for every combination of
  intervals in the merged interval sets of its ``A_TO`` ranges, some virtual
  point covers the combination while being at least as good on the TO
  dimensions.  Every potential point inside the MBB is then dominated by one
  of the skyline points answering these queries.

Two storage backends implement the Boolean queries, selected like every
other spatial index through :mod:`repro.index.registry`:

* ``pointer`` — the original incrementally grown
  :class:`~repro.index.rtree.RTree`, one Boolean range query per interval
  combination;
* ``flat`` — virtual points in one contiguous, append-only coordinate
  matrix; an MBB check materializes *all* of its combination query boxes at
  once and answers them with a single vectorized containment test over the
  whole virtual-point block (the sTSS MBI prefilter runs first, exactly as
  before).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.core.mapping import MappedPoint
from repro.index.geometry import Rect
from repro.index.registry import resolve_index
from repro.index.rtree import RTree
from repro.order.encoding import DomainEncoding
from repro.order.intervals import IntervalSet

#: Effectively unbounded coordinate used for open-ended query ranges.
_INFINITY = 1e18

#: Maximum number of interval combinations examined when testing one MBB.
#: Exceeding the cap makes the check answer "not dominated", which is always
#: safe (the node is simply expanded instead of pruned).
DEFAULT_MAX_COMBINATIONS = 128


class _PointerStore:
    """Virtual points in an incrementally grown pointer R-tree."""

    __slots__ = ("_tree",)

    def __init__(self, dimensions: int, max_entries: int) -> None:
        self._tree = RTree(dimensions, max_entries=max_entries)

    def append(self, coords: tuple[float, ...], payload: object) -> None:
        self._tree.insert(coords, payload)

    def any_in_box(self, low: Sequence[float], high: Sequence[float]) -> bool:
        return self._tree.boolean_range_query(Rect(tuple(low), tuple(high)))

    def all_boxes_hit(self, lows, highs) -> bool:
        return all(self.any_in_box(low, high) for low, high in zip(lows, highs))


class _ArrayStore:
    """Virtual points in one contiguous, append-only coordinate matrix.

    Boolean range queries are vectorized containment tests over the whole
    block; a batch of query boxes (the interval combinations of one MBB
    check) is answered in a single broadcast instead of one tree descent per
    combination.
    """

    __slots__ = ("_rows",)

    def __init__(self, dimensions: int) -> None:
        from repro.index.flat import GrowableRowMatrix

        self._rows = GrowableRowMatrix(dimensions)

    def append(self, coords: tuple[float, ...], payload: object) -> None:
        self._rows.append(coords)

    def any_in_box(self, low: Sequence[float], high: Sequence[float]) -> bool:
        import numpy as np

        block = self._rows.view
        if not len(block):
            return False
        low = np.asarray(low, dtype=np.float64)
        high = np.asarray(high, dtype=np.float64)
        return bool(((block >= low) & (block <= high)).all(axis=1).any())

    def all_boxes_hit(self, lows, highs) -> bool:
        import numpy as np

        block = self._rows.view
        if not len(block):
            return False
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        inside = (block[:, None, :] >= lows[None, :, :]) & (
            block[:, None, :] <= highs[None, :, :]
        )
        return bool(inside.all(axis=2).any(axis=0).all())


class VirtualPointIndex:
    """The global main-memory index ``Tm`` of virtual skyline points."""

    def __init__(
        self,
        num_total_order: int,
        encodings: Sequence[DomainEncoding],
        *,
        max_entries: int = 16,
        max_combinations: int = DEFAULT_MAX_COMBINATIONS,
        index=None,
    ) -> None:
        self.num_total_order = num_total_order
        self.encodings = tuple(encodings)
        self.max_combinations = max_combinations
        self.dimensions = num_total_order + 2 * len(self.encodings)
        self.backend = resolve_index(index)
        if self.backend == "flat":
            self._store: _ArrayStore | _PointerStore = _ArrayStore(self.dimensions)
        else:
            self._store = _PointerStore(self.dimensions, max_entries)
        self._num_skyline_points = 0
        self._num_virtual_points = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_skyline_points(self) -> int:
        return self._num_skyline_points

    @property
    def num_virtual_points(self) -> int:
        return self._num_virtual_points

    def __len__(self) -> int:
        return self._num_virtual_points

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def insert_skyline_point(self, to_values: Sequence[float], po_values: Sequence[object], payload: object) -> int:
        """Insert all virtual points of one new skyline point; returns how many."""
        interval_sets = [
            encoding.interval_set(value) for encoding, value in zip(self.encodings, po_values)
        ]
        inserted = 0
        for combination in itertools.product(*(s.intervals for s in interval_sets)):
            coords = list(float(v) for v in to_values)
            for interval in combination:
                coords.append(float(interval.low))
                coords.append(float(interval.high))
            self._store.append(tuple(coords), payload)
            inserted += 1
        self._num_skyline_points += 1
        self._num_virtual_points += inserted
        return inserted

    def insert_mapped_point(self, point: MappedPoint) -> int:
        """Convenience wrapper for static sTSS (payload = mapped point index)."""
        return self.insert_skyline_point(point.to_values, point.po_values, point.index)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def dominates_candidate_point(
        self, to_values: Sequence[float], po_values: Sequence[object]
    ) -> bool:
        """Is a candidate point t-dominated by any already-inserted skyline point?

        Exact for candidates whose value combination differs from every
        skyline point's (guaranteed by the duplicate grouping of
        :class:`~repro.core.mapping.TSSMapping`).
        """
        posts = [
            encoding.tree.post[value] for encoding, value in zip(self.encodings, po_values)
        ]
        low, high = self._query_box(to_values, [(post, post) for post in posts])
        return self._store.any_in_box(low, high)

    def dominates_candidate_mbb(
        self,
        low: Sequence[float],
        high: Sequence[float],
        range_sets: Sequence[IntervalSet],
    ) -> bool:
        """May the MBB be pruned (every potential point inside it is dominated)?

        ``low``/``high`` are the MBB corners in the mapped (``TO x A_TO``)
        space; ``range_sets`` holds, per PO attribute, the merged interval set
        of the MBB's ``A_TO`` range.  Answers "False" (do not prune) when any
        range set is empty or the number of combinations exceeds the cap.
        """
        if self._num_skyline_points == 0:
            return False
        combination_count = 1
        for range_set in range_sets:
            if len(range_set) == 0:
                return False
            combination_count *= len(range_set)
            if combination_count > self.max_combinations:
                return False
        to_bounds = low[: self.num_total_order]
        # Fast path: one query with each range set's minimum bounding
        # interval.  A virtual point covering the MBI combination covers every
        # interval combination at once, so a hit proves dominance without
        # enumerating the product.
        if combination_count > 1:
            mbi_low, mbi_high = self._query_box(
                to_bounds,
                [
                    (mbi.low, mbi.high)
                    for mbi in (s.bounding_interval() for s in range_sets)
                ],
            )
            if self._store.any_in_box(mbi_low, mbi_high):
                return True
        # Every interval combination must be covered by some virtual point;
        # the array backend answers the whole batch of query boxes in one
        # vectorized containment test.
        lows = []
        highs = []
        for combination in itertools.product(*(s.intervals for s in range_sets)):
            box_low, box_high = self._query_box(
                to_bounds,
                [(interval.low, interval.high) for interval in combination],
            )
            lows.append(box_low)
            highs.append(box_high)
        return self._store.all_boxes_hit(lows, highs)

    def _query_box(
        self, to_upper_bounds: Sequence[float], interval_bounds: Sequence[tuple[float, float]]
    ) -> tuple[list[float], list[float]]:
        """Query box: TO dims in (-inf, bound]; per PO attr I1 <= low, I2 >= high."""
        low = [-_INFINITY] * self.num_total_order
        high = [float(bound) for bound in to_upper_bounds]
        for interval_low, interval_high in interval_bounds:
            low.append(-_INFINITY)
            high.append(float(interval_low))
            low.append(float(interval_high))
            high.append(_INFINITY)
        return low, high
