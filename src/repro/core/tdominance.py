"""Exact t-dominance checks for mapped points and R-tree MBBs.

Definition 1 (t-preference): value ``x`` is t-preferred over ``y`` iff every
interval associated with ``y`` is contained in (or coincides with) some
interval associated with ``x``.  Because the interval sets produced by
:mod:`repro.order.propagation` cover exactly the postorder numbers of a
value's DAG descendants, t-preference coincides with reachability — the check
is exact.

Definition 2 (t-dominance): point ``p`` t-dominates ``q`` iff it is at least
as good on every TO dimension, ``q`` is not t-preferred over ``p`` on any PO
dimension, and it is strictly better somewhere.  For points with *distinct*
value combinations (guaranteed by the duplicate grouping in
:class:`~repro.core.mapping.TSSMapping`), this reduces to "weakly better
everywhere": at least as good on the TO dimensions and t-preferred-or-equal
on the PO dimensions.

The same checker also decides t-dominance of an MBB (a point t-dominates an
MBB when it would t-dominate every possible point inside it), using the
merged interval set of the MBB's ``A_TO`` range per PO attribute.
"""

from __future__ import annotations

import weakref
from collections.abc import Hashable, Sequence

from repro.core.dyadic import DyadicIntervalCache
from repro.core.mapping import MappedPoint, TSSMapping
from repro.kernels import TDominanceTables, resolve_kernel
from repro.order.encoding import DomainEncoding
from repro.order.intervals import IntervalSet, covers_many

Value = Hashable

#: One :class:`TDominanceTables` per mapping, shared by every checker built
#: over it (the preference matrices are O(domain²) to build).
_TABLES_CACHE: "weakref.WeakKeyDictionary[TSSMapping, TDominanceTables]" = (
    weakref.WeakKeyDictionary()
)


def tdominance_tables(mapping: TSSMapping) -> TDominanceTables:
    """The (cached) kernel lookup tables of one mapping."""
    tables = _TABLES_CACHE.get(mapping)
    if tables is None:
        tables = TDominanceTables.from_encodings(
            mapping.num_total_order, mapping.encodings
        )
        _TABLES_CACHE[mapping] = tables
    return tables


class TDominanceChecker:
    """t-dominance between mapped points / MBBs for one :class:`TSSMapping`."""

    def __init__(
        self, mapping: TSSMapping, *, use_dyadic_cache: bool = True, kernel=None
    ) -> None:
        self.mapping = mapping
        self.encodings: tuple[DomainEncoding, ...] = mapping.encodings
        self.kernel = resolve_kernel(kernel)
        self._dyadic: list[DyadicIntervalCache] | None = None
        if use_dyadic_cache:
            self._dyadic = [DyadicIntervalCache(encoding) for encoding in self.encodings]
        # Hot-path caches: postorder number and interval set per PO value.
        self._posts: tuple[dict[Value, int], ...] = tuple(
            dict(encoding.tree.post) for encoding in self.encodings
        )
        self._interval_sets: tuple[dict[Value, IntervalSet], ...] = tuple(
            dict(encoding.intervals) for encoding in self.encodings
        )

    # ------------------------------------------------------------------ #
    # Value-level checks
    # ------------------------------------------------------------------ #
    def t_prefers_or_equal(self, po_index: int, better: Value, worse: Value) -> bool:
        return self.encodings[po_index].t_prefers_or_equal(better, worse)

    def range_interval_set(self, po_index: int, low_ordinal: int, high_ordinal: int) -> IntervalSet:
        """Merged interval set of an ``A_TO`` ordinal range (dyadic cache when enabled)."""
        if self._dyadic is not None:
            return self._dyadic[po_index].range_interval_set(low_ordinal, high_ordinal)
        return self.encodings[po_index].range_interval_set(low_ordinal, high_ordinal)

    # ------------------------------------------------------------------ #
    # Point-level checks
    # ------------------------------------------------------------------ #
    def dominates_point(self, p: MappedPoint, q: MappedPoint) -> bool:
        """Exact t-dominance between two mapped points (Definition 2)."""
        strictly_better = False
        for a, b in zip(p.to_values, q.to_values):
            if a > b:
                return False
            if a < b:
                strictly_better = True
        for po_index, (value_p, value_q) in enumerate(zip(p.po_values, q.po_values)):
            if value_p == value_q:
                continue
            if self.encodings[po_index].t_prefers(value_p, value_q):
                strictly_better = True
            else:
                return False
        return strictly_better

    def weakly_dominates_point(self, p: MappedPoint, q: MappedPoint) -> bool:
        """At least as good everywhere (sufficient for distinct value combinations).

        The PO test uses the membership form of t-preference: ``p``'s interval
        set must cover ``q``'s own postorder number, which is equivalent to
        covering ``q``'s whole interval set but needs a single binary search.
        """
        for a, b in zip(p.to_values, q.to_values):
            if a > b:
                return False
        for po_index, (value_p, value_q) in enumerate(zip(p.po_values, q.po_values)):
            if value_p == value_q:
                continue
            if not self._interval_sets[po_index][value_p].contains_point(
                self._posts[po_index][value_q]
            ):
                return False
        return True

    # ------------------------------------------------------------------ #
    # MBB-level checks
    # ------------------------------------------------------------------ #
    def dominates_mbb(
        self, p: MappedPoint, low: Sequence[float], high: Sequence[float]
    ) -> bool:
        """True iff ``p`` t-dominates every possible point inside the MBB.

        ``p`` must be at least as good as the MBB's best corner on every TO
        dimension and t-preferred over (or equal to) *every* PO value whose
        ordinal falls in the MBB's ``A_TO`` range, i.e. its interval set must
        cover the range's merged interval set.
        """
        offset = self.mapping.to_offset
        for dimension in range(offset):
            if p.to_values[dimension] > low[dimension]:
                return False
        # Cheap necessary condition first: to be preferred over every value in
        # the range, p's own ordinal must not exceed the range's lower bound.
        for po_index in range(self.mapping.num_partial_order):
            if p.coords[offset + po_index] > low[offset + po_index]:
                return False
        for po_index in range(self.mapping.num_partial_order):
            low_ordinal = int(low[offset + po_index])
            high_ordinal = int(high[offset + po_index])
            range_set = self.range_interval_set(po_index, low_ordinal, high_ordinal)
            point_set = self._interval_sets[po_index][p.po_values[po_index]]
            if not point_set.covers(range_set):
                return False
        return True

    # ------------------------------------------------------------------ #
    # Candidate-vs-skyline-list checks (unoptimized sTSS path)
    # ------------------------------------------------------------------ #
    def point_dominated_by_any(
        self, skyline: Sequence[MappedPoint], q: MappedPoint, *, counter=None
    ) -> bool:
        """Is ``q`` t-dominated by any point in ``skyline`` (list scan)?"""
        for p in skyline:
            if counter is not None:
                counter.dominance_checks += 1
            if self.weakly_dominates_point(p, q):
                return True
        return False

    def mbb_dominated_by_any(
        self,
        skyline: Sequence[MappedPoint],
        low: Sequence[float],
        high: Sequence[float],
        *,
        counter=None,
    ) -> bool:
        """Is the MBB t-dominated by any single point in ``skyline`` (list scan)?"""
        for p in skyline:
            if counter is not None:
                counter.dominance_checks += 1
            if self.dominates_mbb(p, low, high):
                return True
        return False

    # ------------------------------------------------------------------ #
    # Kernel-backed skyline store (batched sTSS path)
    # ------------------------------------------------------------------ #
    def make_skyline_store(self) -> "TDominanceSkylineStore":
        """An empty kernel-backed store for the skyline found so far."""
        return TDominanceSkylineStore(self)

    def store_dominates_point(
        self,
        store: "TDominanceSkylineStore",
        q: MappedPoint,
        *,
        counter=None,
        start: int = 0,
    ) -> bool:
        """Batched form of :meth:`point_dominated_by_any` over a store."""
        return store.kernel_store.any_weakly_dominates(
            q.to_values, store.codes_of(q), counter, start=start
        )

    def _range_sets_and_mbis(
        self, low: Sequence[float], high: Sequence[float]
    ) -> tuple[list[IntervalSet], list[tuple[float, float]]]:
        """Merged range interval sets + their MBIs for one MBB's PO ranges."""
        offset = self.mapping.to_offset
        range_sets = [
            self.range_interval_set(
                po_index, int(low[offset + po_index]), int(high[offset + po_index])
            )
            for po_index in range(self.mapping.num_partial_order)
        ]
        range_mbis = [
            (rs.intervals[0].low, rs.intervals[-1].high)
            if rs
            else (float("inf"), float("-inf"))
            for rs in range_sets
        ]
        return range_sets, range_mbis

    def _any_candidate_covers(
        self,
        store: "TDominanceSkylineStore",
        alive: list[int],
        range_sets: list[IntervalSet],
    ) -> bool:
        """Exact phase: does any surviving member cover every range set?"""
        if not alive:
            return False
        tables = store.tables
        for po_index, range_set in enumerate(range_sets):
            if not len(range_set):
                continue  # an empty range set is covered trivially
            cover_sets = [
                tables.interval_sets[po_index][store.codes[i][po_index]] for i in alive
            ]
            covered = covers_many(cover_sets, range_set, self.kernel)
            alive = [i for i, flag in zip(alive, covered) if flag]
            if not alive:
                return False
        return True

    def store_dominates_mbb(
        self,
        store: "TDominanceSkylineStore",
        low: Sequence[float],
        high: Sequence[float],
        *,
        counter=None,
        start: int = 0,
    ) -> bool:
        """Batched form of :meth:`mbb_dominated_by_any` over a store.

        Necessary conditions (TO corner, ordinal bound, minimum-bounding-
        interval containment) are evaluated vectorized over the whole store;
        only the survivors go through the exact interval-containment matrix
        of :meth:`DominanceKernel.covers_many
        <repro.kernels.base.DominanceKernel.covers_many>`.  ``start``
        restricts the scan to members appended at or after that index (the
        windowed sTSS suffix re-check).
        """
        offset = self.mapping.to_offset
        range_sets, range_mbis = self._range_sets_and_mbis(low, high)
        alive = store.kernel_store.mbb_candidates(
            low[:offset], low[offset:], range_mbis, counter, start=start
        )
        return self._any_candidate_covers(store, alive, range_sets)


class TDominanceSkylineStore:
    """The skyline found so far, mirrored into a kernel store.

    Keeps the members' PO codes on the Python side as well, because the exact
    MBB phase needs each survivor's interval set.
    """

    __slots__ = ("checker", "tables", "kernel_store", "codes")

    def __init__(self, checker: TDominanceChecker) -> None:
        self.checker = checker
        self.tables = tdominance_tables(checker.mapping)
        self.kernel_store = checker.kernel.tdominance_store(self.tables)
        self.codes: list[tuple[int, ...]] = []

    def codes_of(self, point: MappedPoint) -> tuple[int, ...]:
        """PO codes (topological position, 0-based) of one mapped point.

        Served from the mapping's precomputed code table, so candidates
        stream through the kernel with no per-check conversion.
        """
        return self.checker.mapping.point_codes[point.index]

    def append(self, point: MappedPoint) -> None:
        codes = self.codes_of(point)
        self.kernel_store.append(point.to_values, codes)
        self.codes.append(codes)

    def __len__(self) -> int:
        return len(self.codes)


class TDominanceWindow:
    """Bulk + suffix t-dominance tests for the columnar BBS loop.

    The t-dominance twin of
    :class:`~repro.index.flat.VectorDominanceWindow`: at a node expansion
    all children are screened against the skyline store in one kernel call
    (:meth:`TDominanceStore.mbb_block_candidates
    <repro.kernels.base.TDominanceStore.mbb_block_candidates>` for MBBs,
    :meth:`TDominanceStore.block_weakly_dominated
    <repro.kernels.base.TDominanceStore.block_weakly_dominated>` for leaf
    points), and each child's own pop re-examines only the members appended
    since (``start=prefix``).  Verdicts compose because the skyline store is
    append-only — t-dominance by a member is permanent.

    PO codes are recovered from the mapped coordinates themselves: the
    ordinal coordinate of a mapped point is its topological position + 1,
    i.e. ``code + 1`` (see :class:`~repro.kernels.tables.TDominanceTables`),
    so the window needs no payload lookups.
    """

    __slots__ = ("checker", "store", "_offset", "_num_po")

    def __init__(self, checker: TDominanceChecker, store: TDominanceSkylineStore) -> None:
        self.checker = checker
        self.store = store
        self._offset = checker.mapping.to_offset
        self._num_po = checker.mapping.num_partial_order

    def size(self) -> int:
        return len(self.store)

    def block_points(self, rows, counter) -> list[bool]:
        """Per leaf point: weakly t-dominated by any current member?"""
        offset = self._offset
        to_rows = [row[:offset] for row in rows]
        code_rows = [tuple(int(v) - 1 for v in row[offset:]) for row in rows]
        return self.store.kernel_store.block_weakly_dominated(
            to_rows, code_rows, counter
        )

    def block_rects(self, lows, highs, counter) -> list[bool]:
        """Per child MBB: t-dominated by any current member?

        Necessary conditions run batched over (members, children); the exact
        interval-containment phase runs per child on its survivors only.
        """
        checker = self.checker
        offset = self._offset
        to_lows = []
        ordinal_lows = []
        mbis_list = []
        range_sets_list = []
        for low, high in zip(lows, highs):
            range_sets, range_mbis = checker._range_sets_and_mbis(low, high)
            range_sets_list.append(range_sets)
            mbis_list.append(range_mbis)
            to_lows.append(low[:offset])
            ordinal_lows.append(low[offset:])
        candidate_lists = self.store.kernel_store.mbb_block_candidates(
            to_lows, ordinal_lows, mbis_list, counter
        )
        return [
            checker._any_candidate_covers(self.store, alive, range_sets)
            for alive, range_sets in zip(candidate_lists, range_sets_list)
        ]

    def point_suffix(self, point, start: int, counter) -> bool:
        codes = tuple(int(v) - 1 for v in point[self._offset :])
        return self.store.kernel_store.any_weakly_dominates(
            point[: self._offset], codes, counter, start=start
        )

    def rect_suffix(self, low, high, start: int, counter) -> bool:
        return self.checker.store_dominates_mbb(
            self.store, low, high, counter=counter, start=start
        )
