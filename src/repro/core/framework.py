"""High-level facade: compute skylines with any algorithm in the library.

:func:`compute_skyline` dispatches to the requested algorithm and returns the
standard :class:`~repro.skyline.base.SkylineResult`; :func:`skyline_records`
additionally materializes the skyline records themselves.  This is the entry
point the examples and the benchmark harness use.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines.bbs_plus import bbs_plus_skyline
from repro.baselines.sdc import sdc_skyline
from repro.baselines.sdc_plus import sdc_plus_skyline
from repro.core.stss import stss_skyline
from repro.data.dataset import Dataset, Record
from repro.exceptions import QueryError
from repro.skyline.base import SkylineResult
from repro.skyline.bbs import bbs_skyline
from repro.skyline.bnl import bnl_skyline
from repro.skyline.bruteforce import brute_force_skyline
from repro.skyline.less import less_skyline
from repro.skyline.salsa import salsa_skyline
from repro.skyline.sfs import sfs_skyline


def _dispatch_auto(dataset: Dataset, **options) -> SkylineResult:
    """Pick sTSS for mixed schemas and BBS for TO-only schemas."""
    if dataset.schema.num_partial_order:
        return stss_skyline(dataset, **options)
    return bbs_skyline(dataset, **options)


#: Registry of named skyline algorithms usable through :func:`compute_skyline`.
ALGORITHMS: dict[str, Callable[..., SkylineResult]] = {
    "auto": _dispatch_auto,
    "stss": stss_skyline,
    "tss": stss_skyline,
    "bbs": bbs_skyline,
    "bnl": bnl_skyline,
    "sfs": sfs_skyline,
    "less": less_skyline,
    "salsa": salsa_skyline,
    "bruteforce": brute_force_skyline,
    "bbs+": bbs_plus_skyline,
    "sdc": sdc_skyline,
    "sdc+": sdc_plus_skyline,
}


def compute_skyline(dataset: Dataset, *, algorithm: str = "auto", **options) -> SkylineResult:
    """Compute the skyline of ``dataset`` with the named algorithm.

    Parameters
    ----------
    dataset:
        The input relation (mixed TO/PO schemas supported by every algorithm
        except plain ``"bbs"``).
    algorithm:
        One of ``"auto"`` (sTSS when PO attributes are present, BBS
        otherwise), ``"stss"``/``"tss"``, ``"bbs"``, ``"bnl"``, ``"sfs"``,
        ``"less"``, ``"salsa"`` (TO-only), ``"bruteforce"``, ``"bbs+"``,
        ``"sdc"``, ``"sdc+"``.
    options:
        Forwarded to the selected algorithm (e.g. ``disk=DiskSimulator()``,
        ``use_virtual_rtree=False``, ``max_entries=64``).
    """
    try:
        implementation = ALGORITHMS[algorithm.lower()]
    except KeyError as exc:
        raise QueryError(
            f"unknown skyline algorithm {algorithm!r}; available: {sorted(ALGORITHMS)}"
        ) from exc
    return implementation(dataset, **options)


def skyline_records(dataset: Dataset, *, algorithm: str = "auto", **options) -> list[Record]:
    """Convenience wrapper returning the skyline :class:`Record` objects."""
    result = compute_skyline(dataset, algorithm=algorithm, **options)
    return [dataset[record_id] for record_id in result.skyline_ids]
