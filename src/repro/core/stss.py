"""sTSS: the static Topologically-Sorted Skyline algorithm (Section IV).

sTSS is BBS run in the TSS mapped space (canonical TO values plus one
topological ordinal per PO attribute) with the exact t-dominance check:

1. Build the :class:`~repro.core.mapping.TSSMapping` (topological sort +
   interval encoding per PO attribute, duplicate grouping, mapped points) and
   bulk-load the data R-tree over the mapped points.
2. Traverse the R-tree best-first by L1 mindist.  Because the topological
   sort preserves every preference edge, any point that could dominate the
   head entry has a strictly smaller mindist and has therefore already been
   examined (*precedence*).
3. Check each de-heaped entry for t-dominance against the skyline found so
   far — either by scanning the skyline list or, with the optimizations of
   Section IV-B enabled, through the dyadic-range cache and the main-memory
   R-tree of virtual points.  Because the check is *exact*, a non-dominated
   entry is immediately a true skyline point and is reported (optimal
   progressiveness); a dominated MBB prunes its entire subtree.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.mapping import TSSMapping
from repro.core.tdominance import TDominanceChecker, TDominanceWindow
from repro.core.virtual_rtree import VirtualPointIndex
from repro.data.dataset import Dataset
from repro.index.pager import DiskSimulator
from repro.index.rtree import RTree
from repro.order.encoding import DomainEncoding
from repro.skyline.base import RunClock, SkylineResult, SkylineStats
from repro.skyline.bbs import run_bbs


def stss_skyline(
    dataset: Dataset | None = None,
    *,
    encodings: Sequence[DomainEncoding] | None = None,
    mapping: TSSMapping | None = None,
    tree: RTree | None = None,
    frame=None,
    schema=None,
    use_frame: bool | None = None,
    use_virtual_rtree: bool = False,
    use_dyadic_cache: bool = True,
    max_entries: int = 32,
    disk: DiskSimulator | None = None,
    kernel=None,
    index=None,
) -> SkylineResult:
    """Compute the static skyline of a mixed TO/PO dataset with sTSS.

    Parameters
    ----------
    dataset:
        Input relation; its schema must contain at least one PO attribute
        (plain BBS covers the TO-only case).  May be ``None`` when ``frame``
        (or a pre-built ``mapping``) is supplied — sharded workers run sTSS
        over shipped column blocks without ever materializing records.
    encodings / mapping / tree:
        Pre-built artefacts may be supplied to amortize their construction
        across runs (the benchmark harness does this); by default everything
        is derived from the dataset.
    frame / schema / use_frame:
        Columnar inputs: an :class:`~repro.data.columns.EncodedFrame` to map
        (``schema`` supplies the effective preference DAGs when it differs
        from the frame's own), and the frame-path toggle forwarded to
        :class:`~repro.core.mapping.TSSMapping` (``None`` consults
        ``REPRO_FRAME``).
    use_virtual_rtree:
        Enable the main-memory R-tree of virtual points for t-dominance
        checks (Section IV-B, second optimization).  It cuts the number of
        pairwise checks by orders of magnitude, but in this pure-Python
        implementation a plain skyline-list scan has smaller constants at
        laptop scale, so the optimization is off by default (the paper's
        experiments also run TSS without it "for fairness").
    use_dyadic_cache:
        Enable the dyadic-range pre-computation of MBB interval sets
        (Section IV-B, first optimization).
    max_entries:
        R-tree fanout used when the data R-tree is built here.
    disk:
        Optional simulated disk for IO accounting (the paper charges 5 ms per
        node access).
    kernel:
        Dominance kernel backend for the skyline-list t-dominance checks
        (instance, name or ``None`` for the process default); see
        :mod:`repro.kernels`.
    index:
        Spatial index backend for the data R-tree and the virtual-point
        index (``"flat"``/``"pointer"`` or ``None`` for the process
        default); see :mod:`repro.index.registry`.

    Returns
    -------
    SkylineResult
        Skyline record ids (in discovery order, expanded from duplicate
        groups), work counters and the progressiveness log.
    """
    if mapping is None:
        mapping = TSSMapping(
            dataset, encodings, schema=schema, frame=frame, use_frame=use_frame
        )
    if tree is None:
        tree = mapping.build_rtree(max_entries=max_entries, disk=disk, index=index)

    stats = SkylineStats()
    clock = RunClock(stats, disk)
    checker = TDominanceChecker(mapping, use_dyadic_cache=use_dyadic_cache, kernel=kernel)
    skyline_store = checker.make_skyline_store()

    virtual_index: VirtualPointIndex | None = None
    if use_virtual_rtree:
        virtual_index = VirtualPointIndex(
            mapping.num_total_order, mapping.encodings, index=index
        )

    offset = mapping.to_offset

    def dominated_point(point, payload) -> bool:
        candidate = mapping.point(int(payload))
        if virtual_index is not None:
            stats.dominance_checks += 1
            return virtual_index.dominates_candidate_point(
                candidate.to_values, candidate.po_values
            )
        return checker.store_dominates_point(skyline_store, candidate, counter=stats)

    def dominated_rect(low, high) -> bool:
        if virtual_index is not None:
            range_sets = [
                checker.range_interval_set(
                    po_index, int(low[offset + po_index]), int(high[offset + po_index])
                )
                for po_index in range(mapping.num_partial_order)
            ]
            stats.dominance_checks += 1
            return virtual_index.dominates_candidate_mbb(low, high, range_sets)
        return checker.store_dominates_mbb(skyline_store, low, high, counter=stats)

    def on_result(point, payload) -> None:
        mapped = mapping.point(int(payload))
        skyline_store.append(mapped)
        if virtual_index is not None:
            virtual_index.insert_mapped_point(mapped)

    # Flat trees batch the t-dominance tests over a popped node's children
    # (one kernel call per expansion, suffix re-check at each child's pop);
    # the virtual-R-tree optimization answers per-item queries of its own
    # and keeps the per-item predicates instead.
    window = None
    if virtual_index is None and not isinstance(tree, RTree):
        window = TDominanceWindow(checker, skyline_store)

    ordered_points = run_bbs(
        tree,
        dominated_point=dominated_point,
        dominated_rect=dominated_rect,
        on_result=on_result,
        stats=stats,
        clock=clock,
        window=window,
    )
    clock.finish()

    skyline_ids = mapping.record_ids_for([int(p) for p in ordered_points])
    return SkylineResult(skyline_ids=skyline_ids, stats=stats, progress=clock.progress)
