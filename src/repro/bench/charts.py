"""Plain-text charts for experiment tables.

The paper's evaluation is presented as line plots.  In a terminal-only
environment the harness renders the same series as horizontal bar charts, one
bar per (x-value, method), so the relative magnitudes — who wins and by how
much — are visible at a glance without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bench.reporting import ExperimentTable

#: Character used for bars.
BAR_CHARACTER = "#"


def render_bar_chart(
    table: ExperimentTable,
    value_columns: Sequence[str],
    *,
    label_columns: Sequence[str] | None = None,
    width: int = 50,
) -> str:
    """Render selected numeric columns of an experiment table as bars.

    Parameters
    ----------
    table:
        The experiment table to visualize.
    value_columns:
        Numeric columns to draw (one bar per column per row), e.g.
        ``["SDC+ total (s)", "TSS total (s)"]``.
    label_columns:
        Columns used to label each row group; defaults to every non-value
        column that appears before the first value column.
    width:
        Width in characters of the longest bar.
    """
    if not table.rows:
        return f"{table.experiment_id}: (no rows)"
    if label_columns is None:
        label_columns = [c for c in table.columns if c not in value_columns][:2]

    values = [
        float(row.get(column, 0.0) or 0.0) for row in table.rows for column in value_columns
    ]
    maximum = max(values, default=0.0)
    scale = (width / maximum) if maximum > 0 else 0.0

    method_width = max(len(c) for c in value_columns)
    lines = [f"== {table.experiment_id}: {table.title} =="]
    for row in table.rows:
        label = ", ".join(f"{column}={row.get(column)}" for column in label_columns)
        lines.append(label)
        for column in value_columns:
            value = float(row.get(column, 0.0) or 0.0)
            bar = BAR_CHARACTER * max(1, int(round(value * scale))) if value > 0 else ""
            lines.append(f"  {column.ljust(method_width)} | {bar} {value:.4g}")
    return "\n".join(lines)


def default_value_columns(table: ExperimentTable) -> list[str]:
    """The columns a chart of this table should draw: the per-method totals/times."""
    preferred = [c for c in table.columns if c.endswith("total (s)") or c.endswith("time (s)")]
    if preferred:
        return preferred
    return [
        c
        for c in table.columns
        if table.rows and isinstance(table.rows[0].get(c), (int, float))
    ]


def render_experiment_chart(table: ExperimentTable, *, width: int = 50) -> str:
    """Chart an experiment table using its natural value columns."""
    columns = default_value_columns(table)
    if not columns:
        return table.to_text()
    return render_bar_chart(table, columns, width=width)
