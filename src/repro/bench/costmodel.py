"""The paper's cost model and the per-run measurement record.

Section VI-B: "the total processing time for the Independent data set after
charging 5 msec for each IO".  Total time therefore combines the measured CPU
time of the query with a fixed charge per simulated page access.  The ratio
of CPU over total time is also reported, mirroring the percentages printed
next to the markers in Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.index.pager import DEFAULT_IO_COST_SECONDS
from repro.skyline.base import SkylineResult, SkylineStats


def total_time_seconds(stats: SkylineStats, io_cost_seconds: float = DEFAULT_IO_COST_SECONDS) -> float:
    """CPU time plus the IO charge (the paper's total time)."""
    return stats.cpu_seconds + stats.total_ios * io_cost_seconds


@dataclass(slots=True)
class MeasuredRun:
    """One (algorithm, workload setting) measurement."""

    method: str
    parameters: dict[str, object] = field(default_factory=dict)
    skyline_size: int = 0
    cpu_seconds: float = 0.0
    io_count: int = 0
    io_cost_seconds: float = DEFAULT_IO_COST_SECONDS
    dominance_checks: int = 0
    nodes_expanded: int = 0
    false_hits_removed: int = 0
    progressive_times: dict[int, float] = field(default_factory=dict)

    @property
    def io_seconds(self) -> float:
        return self.io_count * self.io_cost_seconds

    @property
    def total_seconds(self) -> float:
        return self.cpu_seconds + self.io_seconds

    @property
    def cpu_fraction(self) -> float:
        """Share of the total time spent on CPU (the paper's percentages)."""
        total = self.total_seconds
        return self.cpu_seconds / total if total > 0 else 0.0

    @classmethod
    def from_result(
        cls,
        method: str,
        result: SkylineResult,
        *,
        parameters: dict[str, object] | None = None,
        progress_fractions: tuple[float, ...] = (),
    ) -> "MeasuredRun":
        """Build a measurement from a :class:`SkylineResult`."""
        stats = result.stats
        progressive = {
            int(round(fraction * 100)): result.time_to_fraction(fraction)
            for fraction in progress_fractions
        }
        return cls(
            method=method,
            parameters=dict(parameters or {}),
            skyline_size=len(result),
            cpu_seconds=stats.cpu_seconds,
            io_count=stats.total_ios,
            io_cost_seconds=stats.io_cost_seconds,
            dominance_checks=stats.dominance_checks,
            nodes_expanded=stats.nodes_expanded,
            false_hits_removed=stats.false_hits_removed,
            progressive_times=progressive,
        )
