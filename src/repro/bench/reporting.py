"""Plain-text experiment tables mirroring the paper's figures.

Every experiment in :mod:`repro.bench.experiments` returns an
:class:`ExperimentTable`: the figure/table it reproduces, the workload
parameters, the column names and one row per x-axis point (with one column
per method).  ``to_text()`` renders the same series the paper plots, and
``expected_shape`` records the qualitative outcome the paper reports so that
EXPERIMENTS.md can compare paper-vs-measured.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field


@dataclass(slots=True)
class ExperimentTable:
    """One reproduced table/figure: metadata plus rows of measurements."""

    experiment_id: str
    title: str
    parameters: dict[str, object] = field(default_factory=dict)
    columns: list[str] = field(default_factory=list)
    rows: list[dict[str, object]] = field(default_factory=list)
    expected_shape: str = ""

    def add_row(self, row: Mapping[str, object]) -> None:
        for column in row:
            if column not in self.columns:
                self.columns.append(column)
        self.rows.append(dict(row))

    def column_values(self, column: str) -> list[object]:
        return [row.get(column) for row in self.rows]

    def to_json_dict(self) -> dict[str, object]:
        """Machine-readable form (written next to the text tables by the
        benchmark harness so later PRs can track the perf trajectory)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "parameters": dict(self.parameters),
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "expected_shape": self.expected_shape,
        }

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_text(self) -> str:
        """Render as a fixed-width text table (the harness's console output)."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.parameters:
            rendered = ", ".join(f"{key}={value}" for key, value in self.parameters.items())
            lines.append(f"   parameters: {rendered}")
        if self.expected_shape:
            lines.append(f"   expected shape (paper): {self.expected_shape}")
        if not self.rows:
            lines.append("   (no rows)")
            return "\n".join(lines)
        widths = {
            column: max(len(column), *(len(_fmt(row.get(column))) for row in self.rows))
            for column in self.columns
        }
        header = " | ".join(column.ljust(widths[column]) for column in self.columns)
        separator = "-+-".join("-" * widths[column] for column in self.columns)
        lines.append(header)
        lines.append(separator)
        for row in self.rows:
            lines.append(
                " | ".join(_fmt(row.get(column)).ljust(widths[column]) for column in self.columns)
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
        if not self.rows:
            return f"*{self.experiment_id}: no rows*"
        header = "| " + " | ".join(self.columns) + " |"
        separator = "| " + " | ".join("---" for _ in self.columns) + " |"
        body = [
            "| " + " | ".join(_fmt(row.get(column)) for column in self.columns) + " |"
            for row in self.rows
        ]
        return "\n".join([header, separator, *body])


def _fmt(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_tables(tables: Iterable[ExperimentTable]) -> str:
    """Concatenate several experiment tables for console output."""
    return "\n\n".join(table.to_text() for table in tables)


def speedup_column(rows: Sequence[Mapping[str, float]], numerator: str, denominator: str) -> list[float]:
    """Per-row speedup factors ``numerator / denominator`` (0 when undefined)."""
    factors = []
    for row in rows:
        top = float(row.get(numerator, 0.0) or 0.0)
        bottom = float(row.get(denominator, 0.0) or 0.0)
        factors.append(top / bottom if bottom > 0 else 0.0)
    return factors
