"""One experiment per table/figure of the paper's evaluation (Section VI).

Each function builds the relevant workload sweep with a
:class:`~repro.bench.runner.BenchProfile`, runs TSS and SDC+ (and, where the
figure calls for it, other methods), and returns an
:class:`~repro.bench.reporting.ExperimentTable` with the same series the
paper plots.  The ``EXPERIMENTS`` registry maps experiment ids (``fig7`` ...
``fig14``, ``table1``, ``ablation_*``) to these functions; the CLI and the
pytest-benchmark suite both go through :func:`run_experiment`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.bench.reporting import ExperimentTable
from repro.bench.runner import PROGRESS_FRACTIONS, BenchProfile, DynamicRunner, StaticRunner
from repro.core.framework import skyline_records
from repro.data.dataset import Dataset
from repro.data.schema import PartialOrderAttribute, Schema, TotalOrderAttribute
from repro.exceptions import ExperimentError
from repro.order.builders import airline_preference_dag, airline_preference_dag_second

#: Both data distributions used throughout the evaluation.
DISTRIBUTIONS = ("independent", "anticorrelated")


# --------------------------------------------------------------------- #
# Table I — the flight reservation example of the introduction
# --------------------------------------------------------------------- #
PAPER_TICKETS = [
    ("p1", 1800, 0, "a"),
    ("p2", 2000, 0, "a"),
    ("p3", 1800, 0, "b"),
    ("p4", 1200, 1, "b"),
    ("p5", 1400, 1, "a"),
    ("p6", 1000, 1, "b"),
    ("p7", 1000, 1, "d"),
    ("p8", 1800, 1, "c"),
    ("p9", 500, 2, "d"),
    ("p10", 1200, 2, "c"),
]


def flight_dataset(airline_dag) -> tuple[Schema, Dataset, dict[int, str]]:
    """The 10-ticket example dataset of Figure 1 under a given airline order."""
    schema = Schema(
        [
            TotalOrderAttribute("price"),
            TotalOrderAttribute("stops"),
            PartialOrderAttribute("airline", airline_dag),
        ]
    )
    rows = [(price, stops, airline) for _, price, stops, airline in PAPER_TICKETS]
    dataset = Dataset(schema, rows)
    labels = {i: name for i, (name, *_rest) in enumerate(PAPER_TICKETS)}
    return schema, dataset, labels


def table1_flights(profile: BenchProfile | None = None) -> ExperimentTable:
    """Table I: skyline tickets under the two airline partial orders."""
    table = ExperimentTable(
        experiment_id="table1",
        title="Skyline tickets under different airline partial orders (Table I)",
        expected_shape="first order: {p1,p5,p6,p9,p10}; second order: {p3,p6,p7,p8,p9,p10}",
    )
    for label, dag in (
        ("a<b, a<c, b<d, c<d", airline_preference_dag()),
        ("b<a only", airline_preference_dag_second()),
    ):
        _, dataset, names = flight_dataset(dag)
        skyline = skyline_records(dataset, algorithm="stss")
        table.add_row(
            {
                "partial order": label,
                "skyline tickets": ", ".join(sorted((names[r.id] for r in skyline), key=lambda s: int(s[1:]))),
            }
        )
    return table


# --------------------------------------------------------------------- #
# Static experiments (Figures 7-11)
# --------------------------------------------------------------------- #
def _static_sweep(
    profile: BenchProfile,
    *,
    experiment_id: str,
    title: str,
    expected_shape: str,
    axis_name: str,
    axis_values: Sequence[object],
    spec_overrides: Callable[[object], dict[str, object]],
    distributions: Sequence[str] = DISTRIBUTIONS,
    methods: Sequence[str] = ("SDC+", "TSS"),
) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=experiment_id,
        title=title,
        parameters={"profile": profile.name, **profile.static_defaults},
        expected_shape=expected_shape,
    )
    for distribution in distributions:
        for axis_value in axis_values:
            runner = StaticRunner(profile.static_spec(distribution, **spec_overrides(axis_value)))
            measurements = runner.compare(methods)
            row: dict[str, object] = {"distribution": distribution, axis_name: axis_value}
            for method, run in measurements.items():
                row[f"{method} total (s)"] = run.total_seconds
                row[f"{method} cpu%"] = round(100 * run.cpu_fraction)
            reference = measurements[methods[0]].total_seconds
            target = measurements[methods[-1]].total_seconds
            row["speedup"] = reference / target if target > 0 else 0.0
            row["skyline"] = measurements[methods[-1]].skyline_size
            table.add_row(row)
    return table


def static_cardinality(profile: BenchProfile | None = None) -> ExperimentTable:
    """Figure 7: static total time vs data set cardinality."""
    profile = profile or BenchProfile.from_env()
    return _static_sweep(
        profile,
        experiment_id="fig7",
        title="Static: total time vs cardinality (Figure 7)",
        expected_shape="TSS ~1.7-3x faster than SDC+ at every N; both grow with N",
        axis_name="N",
        axis_values=profile.cardinalities,
        spec_overrides=lambda n: {"cardinality": int(n)},
    )


def static_dimensionality(profile: BenchProfile | None = None) -> ExperimentTable:
    """Figure 8: static total time vs (|TO|, |PO|) dimensionality."""
    profile = profile or BenchProfile.from_env()
    return _static_sweep(
        profile,
        experiment_id="fig8",
        title="Static: total time vs dimensionality (Figure 8)",
        expected_shape="TSS 1.4x-5.3x faster; gap grows with dimensionality, especially |PO|=2",
        axis_name="(|TO|,|PO|)",
        axis_values=profile.dimensionalities,
        spec_overrides=lambda dims: {
            "num_total_order": int(dims[0]),
            "num_partial_order": int(dims[1]),
        },
    )


def static_dag_height(profile: BenchProfile | None = None) -> ExperimentTable:
    """Figure 9: static total time vs DAG height."""
    profile = profile or BenchProfile.from_env()
    return _static_sweep(
        profile,
        experiment_id="fig9",
        title="Static: total time vs DAG height (Figure 9)",
        expected_shape="TSS advantage grows with DAG height (up to 5x/9x at the tallest DAGs)",
        axis_name="h",
        axis_values=profile.dag_heights,
        spec_overrides=lambda h: {"dag_height": int(h)},
    )


def static_dag_density(profile: BenchProfile | None = None) -> ExperimentTable:
    """Figure 10: static total time vs DAG density."""
    profile = profile or BenchProfile.from_env()
    return _static_sweep(
        profile,
        experiment_id="fig10",
        title="Static: total time vs DAG density (Figure 10)",
        expected_shape="TSS advantage grows with density (SDC+ loses more preferences to non-tree edges)",
        axis_name="d",
        axis_values=profile.dag_densities,
        spec_overrides=lambda d: {"dag_density": float(d)},
    )


def static_progressiveness(profile: BenchProfile | None = None) -> ExperimentTable:
    """Figure 11: time to retrieve a given percentage of the skyline."""
    profile = profile or BenchProfile.from_env()
    table = ExperimentTable(
        experiment_id="fig11",
        title="Static: progressiveness (Figure 11)",
        parameters={"profile": profile.name, **profile.static_defaults},
        expected_shape="TSS reports results steadily; SDC+ jumps per stratum (TSS ~9x/21x faster at 50%)",
    )
    for distribution in DISTRIBUTIONS:
        runner = StaticRunner(profile.static_spec(distribution))
        measurements = runner.compare(("SDC+", "TSS"), progress_fractions=PROGRESS_FRACTIONS)
        for percent in sorted(measurements["TSS"].progressive_times):
            table.add_row(
                {
                    "distribution": distribution,
                    "results retrieved (%)": percent,
                    "SDC+ time (s)": measurements["SDC+"].progressive_times[percent],
                    "TSS time (s)": measurements["TSS"].progressive_times[percent],
                }
            )
    return table


# --------------------------------------------------------------------- #
# Dynamic experiments (Figures 12-14)
# --------------------------------------------------------------------- #
def _dynamic_sweep(
    profile: BenchProfile,
    *,
    experiment_id: str,
    title: str,
    expected_shape: str,
    axis_name: str,
    axis_values: Sequence[object],
    spec_overrides: Callable[[object], dict[str, object]],
    distributions: Sequence[str] = DISTRIBUTIONS,
) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=experiment_id,
        title=title,
        parameters={"profile": profile.name, **profile.dynamic_defaults},
        expected_shape=expected_shape,
    )
    for distribution in distributions:
        for axis_value in axis_values:
            runner = DynamicRunner(profile.dynamic_spec(distribution, **spec_overrides(axis_value)))
            measurements = runner.compare(("SDC+", "TSS"))
            sdc, tss = measurements["SDC+"], measurements["TSS"]
            table.add_row(
                {
                    "distribution": distribution,
                    axis_name: axis_value,
                    "SDC+ total (s)": sdc.total_seconds,
                    "TSS total (s)": tss.total_seconds,
                    "SDC+ IOs": sdc.io_count,
                    "TSS IOs": tss.io_count,
                    "speedup": sdc.total_seconds / tss.total_seconds if tss.total_seconds > 0 else 0.0,
                    "skyline": tss.skyline_size,
                }
            )
    return table


def dynamic_cardinality(profile: BenchProfile | None = None) -> ExperimentTable:
    """Figure 12: dynamic total time vs data set cardinality."""
    profile = profile or BenchProfile.from_env()
    return _dynamic_sweep(
        profile,
        experiment_id="fig12",
        title="Dynamic: total time vs cardinality (Figure 12)",
        expected_shape="TSS ~7x faster at small N, growing beyond 100x at large N (SDC+ is IO bound)",
        axis_name="N",
        axis_values=profile.cardinalities,
        spec_overrides=lambda n: {"cardinality": int(n)},
    )


def dynamic_dimensionality(profile: BenchProfile | None = None) -> ExperimentTable:
    """Figure 13: dynamic total time vs dimensionality."""
    profile = profile or BenchProfile.from_env()
    return _dynamic_sweep(
        profile,
        experiment_id="fig13",
        title="Dynamic: total time vs dimensionality (Figure 13)",
        expected_shape="TSS up to 2 orders of magnitude faster at low dims, ~2x at (4,2)",
        axis_name="(|TO|,|PO|)",
        axis_values=profile.dimensionalities,
        spec_overrides=lambda dims: {
            "num_total_order": int(dims[0]),
            "num_partial_order": int(dims[1]),
        },
    )


def dynamic_dag_structure(profile: BenchProfile | None = None) -> ExperimentTable:
    """Figure 14: dynamic total time vs DAG height and density (anti-correlated)."""
    profile = profile or BenchProfile.from_env()
    table = ExperimentTable(
        experiment_id="fig14",
        title="Dynamic: total time vs DAG structure (Figure 14, anti-correlated)",
        parameters={"profile": profile.name, **profile.dynamic_defaults},
        expected_shape="TSS ~2 orders faster for small DAGs, shrinking for very large DAGs; "
        "both methods insensitive to density (TSS 20-40x faster)",
    )
    for axis_name, axis_values, overrides in (
        ("h", profile.dag_heights, lambda h: {"dag_height": int(h)}),
        ("d", profile.dag_densities, lambda d: {"dag_density": float(d)}),
    ):
        for axis_value in axis_values:
            runner = DynamicRunner(profile.dynamic_spec("anticorrelated", **overrides(axis_value)))
            measurements = runner.compare(("SDC+", "TSS"))
            sdc, tss = measurements["SDC+"], measurements["TSS"]
            table.add_row(
                {
                    "sweep": axis_name,
                    "value": axis_value,
                    "SDC+ total (s)": sdc.total_seconds,
                    "TSS total (s)": tss.total_seconds,
                    "speedup": sdc.total_seconds / tss.total_seconds if tss.total_seconds > 0 else 0.0,
                    "skyline": tss.skyline_size,
                }
            )
    return table


# --------------------------------------------------------------------- #
# Ablations of the design choices called out in DESIGN.md
# --------------------------------------------------------------------- #
def ablation_virtual_rtree(profile: BenchProfile | None = None) -> ExperimentTable:
    """sTSS with the main-memory virtual-point R-tree vs plain skyline-list scans."""
    profile = profile or BenchProfile.from_env()
    table = ExperimentTable(
        experiment_id="ablation_virtual_rtree",
        title="Ablation: t-dominance via virtual-point R-tree vs skyline-list scan",
        parameters={"profile": profile.name},
        expected_shape="the R-tree check cuts pairwise dominance checks by orders of magnitude "
        "(its CPU benefit needs larger skylines or a compiled implementation)",
    )
    for distribution in DISTRIBUTIONS:
        runner = StaticRunner(profile.static_spec(distribution))
        plain = runner.run("TSS")
        optimized = runner.run("TSS*")
        table.add_row(
            {
                "distribution": distribution,
                "TSS (list) cpu (s)": plain.cpu_seconds,
                "TSS* (rtree) cpu (s)": optimized.cpu_seconds,
                "TSS checks": plain.dominance_checks,
                "TSS* checks": optimized.dominance_checks,
                "skyline": plain.skyline_size,
            }
        )
    return table


def ablation_dtss_precompute(profile: BenchProfile | None = None) -> ExperimentTable:
    """dTSS with vs without per-group local-skyline pre-computation (Section V-B)."""
    profile = profile or BenchProfile.from_env()
    table = ExperimentTable(
        experiment_id="ablation_dtss_precompute",
        title="Ablation: dTSS local-skyline pre-computation",
        parameters={"profile": profile.name},
        expected_shape="pre-computed local skylines reduce per-query work and IOs",
    )
    for distribution in DISTRIBUTIONS:
        runner = DynamicRunner(profile.dynamic_spec(distribution))
        partial_orders = runner.query_mapping(query_seed=3)
        base = runner.run("TSS", partial_orders)
        precomputed = runner.run("TSS+local", partial_orders)
        table.add_row(
            {
                "distribution": distribution,
                "dTSS total (s)": base.total_seconds,
                "dTSS+local total (s)": precomputed.total_seconds,
                "dTSS points examined": base.dominance_checks,
                "dTSS+local points examined": precomputed.dominance_checks,
                "skyline": base.skyline_size,
            }
        )
    return table


#: Registry used by the CLI and the pytest-benchmark suite.
EXPERIMENTS: dict[str, Callable[[BenchProfile | None], ExperimentTable]] = {
    "table1": table1_flights,
    "fig7": static_cardinality,
    "fig8": static_dimensionality,
    "fig9": static_dag_height,
    "fig10": static_dag_density,
    "fig11": static_progressiveness,
    "fig12": dynamic_cardinality,
    "fig13": dynamic_dimensionality,
    "fig14": dynamic_dag_structure,
    "ablation_virtual_rtree": ablation_virtual_rtree,
    "ablation_dtss_precompute": ablation_dtss_precompute,
}


def run_experiment(experiment_id: str, profile: BenchProfile | None = None) -> ExperimentTable:
    """Run one registered experiment by id and return its table."""
    try:
        implementation = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from exc
    table = implementation(profile)
    # Label every table with the dominance kernel that produced it: the
    # batched backends charge whole blocks per check while the pure-Python
    # reference early-exits, so counter-based columns are only comparable
    # across runs that used the same backend.
    from repro.kernels import get_kernel

    table.parameters.setdefault("kernel", get_kernel().name)
    return table
