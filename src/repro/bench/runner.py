"""Workload execution: build indexes offline, run queries, measure.

The paper's experimental protocol is reproduced as closely as a pure-Python
environment allows:

* **Static experiments** (Section VI-B) — index structures are built offline;
  each method is then charged only its query-time work: measured CPU plus
  5 ms per R-tree node read on a freshly reset simulated disk.  ``TSS`` runs
  without the main-memory R-tree / dyadic-cache optimizations ("for fairness",
  as in the paper); ``TSS*`` enables them (used by the ablation benches).
* **Dynamic experiments** (Section VI-C) — dTSS's per-group R-trees are built
  once and reused across queries, whereas the SDC+ adaptation must re-map the
  data, re-partition it into strata (two extra passes over the data) and
  bulk-load its per-stratum R-trees for every query; all of that per-query
  work is charged.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.baselines.bbs_plus import bbs_plus_skyline
from repro.baselines.sdc import sdc_skyline
from repro.baselines.sdc_plus import sdc_plus_skyline
from repro.bench.costmodel import MeasuredRun
from repro.core.stss import stss_skyline
from repro.data.columns import EncodedFrame
from repro.data.workloads import WorkloadSpec
from repro.delta.frame import DeltaFrame
from repro.dynamic.dtss import DTSSIndex
from repro.dynamic.sdc_dynamic import sdc_plus_dynamic_skyline
from repro.exceptions import ExperimentError
from repro.index.pager import DEFAULT_IO_COST_SECONDS, DiskSimulator
from repro.order.dag import PartialOrderDAG
from repro.skyline.bnl import bnl_skyline
from repro.skyline.bruteforce import brute_force_skyline
from repro.skyline.sfs import sfs_skyline

#: Fractions of the skyline at which progressiveness is sampled (Figure 11).
PROGRESS_FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class BenchProfile:
    """Scaled-down (or paper-scale) parameter grid used by the experiments."""

    name: str
    cardinalities: tuple[int, ...]
    default_cardinality: int
    dimensionalities: tuple[tuple[int, int], ...]
    dag_heights: tuple[int, ...]
    dag_densities: tuple[float, ...]
    static_defaults: dict[str, object]
    dynamic_defaults: dict[str, object]

    @classmethod
    def quick(cls) -> "BenchProfile":
        """Small grid: every experiment finishes in seconds on a laptop."""
        return cls(
            name="quick",
            cardinalities=(100, 250, 500, 1000, 2000),
            default_cardinality=800,
            dimensionalities=((2, 1), (3, 1), (4, 1), (2, 2), (3, 2), (4, 2)),
            dag_heights=(2, 3, 4, 5, 6),
            dag_densities=(0.2, 0.4, 0.6, 0.8, 1.0),
            static_defaults={"num_total_order": 2, "num_partial_order": 2, "dag_height": 5, "dag_density": 0.8},
            dynamic_defaults={"num_total_order": 3, "num_partial_order": 1, "dag_height": 4, "dag_density": 0.8},
        )

    @classmethod
    def full(cls) -> "BenchProfile":
        """Larger grid preserving the paper's parameter ratios (minutes per figure)."""
        return cls(
            name="full",
            cardinalities=(200, 1000, 2000, 10_000, 20_000),
            default_cardinality=2000,
            dimensionalities=((2, 1), (3, 1), (4, 1), (2, 2), (3, 2), (4, 2)),
            dag_heights=(2, 4, 6, 8, 10),
            dag_densities=(0.2, 0.4, 0.6, 0.8, 1.0),
            static_defaults={"num_total_order": 2, "num_partial_order": 2, "dag_height": 8, "dag_density": 0.8},
            dynamic_defaults={"num_total_order": 3, "num_partial_order": 1, "dag_height": 6, "dag_density": 0.8},
        )

    @classmethod
    def from_env(cls, variable: str = "REPRO_BENCH_PROFILE") -> "BenchProfile":
        """Pick the profile from an environment variable (default: quick)."""
        from repro.config import env_bench_profile

        requested = (env_bench_profile(variable) or "quick").lower()
        if requested == "full":
            return cls.full()
        if requested == "quick":
            return cls.quick()
        raise ExperimentError(f"unknown benchmark profile {requested!r} (expected 'quick' or 'full')")

    def static_spec(self, distribution: str, **overrides) -> WorkloadSpec:
        parameters = {
            "cardinality": self.default_cardinality,
            **self.static_defaults,
            **overrides,
        }
        return WorkloadSpec(name=f"{self.name}-static-{distribution}", distribution=distribution, **parameters)

    def dynamic_spec(self, distribution: str, **overrides) -> WorkloadSpec:
        parameters = {
            "cardinality": self.default_cardinality,
            **self.dynamic_defaults,
            **overrides,
        }
        return WorkloadSpec(name=f"{self.name}-dynamic-{distribution}", distribution=distribution, **parameters)


# --------------------------------------------------------------------- #
# Static experiments
# --------------------------------------------------------------------- #
class StaticRunner:
    """Build one static workload and measure any number of methods on it."""

    #: Methods available to static experiments.
    METHODS = ("TSS", "TSS*", "SDC+", "SDC", "BBS+", "BNL", "SFS", "BRUTE")

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        io_cost_seconds: float = DEFAULT_IO_COST_SECONDS,
        max_entries: int = 32,
    ) -> None:
        self.spec = spec
        self.io_cost_seconds = io_cost_seconds
        self.max_entries = max_entries
        self.schema, self.dataset = spec.build()

    def run(self, method: str, *, progress_fractions: Sequence[float] = ()) -> MeasuredRun:
        """Run one method on the workload and return its measurement."""
        method = method.upper()
        disk = DiskSimulator(io_cost_seconds=self.io_cost_seconds)
        if method == "TSS":
            # The paper's fairness setting: dyadic-range pre-computation on,
            # main-memory virtual-point R-tree off (Section VI-B).
            result = stss_skyline(
                self.dataset,
                use_virtual_rtree=False,
                use_dyadic_cache=True,
                max_entries=self.max_entries,
                disk=disk,
            )
        elif method == "TSS*":
            result = stss_skyline(
                self.dataset,
                use_virtual_rtree=True,
                use_dyadic_cache=True,
                max_entries=self.max_entries,
                disk=disk,
            )
        elif method == "SDC+":
            result = sdc_plus_skyline(self.dataset, max_entries=self.max_entries, disk=disk)
        elif method == "SDC":
            result = sdc_skyline(self.dataset, max_entries=self.max_entries, disk=disk)
        elif method == "BBS+":
            result = bbs_plus_skyline(self.dataset, max_entries=self.max_entries, disk=disk)
        elif method == "BNL":
            result = bnl_skyline(self.dataset)
        elif method == "SFS":
            result = sfs_skyline(self.dataset)
        elif method == "BRUTE":
            result = brute_force_skyline(self.dataset)
        else:
            raise ExperimentError(f"unknown static method {method!r}; expected one of {self.METHODS}")
        return MeasuredRun.from_result(
            method,
            result,
            parameters=self.spec.describe(),
            progress_fractions=tuple(progress_fractions),
        )

    def compare(
        self, methods: Sequence[str] = ("SDC+", "TSS"), *, progress_fractions: Sequence[float] = ()
    ) -> dict[str, MeasuredRun]:
        return {m: self.run(m, progress_fractions=progress_fractions) for m in methods}


# --------------------------------------------------------------------- #
# Dynamic experiments
# --------------------------------------------------------------------- #
class DynamicRunner:
    """Build one dynamic workload (grouped indexes built offline) and run queries.

    Anchored on the columnar delta plane: the workload is encoded once into
    an :class:`EncodedFrame`, wrapped in a live :class:`DeltaFrame`, and the
    dTSS group structures are built column-wise over it.  :meth:`mutate`
    applies live inserts/deletes and refreshes dTSS incrementally (only the
    touched PO-value groups), while the SDC+ adaptation re-materializes and
    re-partitions the live rows per query — the asymmetry Figures 12-14
    measure.
    """

    METHODS = ("TSS", "TSS+local", "SDC+",)

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        io_cost_seconds: float = DEFAULT_IO_COST_SECONDS,
        max_entries: int = 32,
    ) -> None:
        self.spec = spec
        self.io_cost_seconds = io_cost_seconds
        self.max_entries = max_entries
        self.schema, self.dataset = spec.build()
        self.data_dags = [attribute.dag for attribute in self.schema.partial_order_attributes]
        self.frame = EncodedFrame.from_dataset(self.dataset)
        self.delta = DeltaFrame(self.frame)
        # dTSS group structures are built offline and reused by every query.
        self._dtss_disk = DiskSimulator(io_cost_seconds=io_cost_seconds)
        self.dtss_index = DTSSIndex(
            self.delta, max_entries=max_entries, disk=self._dtss_disk, precompute_local_skylines=False
        )

    # ------------------------------------------------------------------ #
    # Live mutations (delta plane)
    # ------------------------------------------------------------------ #
    def mutate(self, inserts: Sequence[Sequence] = (), deletes: Sequence[int] = ()) -> list[int]:
        """Apply live mutations and refresh dTSS incrementally; returns new ids."""
        ids = self.delta.insert_rows(inserts) if inserts else []
        if deletes:
            self.delta.delete_ids(deletes)
        self.dtss_index.sync()
        return ids

    # ------------------------------------------------------------------ #
    # Query generation
    # ------------------------------------------------------------------ #
    def query_partial_orders(self, query_seed: int) -> list[PartialOrderDAG]:
        """A random dynamic preference specification over the data's PO values.

        The query keeps the same value domains but re-draws the preference
        edges: values are randomly ranked and each forward pair becomes a
        preference with a probability calibrated to the data DAG's density.
        """
        orders: list[PartialOrderDAG] = []
        for attr_index, dag in enumerate(self.data_dags):
            rng = random.Random(query_seed * 1009 + attr_index)
            values = list(dag.values)
            rng.shuffle(values)
            pairs = len(values) * (len(values) - 1) / 2 or 1.0
            probability = min(0.5, dag.num_edges / pairs * 2.0)
            edges = [
                (values[i], values[j])
                for i in range(len(values))
                for j in range(i + 1, len(values))
                if rng.random() < probability
            ]
            orders.append(PartialOrderDAG(dag.values, edges))
        return orders

    def query_mapping(self, query_seed: int) -> dict[str, PartialOrderDAG]:
        names = [attribute.name for attribute in self.schema.partial_order_attributes]
        return dict(zip(names, self.query_partial_orders(query_seed)))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        method: str,
        partial_orders: Mapping[str, PartialOrderDAG] | Sequence[PartialOrderDAG] | None = None,
        *,
        query_seed: int = 1,
        progress_fractions: Sequence[float] = (),
    ) -> MeasuredRun:
        """Answer one dynamic query with the given method and measure it."""
        method = method.upper()
        if partial_orders is None:
            partial_orders = self.query_mapping(query_seed)
        if method in ("TSS", "TSS+LOCAL"):
            # dTSS reuses its pre-built group R-trees; only query-time IO counts.
            result = self.dtss_index.query(
                partial_orders,
                use_virtual_rtree=False,
                use_local_skylines=(method == "TSS+LOCAL"),
            )
        elif method == "SDC+":
            disk = DiskSimulator(io_cost_seconds=self.io_cost_seconds)
            result = sdc_plus_dynamic_skyline(
                self.delta, partial_orders, max_entries=self.max_entries, disk=disk
            )
        else:
            raise ExperimentError(f"unknown dynamic method {method!r}; expected one of {self.METHODS}")
        return MeasuredRun.from_result(
            method,
            result,
            parameters=self.spec.describe(),
            progress_fractions=tuple(progress_fractions),
        )

    def compare(
        self,
        methods: Sequence[str] = ("SDC+", "TSS"),
        *,
        query_seed: int = 1,
        progress_fractions: Sequence[float] = (),
    ) -> dict[str, MeasuredRun]:
        partial_orders = self.query_mapping(query_seed)
        return {
            m: self.run(m, partial_orders, progress_fractions=progress_fractions) for m in methods
        }
