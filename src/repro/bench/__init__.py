"""Benchmark harness: regenerate every table and figure of the paper.

* :mod:`~repro.bench.costmodel` — the paper's total-time metric (measured CPU
  plus 5 ms per charged IO) and the per-run measurement container.
* :mod:`~repro.bench.runner` — build a workload once, build each competitor's
  index structures offline, run the queries and collect measurements.
* :mod:`~repro.bench.reporting` — plain-text tables mirroring the figures'
  series.
* :mod:`~repro.bench.experiments` — one function per table/figure of
  Section VI, each returning an :class:`~repro.bench.reporting.ExperimentTable`.
"""

from repro.bench.charts import render_bar_chart, render_experiment_chart
from repro.bench.costmodel import MeasuredRun, total_time_seconds
from repro.bench.experiments import (
    EXPERIMENTS,
    run_experiment,
)
from repro.bench.reporting import ExperimentTable
from repro.bench.runner import BenchProfile, StaticRunner, DynamicRunner

__all__ = [
    "MeasuredRun",
    "total_time_seconds",
    "ExperimentTable",
    "BenchProfile",
    "StaticRunner",
    "DynamicRunner",
    "EXPERIMENTS",
    "run_experiment",
    "render_bar_chart",
    "render_experiment_chart",
]
