"""The :class:`DominanceKernel` interface and its store abstractions.

A kernel answers the dominance-shaped questions that sit on the hot path of
every skyline algorithm in this library:

* **vector dominance** — classical componentwise ``<=`` / ``<`` tests between
  numeric vectors (BBS, SaLSa, the baselines' m-dominance);
* **record dominance** — ground-truth dominance over mixed TO/PO schemas via
  precomputed preference matrices (BNL, SFS, LESS, cross-examination);
* **t-dominance** — the paper's exact relation over TSS mapped points via
  t-preference matrices, interval-containment tests and minimum-bounding-
  interval prefilters (sTSS, dTSS).

Kernels expose *stores* — growing collections queried against one candidate
at a time (the universal access pattern of skyline loops: a skyline/window
list grows while candidates stream past it) — plus a few stateless batch
operations.  Three backends implement the interface:
:class:`~repro.kernels.purepython.PurePythonKernel` (reference, always
available), :class:`~repro.kernels.numpy_kernel.NumpyKernel` (vectorized)
and :class:`~repro.kernels.jit_kernel.JitKernel` (numba-compiled fused
loops, falls back to numpy when numba is absent).

Every query takes an optional ``counter`` (any object with a
``dominance_checks`` attribute, usually a
:class:`~repro.skyline.base.SkylineStats`); it is charged one check per
member comparison the query logically performs.  Batched backends charge the
full block size because they evaluate all comparisons at once, while the
reference backend charges only the comparisons it reaches before an early
exit — callers must therefore treat the counter as an upper-bound work
measure, not an exact trace.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.kernels.tables import RecordTables, TDominanceTables
from repro.order.intervals import Interval, IntervalSet


def charge(counter, checks: int) -> None:
    """Add ``checks`` dominance checks to ``counter`` (no-op when ``None``)."""
    if counter is not None and checks:
        counter.dominance_checks += checks


class VectorStore(ABC):
    """A growing block of numeric vectors (smaller is better everywhere)."""

    @abstractmethod
    def append(self, vector: Sequence[float]) -> None: ...

    def extend(self, rows) -> None:
        """Bulk-append a block of vectors (rows of a matrix or row tuples).

        The reference implementation loops :meth:`append`; vectorized
        backends override it with one block copy.
        """
        for row in rows:
            self.append(row)

    def block_dominated_mask(self, targets, counter=None) -> list[bool]:
        """Per target row: is it strictly dominated by any member?"""
        return [self.any_dominates(row, counter=counter) for row in targets]

    def mbr_block_dominated(
        self, corners, counter=None, *, exclude_equal: bool = False
    ) -> list[bool]:
        """Per MBR low corner: is it weakly dominated by any member?

        The columnar BBS primitive: a popped node's children are tested
        against the dominance window in one call (a weakly dominated best
        corner prunes the whole subtree).  The reference implementation
        loops :meth:`any_weakly_dominates` (keeping its early exits);
        vectorized backends override it with one block comparison.
        """
        return [
            self.any_weakly_dominates(corner, counter, exclude_equal=exclude_equal)
            for corner in corners
        ]

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def compress(self, keep: Sequence[bool]) -> None:
        """Drop members whose ``keep`` flag is false (window eviction)."""

    @abstractmethod
    def any_dominates(
        self, candidate: Sequence[float], counter=None, *, start: int = 0
    ) -> bool:
        """Does any member at index >= ``start`` strictly dominate ``candidate``?

        ``start`` lets the columnar BBS loop re-examine only the members
        appended after a cached block verdict (the store must be append-only
        between the two tests — true for every skyline window, whose members
        are final).  The default of 0 is the plain whole-store test.
        """

    @abstractmethod
    def any_weakly_dominates(
        self,
        corner: Sequence[float],
        counter=None,
        *,
        exclude_equal: bool = False,
        start: int = 0,
    ) -> bool:
        """Does any member at index >= ``start`` weakly dominate ``corner``?

        Used to prune MBBs; with ``exclude_equal`` a member equal to
        ``corner`` does not count.  See :meth:`any_dominates` for ``start``.
        """


class RecordStore(ABC):
    """A growing block of records under ground-truth TO/PO dominance.

    Members are ``(to_values, po_codes)`` pairs; encode PO values once with
    :meth:`~repro.kernels.tables.RecordTables.encode_po`.
    """

    @abstractmethod
    def append(self, to_values: Sequence[float], po_codes: Sequence[int]) -> None: ...

    def extend(self, to_rows, code_rows) -> None:
        """Bulk-append pre-encoded rows (column blocks or row sequences).

        The reference implementation loops :meth:`append`; vectorized
        backends override it with one block copy per column group.
        """
        for to_values, po_codes in zip(to_rows, code_rows):
            self.append(to_values, po_codes)

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def compress(self, keep: Sequence[bool]) -> None:
        """Drop members whose ``keep`` flag is false (window eviction)."""

    @abstractmethod
    def any_dominates(
        self, to_values: Sequence[float], po_codes: Sequence[int], counter=None
    ) -> bool:
        """Does any member dominate the candidate record?"""

    @abstractmethod
    def dominance_masks(
        self, to_values: Sequence[float], po_codes: Sequence[int], counter=None
    ) -> tuple[bool, list[bool]]:
        """BNL's two-way window test in one pass.

        Returns ``(candidate_is_dominated, dominated_by_candidate)`` where the
        second element flags every member the candidate dominates (evictees).
        """

    def block_dominated_mask(
        self,
        targets: Sequence[tuple[Sequence[float], Sequence[int]]],
        counter=None,
    ) -> list[bool]:
        """Per target: is it dominated by any *member* of this store?

        The merge-window primitive of the sort-merge cross-shard merge: the
        store is the growing window of confirmed global-skyline records, and
        each incoming chunk of the key-ordered stream is tested against the
        whole window in one call.  The reference implementation loops
        :meth:`any_dominates` (keeping its early exits); vectorized backends
        override it with one block comparison.
        """
        return [
            self.any_dominates(to_values, po_codes, counter=counter)
            for to_values, po_codes in targets
        ]

    def block_dominated_columns(self, to_rows, code_rows, counter=None) -> list[bool]:
        """Columnar twin of :meth:`block_dominated_mask`.

        Takes the targets as parallel column blocks (one TO row block, one
        code row block — e.g. slices of an
        :class:`~repro.data.columns.EncodedFrame`) so vectorized backends can
        skip the per-row pairing entirely.
        """
        return [
            self.any_dominates(to_values, po_codes, counter=counter)
            for to_values, po_codes in zip(to_rows, code_rows)
        ]


class TDominanceStore(ABC):
    """A growing skyline of TSS mapped points under exact t-dominance."""

    @abstractmethod
    def append(self, to_values: Sequence[float], po_codes: Sequence[int]) -> None: ...

    def extend(self, to_rows, code_rows) -> None:
        """Bulk-append pre-encoded mapped points (see :meth:`RecordStore.extend`)."""
        for to_values, po_codes in zip(to_rows, code_rows):
            self.append(to_values, po_codes)

    def block_weakly_dominated(self, to_rows, code_rows, counter=None) -> list[bool]:
        """Per row: is it weakly t-dominated by any member (columnar blocks)?"""
        return [
            self.any_weakly_dominates(to_values, po_codes, counter=counter)
            for to_values, po_codes in zip(to_rows, code_rows)
        ]

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def any_weakly_dominates(
        self,
        to_values: Sequence[float],
        po_codes: Sequence[int],
        counter=None,
        *,
        start: int = 0,
    ) -> bool:
        """Is the candidate weakly t-dominated by a member at index >= ``start``?

        Weak t-dominance (at least as good on TO, t-preferred-or-equal on PO)
        is exact strict t-dominance for distinct value combinations, which the
        duplicate grouping of :class:`~repro.core.mapping.TSSMapping`
        guarantees.  ``start`` lets the windowed sTSS loop re-examine only the
        skyline points appended after a cached block verdict (the store is
        append-only, so earlier verdicts stay valid); the default of 0 is the
        plain whole-store test.
        """

    @abstractmethod
    def mbb_candidates(
        self,
        to_low: Sequence[float],
        ordinal_low: Sequence[float],
        range_mbis: Sequence[tuple[float, float]],
        counter=None,
        *,
        start: int = 0,
    ) -> list[int]:
        """Member indices >= ``start`` that may t-dominate an MBB.

        A member survives the necessary conditions when it is at least as
        good as the MBB's best corner on every TO dimension, its ordinal does
        not exceed the MBB's low ordinal per PO attribute, and its interval
        set's minimum bounding interval contains the MBB range set's MBI per
        PO attribute (``range_mbis`` holds one ``(low, high)`` pair per
        attribute; pass ``(inf, -inf)`` to disable the MBI condition for an
        attribute).  Returned indices are absolute store positions.  The
        exact interval-containment verdict is left to
        :meth:`DominanceKernel.covers_many` on the survivors.  See
        :meth:`any_weakly_dominates` for ``start``.
        """

    def mbb_block_candidates(
        self,
        to_lows,
        ordinal_lows,
        range_mbis_list,
        counter=None,
    ) -> list[list[int]]:
        """Per MBB: the :meth:`mbb_candidates` survivor indices, batched.

        The sTSS expansion primitive: a popped node's children are screened
        against the whole skyline store in one call (``to_lows``,
        ``ordinal_lows`` and ``range_mbis_list`` are parallel sequences, one
        entry per child MBB).  The reference implementation loops
        :meth:`mbb_candidates`; vectorized backends override it with one
        members-by-MBBs comparison.
        """
        return [
            self.mbb_candidates(to_low, ordinal_low, range_mbis, counter=counter)
            for to_low, ordinal_low, range_mbis in zip(
                to_lows, ordinal_lows, range_mbis_list
            )
        ]


class DominanceKernel(ABC):
    """Factory for dominance stores plus stateless batch operations."""

    #: Registry name of the backend (``"purepython"`` / ``"numpy"``).
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Store factories
    # ------------------------------------------------------------------ #
    @abstractmethod
    def vector_store(self, dimensions: int) -> VectorStore: ...

    @abstractmethod
    def record_store(self, tables: RecordTables) -> RecordStore: ...

    @abstractmethod
    def tdominance_store(self, tables: TDominanceTables) -> TDominanceStore: ...

    # ------------------------------------------------------------------ #
    # Bulk-load constructors (columnar ingest)
    # ------------------------------------------------------------------ #
    def load_vector_store(self, dimensions: int, rows) -> VectorStore:
        """A vector store pre-loaded with a whole block of rows."""
        store = self.vector_store(dimensions)
        store.extend(rows)
        return store

    def load_record_store(self, tables: RecordTables, to_rows, code_rows) -> RecordStore:
        """A record store pre-loaded with parallel TO/code row blocks."""
        store = self.record_store(tables)
        store.extend(to_rows, code_rows)
        return store

    def load_tdominance_store(
        self, tables: TDominanceTables, to_rows, code_rows
    ) -> TDominanceStore:
        """A t-dominance store pre-loaded with parallel TO/code row blocks."""
        store = self.tdominance_store(tables)
        store.extend(to_rows, code_rows)
        return store

    # ------------------------------------------------------------------ #
    # Stateless batch operations
    # ------------------------------------------------------------------ #
    @abstractmethod
    def pareto_mask(self, rows: Sequence[Sequence[float]]) -> list[bool]:
        """Skyline membership mask of a block of numeric vectors.

        ``mask[i]`` is true iff no other row strictly dominates row ``i``
        (duplicates all survive).
        """

    @abstractmethod
    def record_block_dominated_mask(
        self,
        tables: RecordTables,
        dominators: Sequence[tuple[Sequence[float], Sequence[int]]],
        targets: Sequence[tuple[Sequence[float], Sequence[int]]],
        counter=None,
    ) -> list[bool]:
        """Per target: is it dominated by any dominator (ground truth)?

        Used by the baselines' cross-examination, where ``dominators`` and
        ``targets`` may be the same block (strictness makes self-comparison
        harmless for distinct value combinations).
        """

    def record_block_dominated_columns(
        self,
        tables: RecordTables,
        dominator_to,
        dominator_codes,
        target_to,
        target_codes,
        counter=None,
    ) -> list[bool]:
        """Columnar twin of :meth:`record_block_dominated_mask`.

        Both blocks arrive as parallel TO/code column blocks (e.g.
        :class:`~repro.data.columns.EncodedFrame` slices); the reference
        implementation pairs the rows up, vectorized backends consume the
        blocks directly.
        """
        return self.record_block_dominated_mask(
            tables,
            list(zip(dominator_to, dominator_codes)),
            list(zip(target_to, target_codes)),
            counter=counter,
        )

    @abstractmethod
    def covers_many(
        self, cover_sets: Sequence[IntervalSet], target: IntervalSet
    ) -> list[bool]:
        """Per cover set: does it contain every interval of ``target``?

        The batched form of :meth:`IntervalSet.covers
        <repro.order.intervals.IntervalSet.covers>` — one interval-containment
        matrix between all member intervals and the target's intervals.
        """

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def warmup(self) -> bool:
        """Prime backend machinery ahead of the first query.

        Compiled tiers override this to trigger JIT compilation (or load a
        compile cache) so first-query latency is not charged to the query
        itself; the engine times the call into
        ``phase_seconds["kernel_warmup"]``.  Returns whether any work was
        done.  Interpreted backends have nothing to warm.
        """
        return False

    def bounding_intervals(
        self, sets: Sequence[IntervalSet]
    ) -> list[Interval]:
        """Minimum bounding interval of each (non-empty, normalized) set."""
        return [
            Interval(s.intervals[0].low, s.intervals[-1].high) for s in sets
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
