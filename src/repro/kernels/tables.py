"""Precomputed lookup tables that dominance kernels operate on.

The kernels (see :mod:`repro.kernels.base`) are deliberately ignorant of
schemas, DAGs and interval encodings: they work on integer codes and boolean
preference matrices.  This module bridges the gap once per dataset/query:

* :class:`PreferenceTable` — one PO attribute: its domain values, a value-to-
  code mapping and the dense ``pref_or_equal[better][worse]`` boolean matrix.
* :class:`RecordTables` — everything needed for *ground-truth* record
  dominance over a mixed TO/PO schema (used by BNL/SFS/LESS and the
  baselines' cross-examination).
* :class:`TDominanceTables` — everything needed for batched *t-dominance*
  over mapped points: t-preference matrices, postorder numbers, per-value
  interval sets and their minimum bounding intervals (MBIs), which serve as a
  cheap vectorizable necessary condition for interval-set containment.

Tables carry a ``scratch`` dict so a backend can stash converted
representations (e.g. NumPy arrays) and share them across stores built from
the same tables.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field

from repro.data.schema import Schema
from repro.order.dag import PartialOrderDAG
from repro.order.encoding import DomainEncoding
from repro.order.intervals import IntervalSet

Value = Hashable


@dataclass(frozen=True)
class PreferenceTable:
    """Dense preferred-or-equal matrix of one partially ordered domain."""

    values: tuple[Value, ...]
    code_of: dict[Value, int]
    #: ``pref_or_equal[i][j]`` — value ``i`` is preferred over or equal to ``j``.
    pref_or_equal: tuple[tuple[bool, ...], ...]

    @classmethod
    def from_dag(cls, dag: PartialOrderDAG) -> "PreferenceTable":
        """Ground-truth preference matrix from DAG reachability."""
        values = dag.values
        rows = []
        for i, value in enumerate(values):
            descendants = dag.descendants(value)
            rows.append(
                tuple(i == j or other in descendants for j, other in enumerate(values))
            )
        return cls(
            values=values,
            code_of={value: i for i, value in enumerate(values)},
            pref_or_equal=tuple(rows),
        )

    @classmethod
    def from_encoding(cls, encoding: DomainEncoding) -> "PreferenceTable":
        """Exact t-preference matrix (interval containment; coincides with
        reachability because the interval sets are exact)."""
        values = encoding.order
        posts = [encoding.post_of(value) for value in values]
        rows = []
        for i, value in enumerate(values):
            interval_set = encoding.interval_set(value)
            rows.append(
                tuple(
                    i == j or interval_set.contains_point(posts[j])
                    for j in range(len(values))
                )
            )
        return cls(
            values=values,
            code_of={value: i for i, value in enumerate(values)},
            pref_or_equal=tuple(rows),
        )

    @property
    def cardinality(self) -> int:
        return len(self.values)


@dataclass
class RecordTables:
    """Tables for ground-truth record dominance over a mixed TO/PO schema."""

    num_total_order: int
    attributes: tuple[PreferenceTable, ...]
    scratch: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_schema(cls, schema: Schema) -> "RecordTables":
        return cls(
            num_total_order=schema.num_total_order,
            attributes=tuple(
                PreferenceTable.from_dag(attribute.dag)
                for attribute in schema.partial_order_attributes
            ),
        )

    @classmethod
    def from_encodings(
        cls, num_total_order: int, encodings: Sequence[DomainEncoding]
    ) -> "RecordTables":
        """Ground-truth tables keyed by the encodings' domains (baselines)."""
        return cls(
            num_total_order=num_total_order,
            attributes=tuple(
                PreferenceTable.from_dag(encoding.dag) for encoding in encodings
            ),
        )

    @property
    def num_partial_order(self) -> int:
        return len(self.attributes)

    def encode_po(self, po_values: Sequence[Value]) -> tuple[int, ...]:
        return tuple(
            table.code_of[value] for table, value in zip(self.attributes, po_values)
        )


@dataclass
class TDominanceTables:
    """Tables for batched t-dominance over TSS mapped points.

    Codes are positions in the encoding's topological order (``ordinal - 1``),
    so a mapped point's PO code is derivable from its ordinal coordinate.
    """

    num_total_order: int
    attributes: tuple[PreferenceTable, ...]
    #: Per attribute, per code: the value's spanning-tree postorder number.
    posts: tuple[tuple[int, ...], ...]
    #: Per attribute, per code: the value's exact interval set.
    interval_sets: tuple[tuple[IntervalSet, ...], ...]
    #: Per attribute, per code: low/high ends of the minimum bounding interval.
    mbi_low: tuple[tuple[int, ...], ...]
    mbi_high: tuple[tuple[int, ...], ...]
    scratch: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_encodings(
        cls, num_total_order: int, encodings: Sequence[DomainEncoding]
    ) -> "TDominanceTables":
        attributes = []
        posts = []
        interval_sets = []
        mbi_low = []
        mbi_high = []
        for encoding in encodings:
            attributes.append(PreferenceTable.from_encoding(encoding))
            posts.append(tuple(encoding.post_of(value) for value in encoding.order))
            sets = tuple(encoding.interval_set(value) for value in encoding.order)
            interval_sets.append(sets)
            mbi_low.append(tuple(s.intervals[0].low for s in sets))
            mbi_high.append(tuple(s.intervals[-1].high for s in sets))
        return cls(
            num_total_order=num_total_order,
            attributes=tuple(attributes),
            posts=tuple(posts),
            interval_sets=tuple(interval_sets),
            mbi_low=tuple(mbi_low),
            mbi_high=tuple(mbi_high),
        )

    @property
    def num_partial_order(self) -> int:
        return len(self.attributes)

    def encode_po(self, po_values: Sequence[Value]) -> tuple[int, ...]:
        return tuple(
            table.code_of[value] for table, value in zip(self.attributes, po_values)
        )
