"""The reference dominance kernel: plain Python loops, no dependencies.

Semantics-defining backend: every other backend must agree with this one on
all verdicts (the property tests in ``tests/kernels`` assert exactly that).
Queries early-exit where possible, so the ``counter`` records the number of
member comparisons actually reached.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.kernels.base import (
    DominanceKernel,
    RecordStore,
    TDominanceStore,
    VectorStore,
    charge,
)
from repro.kernels.tables import RecordTables, TDominanceTables
from repro.order.intervals import IntervalSet


def _dominates(p: Sequence[float], q: Sequence[float]) -> bool:
    strictly = False
    for a, b in zip(p, q):
        if a > b:
            return False
        if a < b:
            strictly = True
    return strictly


def _record_dominates(
    tables: RecordTables,
    p_to: Sequence[float],
    p_codes: Sequence[int],
    q_to: Sequence[float],
    q_codes: Sequence[int],
) -> bool:
    strictly = False
    for a, b in zip(p_to, q_to):
        if a > b:
            return False
        if a < b:
            strictly = True
    for table, code_p, code_q in zip(tables.attributes, p_codes, q_codes):
        if code_p == code_q:
            continue
        if table.pref_or_equal[code_p][code_q]:
            strictly = True
        else:
            return False
    return strictly


class PureVectorStore(VectorStore):
    def __init__(self, dimensions: int) -> None:
        self.dimensions = dimensions
        self._rows: list[tuple[float, ...]] = []

    def append(self, vector: Sequence[float]) -> None:
        self._rows.append(tuple(vector))

    def __len__(self) -> int:
        return len(self._rows)

    def compress(self, keep: Sequence[bool]) -> None:
        self._rows = [row for row, flag in zip(self._rows, keep) if flag]

    def any_dominates(
        self, candidate: Sequence[float], counter=None, *, start: int = 0
    ) -> bool:
        checks = 0
        try:
            for row in self._rows[start:] if start else self._rows:
                checks += 1
                if _dominates(row, candidate):
                    return True
            return False
        finally:
            charge(counter, checks)

    def any_weakly_dominates(
        self,
        corner: Sequence[float],
        counter=None,
        *,
        exclude_equal: bool = False,
        start: int = 0,
    ) -> bool:
        corner = tuple(corner)
        checks = 0
        try:
            for row in self._rows[start:] if start else self._rows:
                checks += 1
                if all(a <= b for a, b in zip(row, corner)) and (
                    not exclude_equal or row != corner
                ):
                    return True
            return False
        finally:
            charge(counter, checks)


class PureRecordStore(RecordStore):
    def __init__(self, tables: RecordTables) -> None:
        self.tables = tables
        self._rows: list[tuple[tuple[float, ...], tuple[int, ...]]] = []

    def append(self, to_values: Sequence[float], po_codes: Sequence[int]) -> None:
        self._rows.append((tuple(to_values), tuple(po_codes)))

    def __len__(self) -> int:
        return len(self._rows)

    def compress(self, keep: Sequence[bool]) -> None:
        self._rows = [row for row, flag in zip(self._rows, keep) if flag]

    def any_dominates(
        self, to_values: Sequence[float], po_codes: Sequence[int], counter=None
    ) -> bool:
        checks = 0
        try:
            for row_to, row_codes in self._rows:
                checks += 1
                if _record_dominates(self.tables, row_to, row_codes, to_values, po_codes):
                    return True
            return False
        finally:
            charge(counter, checks)

    def dominance_masks(
        self, to_values: Sequence[float], po_codes: Sequence[int], counter=None
    ) -> tuple[bool, list[bool]]:
        dominated = False
        evicted: list[bool] = []
        checks = 0
        for row_to, row_codes in self._rows:
            checks += 1
            if not dominated and _record_dominates(
                self.tables, row_to, row_codes, to_values, po_codes
            ):
                dominated = True
            checks += 1
            evicted.append(
                _record_dominates(self.tables, to_values, po_codes, row_to, row_codes)
            )
        charge(counter, checks)
        return dominated, evicted


class PureTDominanceStore(TDominanceStore):
    def __init__(self, tables: TDominanceTables) -> None:
        self.tables = tables
        self._rows: list[tuple[tuple[float, ...], tuple[int, ...]]] = []

    def append(self, to_values: Sequence[float], po_codes: Sequence[int]) -> None:
        self._rows.append((tuple(to_values), tuple(po_codes)))

    def __len__(self) -> int:
        return len(self._rows)

    def any_weakly_dominates(
        self,
        to_values: Sequence[float],
        po_codes: Sequence[int],
        counter=None,
        *,
        start: int = 0,
    ) -> bool:
        tables = self.tables
        checks = 0
        try:
            for row_to, row_codes in self._rows[start:] if start else self._rows:
                checks += 1
                if any(a > b for a, b in zip(row_to, to_values)):
                    continue
                if all(
                    table.pref_or_equal[code_p][code_q]
                    for table, code_p, code_q in zip(
                        tables.attributes, row_codes, po_codes
                    )
                ):
                    return True
            return False
        finally:
            charge(counter, checks)

    def mbb_candidates(
        self,
        to_low: Sequence[float],
        ordinal_low: Sequence[float],
        range_mbis: Sequence[tuple[float, float]],
        counter=None,
        *,
        start: int = 0,
    ) -> list[int]:
        tables = self.tables
        survivors: list[int] = []
        checks = 0
        rows = self._rows[start:] if start else self._rows
        for index, (row_to, row_codes) in enumerate(rows, start=start):
            checks += 1
            if any(a > b for a, b in zip(row_to, to_low)):
                continue
            # The member's ordinal (== code + 1) must not exceed the MBB's low
            # ordinal, and its interval set's MBI must contain the range MBI.
            ok = True
            for po_index, code in enumerate(row_codes):
                if code + 1 > ordinal_low[po_index]:
                    ok = False
                    break
                mbi_low, mbi_high = range_mbis[po_index]
                if (
                    tables.mbi_low[po_index][code] > mbi_low
                    or tables.mbi_high[po_index][code] < mbi_high
                ):
                    ok = False
                    break
            if ok:
                survivors.append(index)
        charge(counter, checks)
        return survivors


class PurePythonKernel(DominanceKernel):
    """Loop-based reference backend (always available)."""

    name = "purepython"

    def vector_store(self, dimensions: int) -> VectorStore:
        return PureVectorStore(dimensions)

    def record_store(self, tables: RecordTables) -> RecordStore:
        return PureRecordStore(tables)

    def tdominance_store(self, tables: TDominanceTables) -> TDominanceStore:
        return PureTDominanceStore(tables)

    def pareto_mask(self, rows: Sequence[Sequence[float]]) -> list[bool]:
        vectors = [tuple(row) for row in rows]
        order = sorted(range(len(vectors)), key=lambda i: sum(vectors[i]))
        kept: list[tuple[float, ...]] = []
        mask = [False] * len(vectors)
        for index in order:
            vector = vectors[index]
            if not any(_dominates(resident, vector) for resident in kept):
                kept.append(vector)
                mask[index] = True
        return mask

    def record_block_dominated_mask(
        self,
        tables: RecordTables,
        dominators: Sequence[tuple[Sequence[float], Sequence[int]]],
        targets: Sequence[tuple[Sequence[float], Sequence[int]]],
        counter=None,
    ) -> list[bool]:
        mask: list[bool] = []
        checks = 0
        for target_to, target_codes in targets:
            dominated = False
            for dom_to, dom_codes in dominators:
                checks += 1
                if _record_dominates(tables, dom_to, dom_codes, target_to, target_codes):
                    dominated = True
                    break
            mask.append(dominated)
        charge(counter, checks)
        return mask

    def covers_many(
        self, cover_sets: Sequence[IntervalSet], target: IntervalSet
    ) -> list[bool]:
        return [cover.covers(target) for cover in cover_sets]
