"""The JIT-compiled dominance kernel: numba ``@njit`` fused loops.

Third kernel tier.  The NumPy backend answers every query with materialized
boolean matrices — an O(window x block) intermediate per call and no early
exit.  This backend runs the same queries as *fused, early-exiting compiled
loops* over the very arrays the NumPy stores already hold (the stores here
subclass them and share the growable buffers): each candidate row
short-circuits on its first dominator, no comparison matrix is ever
allocated, and PO t-preference is answered from the bitset-packed dominance
closures of :mod:`repro.kernels.bitsets` — one uint64 word gather plus
shift-AND per attribute, handed to the compiled loops as a single
contiguous ``(attribute, code, word)`` cube.

Because the loops early-exit exactly like the reference backend, the
``counter`` charges match :mod:`repro.kernels.purepython` comparison for
comparison (the agreement suite asserts equal-or-fewer checks), while each
comparison runs at compiled speed.

This module imports :mod:`numba` (and numpy) at import time; the registry
in :mod:`repro.kernels` only loads it when numba is installed and falls
back to the NumPy backend — with a warning naming the ``[jit]`` extra —
when it is not.  All functions are compiled with ``cache=True``: set
``NUMBA_CACHE_DIR`` to persist the compile cache across processes (CI,
pool workers), turning warm-up into a load instead of a compile.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from numba import njit

from repro.kernels.base import charge
from repro.kernels.bitsets import packed_word_cube
from repro.kernels.numpy_kernel import (
    NumpyKernel,
    NumpyRecordStore,
    NumpyTDominanceStore,
    NumpyVectorStore,
    _as_code_block,
    _as_to_block,
)
from repro.kernels.tables import RecordTables, TDominanceTables


# --------------------------------------------------------------------- #
# Vector dominance
# --------------------------------------------------------------------- #
@njit(cache=True)
def _vec_dominates_row(block, i, q):
    ok = True
    strict = False
    for j in range(q.shape[0]):
        a = block[i, j]
        b = q[j]
        if a > b:
            ok = False
            break
        if a < b:
            strict = True
    return ok and strict


@njit(cache=True)
def _vec_weakly_dominates_row(block, i, q, exclude_equal):
    ok = True
    equal = True
    for j in range(q.shape[0]):
        a = block[i, j]
        b = q[j]
        if a > b:
            ok = False
            break
        if a != b:
            equal = False
    return ok and not (exclude_equal and equal)


@njit(cache=True)
def _vec_any_dominates(block, q):
    checks = 0
    for i in range(block.shape[0]):
        checks += 1
        if _vec_dominates_row(block, i, q):
            return True, checks
    return False, checks


@njit(cache=True)
def _vec_any_weakly_dominates(block, q, exclude_equal):
    checks = 0
    for i in range(block.shape[0]):
        checks += 1
        if _vec_weakly_dominates_row(block, i, q, exclude_equal):
            return True, checks
    return False, checks


@njit(cache=True)
def _vec_block_dominated(block, targets):
    mask = np.zeros(targets.shape[0], dtype=np.bool_)
    checks = 0
    for t in range(targets.shape[0]):
        q = targets[t]
        for i in range(block.shape[0]):
            checks += 1
            if _vec_dominates_row(block, i, q):
                mask[t] = True
                break
    return mask, checks


@njit(cache=True)
def _vec_mbr_block_dominated(block, corners, exclude_equal):
    mask = np.zeros(corners.shape[0], dtype=np.bool_)
    checks = 0
    for t in range(corners.shape[0]):
        q = corners[t]
        for i in range(block.shape[0]):
            checks += 1
            if _vec_weakly_dominates_row(block, i, q, exclude_equal):
                mask[t] = True
                break
    return mask, checks


@njit(cache=True)
def _pareto_sweep(ordered):
    n = ordered.shape[0]
    d = ordered.shape[1]
    kept = np.empty((n, d), dtype=np.float64)
    num_kept = 0
    mask = np.empty(n, dtype=np.bool_)
    for i in range(n):
        dominated = False
        for k in range(num_kept):
            ok = True
            strict = False
            for j in range(d):
                a = kept[k, j]
                b = ordered[i, j]
                if a > b:
                    ok = False
                    break
                if a < b:
                    strict = True
            if ok and strict:
                dominated = True
                break
        mask[i] = not dominated
        if not dominated:
            for j in range(d):
                kept[num_kept, j] = ordered[i, j]
            num_kept += 1
    return mask


# --------------------------------------------------------------------- #
# Record (ground-truth TO/PO) dominance over bitset closures
# --------------------------------------------------------------------- #
@njit(cache=True)
def _bit_pref(words, attribute, better, worse):
    word = words[attribute, better, np.int64(worse) >> 6]
    return (word >> np.uint64(worse & 63)) & np.uint64(1) != np.uint64(0)


@njit(cache=True)
def _rec_dominates_rows(p_to, p_codes, q_to, q_codes, words, num_po):
    strict = False
    for j in range(p_to.shape[0]):
        a = p_to[j]
        b = q_to[j]
        if a > b:
            return False
        if a < b:
            strict = True
    for k in range(num_po):
        cp = p_codes[k]
        cq = q_codes[k]
        if cp == cq:
            continue
        if _bit_pref(words, k, cp, cq):
            strict = True
        else:
            return False
    return strict


@njit(cache=True)
def _rec_any_dominates(to_block, code_block, q_to, q_codes, words, num_po):
    checks = 0
    for i in range(to_block.shape[0]):
        checks += 1
        if _rec_dominates_rows(to_block[i], code_block[i], q_to, q_codes, words, num_po):
            return True, checks
    return False, checks


@njit(cache=True)
def _rec_dominance_masks(to_block, code_block, q_to, q_codes, words, num_po):
    n = to_block.shape[0]
    dominated = False
    evicted = np.zeros(n, dtype=np.bool_)
    for i in range(n):
        if not dominated and _rec_dominates_rows(
            to_block[i], code_block[i], q_to, q_codes, words, num_po
        ):
            dominated = True
        evicted[i] = _rec_dominates_rows(
            q_to, q_codes, to_block[i], code_block[i], words, num_po
        )
    return dominated, evicted


@njit(cache=True)
def _rec_block_dominated(dom_to, dom_codes, tgt_to, tgt_codes, words, num_po):
    mask = np.zeros(tgt_to.shape[0], dtype=np.bool_)
    checks = 0
    for t in range(tgt_to.shape[0]):
        for i in range(dom_to.shape[0]):
            checks += 1
            if _rec_dominates_rows(
                dom_to[i], dom_codes[i], tgt_to[t], tgt_codes[t], words, num_po
            ):
                mask[t] = True
                break
    return mask, checks


# --------------------------------------------------------------------- #
# t-dominance over bitset closures
# --------------------------------------------------------------------- #
@njit(cache=True)
def _td_weakly_dominates_row(to_block, code_block, i, q_to, q_codes, words, num_po):
    for j in range(q_to.shape[0]):
        if to_block[i, j] > q_to[j]:
            return False
    for k in range(num_po):
        if not _bit_pref(words, k, code_block[i, k], q_codes[k]):
            return False
    return True


@njit(cache=True)
def _td_any_weakly_dominates(to_block, code_block, q_to, q_codes, words, num_po):
    checks = 0
    for i in range(to_block.shape[0]):
        checks += 1
        if _td_weakly_dominates_row(to_block, code_block, i, q_to, q_codes, words, num_po):
            return True, checks
    return False, checks


@njit(cache=True)
def _td_block_weakly_dominated(to_block, code_block, tgt_to, tgt_codes, words, num_po):
    mask = np.zeros(tgt_to.shape[0], dtype=np.bool_)
    checks = 0
    for t in range(tgt_to.shape[0]):
        for i in range(to_block.shape[0]):
            checks += 1
            if _td_weakly_dominates_row(
                to_block, code_block, i, tgt_to[t], tgt_codes[t], words, num_po
            ):
                mask[t] = True
                break
    return mask, checks


@njit(cache=True)
def _td_mbb_candidates(
    to_block,
    code_block,
    to_low,
    ordinal_low,
    mbi_low,
    mbi_high,
    range_mbi_low,
    range_mbi_high,
    num_po,
):
    n = to_block.shape[0]
    out = np.empty(n, dtype=np.int64)
    count = 0
    checks = 0
    for i in range(n):
        checks += 1
        ok = True
        for j in range(to_low.shape[0]):
            if to_block[i, j] > to_low[j]:
                ok = False
                break
        if not ok:
            continue
        for k in range(num_po):
            code = code_block[i, k]
            if code + 1 > ordinal_low[k]:
                ok = False
                break
            if mbi_low[k, code] > range_mbi_low[k] or mbi_high[k, code] < range_mbi_high[k]:
                ok = False
                break
        if ok:
            out[count] = i
            count += 1
    return out[:count], checks


def _mbi_matrices(tables: TDominanceTables) -> tuple[np.ndarray, np.ndarray]:
    """Padded ``(num_po, max_cardinality)`` MBI bound matrices (scratch-cached)."""
    cached = tables.scratch.get("jit_mbi")
    if cached is None:
        num_po = len(tables.mbi_low)
        max_card = max((len(bounds) for bounds in tables.mbi_low), default=0)
        low = np.zeros((max(1, num_po), max(1, max_card)), dtype=np.float64)
        high = np.zeros((max(1, num_po), max(1, max_card)), dtype=np.float64)
        for attribute in range(num_po):
            bounds_low = tables.mbi_low[attribute]
            bounds_high = tables.mbi_high[attribute]
            low[attribute, : len(bounds_low)] = bounds_low
            high[attribute, : len(bounds_high)] = bounds_high
        cached = (low, high)
        tables.scratch["jit_mbi"] = cached
    return cached


# --------------------------------------------------------------------- #
# Stores
# --------------------------------------------------------------------- #
class JitVectorStore(NumpyVectorStore):
    """Vector store answered by fused early-exit compiled loops."""

    def any_dominates(
        self, candidate: Sequence[float], counter=None, *, start: int = 0
    ) -> bool:
        block = self._rows.view[start:] if start else self._rows.view
        verdict, checks = _vec_any_dominates(
            block, np.asarray(candidate, dtype=np.float64)
        )
        charge(counter, checks)
        return bool(verdict)

    def any_weakly_dominates(
        self,
        corner: Sequence[float],
        counter=None,
        *,
        exclude_equal: bool = False,
        start: int = 0,
    ) -> bool:
        block = self._rows.view[start:] if start else self._rows.view
        verdict, checks = _vec_any_weakly_dominates(
            block, np.asarray(corner, dtype=np.float64), exclude_equal
        )
        charge(counter, checks)
        return bool(verdict)

    def block_dominated_mask(self, targets, counter=None) -> list[bool]:
        mask, checks = _vec_block_dominated(
            self._rows.view, _as_to_block(targets, self.dimensions)
        )
        charge(counter, checks)
        return mask.tolist()

    def mbr_block_dominated(
        self, corners, counter=None, *, exclude_equal: bool = False
    ) -> list[bool]:
        mask, checks = _vec_mbr_block_dominated(
            self._rows.view, _as_to_block(corners, self.dimensions), exclude_equal
        )
        charge(counter, checks)
        return mask.tolist()


class JitRecordStore(NumpyRecordStore):
    """Record store answered by fused compiled loops over bitset closures."""

    def __init__(self, tables: RecordTables) -> None:
        super().__init__(tables)
        self._words = packed_word_cube(tables)

    def _q_codes(self, po_codes) -> np.ndarray:
        return np.asarray(
            po_codes if self._num_po else (0,), dtype=np.int64
        ).reshape(max(1, self._num_po))

    def any_dominates(
        self, to_values: Sequence[float], po_codes: Sequence[int], counter=None
    ) -> bool:
        verdict, checks = _rec_any_dominates(
            self._to.view,
            self._codes.view,
            np.asarray(to_values, dtype=np.float64),
            self._q_codes(po_codes),
            self._words,
            self._num_po,
        )
        charge(counter, checks)
        return bool(verdict)

    def dominance_masks(
        self, to_values: Sequence[float], po_codes: Sequence[int], counter=None
    ) -> tuple[bool, list[bool]]:
        charge(counter, 2 * len(self))
        dominated, evicted = _rec_dominance_masks(
            self._to.view,
            self._codes.view,
            np.asarray(to_values, dtype=np.float64),
            self._q_codes(po_codes),
            self._words,
            self._num_po,
        )
        return bool(dominated), evicted.tolist()

    def block_dominated_mask(
        self,
        targets: Sequence[tuple[Sequence[float], Sequence[int]]],
        counter=None,
    ) -> list[bool]:
        if not targets:
            return []
        num_to = self.tables.num_total_order
        tgt_to = np.array([t[0] for t in targets], dtype=np.float64).reshape(
            len(targets), num_to
        )
        tgt_codes = np.array(
            [t[1] if self._num_po else (0,) for t in targets], dtype=np.int64
        ).reshape(len(targets), max(1, self._num_po))
        mask, checks = _rec_block_dominated(
            self._to.view, self._codes.view, tgt_to, tgt_codes, self._words, self._num_po
        )
        charge(counter, checks)
        return mask.tolist()

    def block_dominated_columns(self, to_rows, code_rows, counter=None) -> list[bool]:
        tgt_to = _as_to_block(to_rows, self.tables.num_total_order)
        mask, checks = _rec_block_dominated(
            self._to.view,
            self._codes.view,
            tgt_to,
            _as_code_block(code_rows, self._num_po, len(tgt_to)),
            self._words,
            self._num_po,
        )
        charge(counter, checks)
        return mask.tolist()


class JitTDominanceStore(NumpyTDominanceStore):
    """t-dominance store answered by fused compiled loops over bitsets."""

    def __init__(self, tables: TDominanceTables) -> None:
        super().__init__(tables)
        self._words = packed_word_cube(tables)
        self._jit_mbi_low, self._jit_mbi_high = _mbi_matrices(tables)

    def _q_codes(self, po_codes) -> np.ndarray:
        return np.asarray(
            po_codes if self._num_po else (0,), dtype=np.int64
        ).reshape(max(1, self._num_po))

    def any_weakly_dominates(
        self,
        to_values: Sequence[float],
        po_codes: Sequence[int],
        counter=None,
        *,
        start: int = 0,
    ) -> bool:
        to_block = self._to.view[start:] if start else self._to.view
        code_block = self._codes.view[start:] if start else self._codes.view
        verdict, checks = _td_any_weakly_dominates(
            to_block,
            code_block,
            np.asarray(to_values, dtype=np.float64),
            self._q_codes(po_codes),
            self._words,
            self._num_po,
        )
        charge(counter, checks)
        return bool(verdict)

    def block_weakly_dominated(self, to_rows, code_rows, counter=None) -> list[bool]:
        tgt_to = _as_to_block(to_rows, self.tables.num_total_order)
        mask, checks = _td_block_weakly_dominated(
            self._to.view,
            self._codes.view,
            tgt_to,
            _as_code_block(code_rows, self._num_po, len(tgt_to)),
            self._words,
            self._num_po,
        )
        charge(counter, checks)
        return mask.tolist()

    def mbb_candidates(
        self,
        to_low: Sequence[float],
        ordinal_low: Sequence[float],
        range_mbis: Sequence[tuple[float, float]],
        counter=None,
        *,
        start: int = 0,
    ) -> list[int]:
        to_block = self._to.view[start:] if start else self._to.view
        code_block = self._codes.view[start:] if start else self._codes.view
        num_po = self._num_po
        range_pairs = np.asarray(range_mbis, dtype=np.float64).reshape(
            max(1, num_po), 2
        ) if num_po else np.zeros((1, 2), dtype=np.float64)
        survivors, checks = _td_mbb_candidates(
            to_block,
            code_block,
            np.asarray(to_low, dtype=np.float64).reshape(
                self.tables.num_total_order
            ),
            np.asarray(ordinal_low, dtype=np.float64).reshape(max(0, num_po))
            if num_po
            else np.zeros(0, dtype=np.float64),
            self._jit_mbi_low,
            self._jit_mbi_high,
            np.ascontiguousarray(range_pairs[:, 0]),
            np.ascontiguousarray(range_pairs[:, 1]),
            num_po,
        )
        charge(counter, checks)
        if start:
            survivors = survivors + start
        return survivors.tolist()

    def mbb_block_candidates(
        self,
        to_lows,
        ordinal_lows,
        range_mbis_list,
        counter=None,
    ) -> list[list[int]]:
        # One compiled store scan per child MBB: same charges as the
        # reference loop, no (members, mbbs) matrix.
        return [
            self.mbb_candidates(to_low, ordinal_low, range_mbis, counter=counter)
            for to_low, ordinal_low, range_mbis in zip(
                to_lows, ordinal_lows, range_mbis_list
            )
        ]


class JitKernel(NumpyKernel):
    """numba-compiled backend (requires numba + NumPy; ``[jit]`` extra).

    Inherits the NumPy backend's stateless batch ops where vectorization is
    already optimal (``covers_many``, low-dimension ``pareto_mask`` fast
    paths) and replaces every store query plus the high-dimension Pareto
    sweep with fused early-exit compiled loops.
    """

    name = "jit"

    def __init__(self) -> None:
        self._warmed = False

    def vector_store(self, dimensions: int) -> JitVectorStore:
        return JitVectorStore(dimensions)

    def record_store(self, tables: RecordTables) -> JitRecordStore:
        return JitRecordStore(tables)

    def tdominance_store(self, tables: TDominanceTables) -> JitTDominanceStore:
        return JitTDominanceStore(tables)

    def pareto_mask(self, rows: Sequence[Sequence[float]]) -> list[bool]:
        matrix = np.asarray(rows, dtype=np.float64)
        if matrix.ndim != 2 or not len(matrix) or matrix.shape[1] <= 2:
            # The 1-D/2-D sort-based fast paths beat any pairwise sweep.
            return super().pareto_mask(rows)
        order = np.argsort(matrix.sum(axis=1), kind="stable")
        ordered_mask = _pareto_sweep(np.ascontiguousarray(matrix[order]))
        result = np.zeros(len(matrix), dtype=bool)
        result[order] = ordered_mask
        return result.tolist()

    def warmup(self) -> bool:
        """Compile (or cache-load) every ``@njit`` loop on tiny inputs."""
        if self._warmed:
            return True
        to = np.zeros((1, 2), dtype=np.float64)
        codes = np.zeros((1, 1), dtype=np.int64)
        q_to = np.zeros(2, dtype=np.float64)
        q_codes = np.zeros(1, dtype=np.int64)
        words = np.zeros((1, 1, 1), dtype=np.uint64)
        mbi = np.zeros((1, 1), dtype=np.float64)
        bound = np.zeros(1, dtype=np.float64)
        _vec_any_dominates(to, q_to)
        _vec_any_weakly_dominates(to, q_to, True)
        _vec_block_dominated(to, to)
        _vec_mbr_block_dominated(to, to, False)
        _pareto_sweep(np.zeros((1, 3), dtype=np.float64))
        _rec_any_dominates(to, codes, q_to, q_codes, words, 1)
        _rec_dominance_masks(to, codes, q_to, q_codes, words, 1)
        _rec_block_dominated(to, codes, to, codes, words, 1)
        _td_any_weakly_dominates(to, codes, q_to, q_codes, words, 1)
        _td_block_weakly_dominated(to, codes, to, codes, words, 1)
        _td_mbb_candidates(to, codes, q_to, bound, mbi, mbi, bound, bound, 1)
        self._warmed = True
        return True
