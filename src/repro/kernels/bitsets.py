"""Bitset-packed dominance closures for partially ordered domains.

A :class:`~repro.kernels.tables.PreferenceTable` answers "is value ``i``
preferred over or equal to value ``j``" with one boolean-matrix lookup.  For
kernel hot loops the same relation packs into ``uint64`` *bitset rows*: row
``i`` holds ``cardinality`` bits, bit ``j`` set iff ``i`` is
preferred-or-equal to ``j``.  A t-dominance test over ``d`` PO attributes is
then ``d`` shift-AND-compare word operations on a structure 8x smaller than
the boolean matrix (cache-resident even for large domains), and the packed
rows feed the JIT kernels as one contiguous ``(attribute, code, word)``
array.

Bitsets are built once per table from the DAG-reachability closure the
table already carries (``pref_or_equal`` rows) and cached on the tables'
``scratch`` dict, so every store built over the same tables shares them.
The module itself is dependency-free; the NumPy packings are produced by
helpers whose imports stay function-scope (pure-Python checkouts import
this module cleanly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.kernels.tables import PreferenceTable, RecordTables, TDominanceTables

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

#: Bits per packed word (the rows are ``uint64`` words).
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1


@dataclass(frozen=True)
class DominanceBitset:
    """The dominance closure of one PO domain as packed ``uint64`` rows."""

    cardinality: int
    #: Words per row — ``ceil(cardinality / 64)``, at least one.
    num_words: int
    #: ``rows[i][w]`` — word ``w`` of value ``i``'s preferred-or-equal row.
    rows: tuple[tuple[int, ...], ...]

    @classmethod
    def from_table(cls, table: PreferenceTable) -> "DominanceBitset":
        """Pack one table's reachability closure into bitset rows."""
        cardinality = table.cardinality
        num_words = max(1, (cardinality + WORD_BITS - 1) // WORD_BITS)
        rows = []
        for prefs in table.pref_or_equal:
            packed = 0
            for worse, flag in enumerate(prefs):
                if flag:
                    packed |= 1 << worse
            rows.append(
                tuple(
                    (packed >> (WORD_BITS * word)) & _WORD_MASK
                    for word in range(num_words)
                )
            )
        return cls(cardinality=cardinality, num_words=num_words, rows=tuple(rows))

    def test(self, better: int, worse: int) -> bool:
        """Is ``better`` preferred-or-equal to ``worse``?  One shift-AND."""
        return bool((self.rows[better][worse >> 6] >> (worse & 63)) & 1)


def dominance_bitsets(
    tables: RecordTables | TDominanceTables,
) -> tuple[DominanceBitset, ...]:
    """Per-attribute bitsets of one tables object (cached on ``scratch``)."""
    cached = tables.scratch.get("bitsets")
    if cached is None:
        cached = tuple(
            DominanceBitset.from_table(table) for table in tables.attributes
        )
        tables.scratch["bitsets"] = cached
    return cached


def attribute_word_arrays(
    tables: RecordTables | TDominanceTables,
) -> "list[np.ndarray]":
    """Per-attribute ``(cardinality, num_words)`` uint64 arrays (NumPy stores).

    Cached on ``scratch`` like the boolean preference matrices; requires
    NumPy (only the vectorized backends call this).
    """
    cached = tables.scratch.get("numpy_bitset_rows")
    if cached is None:
        import numpy as np

        cached = [
            np.array(bitset.rows, dtype=np.uint64).reshape(
                bitset.cardinality, bitset.num_words
            )
            for bitset in dominance_bitsets(tables)
        ]
        tables.scratch["numpy_bitset_rows"] = cached
    return cached


def packed_word_cube(tables: RecordTables | TDominanceTables) -> "np.ndarray":
    """All attributes' bitsets as one ``(num_po, max_card, max_words)`` cube.

    Shorter domains are zero-padded (a zero word never reports preference),
    giving the JIT kernels a single contiguous uint64 array to close over.
    """
    cached = tables.scratch.get("numpy_bitset_cube")
    if cached is None:
        import numpy as np

        bitsets = dominance_bitsets(tables)
        max_card = max((b.cardinality for b in bitsets), default=0)
        max_words = max((b.num_words for b in bitsets), default=1)
        cube = np.zeros(
            (len(bitsets), max(1, max_card), max(1, max_words)), dtype=np.uint64
        )
        for attribute, bitset in enumerate(bitsets):
            for code, row in enumerate(bitset.rows):
                for word, value in enumerate(row):
                    cube[attribute, code, word] = value
        cached = cube
        tables.scratch["numpy_bitset_cube"] = cached
    return cached
