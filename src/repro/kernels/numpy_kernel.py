"""The vectorized dominance kernel: NumPy block tests.

Stores keep their members in amortized-doubling arrays, so appends are O(1)
and every query is a handful of vectorized comparisons over the whole block
instead of a Python-level loop.  Preference / t-preference matrices are
converted to boolean ``ndarray`` once per :class:`~repro.kernels.tables`
object and cached in its ``scratch`` dict, so all stores sharing the tables
share the arrays.

This module imports :mod:`numpy` at import time; the registry in
:mod:`repro.kernels` only loads it when NumPy is installed.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.kernels.base import (
    DominanceKernel,
    RecordStore,
    TDominanceStore,
    VectorStore,
    charge,
)
from repro.kernels.bitsets import attribute_word_arrays
from repro.kernels.tables import RecordTables, TDominanceTables
from repro.order.intervals import IntervalSet

_INITIAL_CAPACITY = 16

#: Bound on the elements of one (dominators, target-chunk, dims) comparison
#: cube in :meth:`NumpyKernel.record_block_dominated_mask`; keeps the
#: temporaries of huge cross-examinations around 32 MB.
_BLOCK_MASK_ELEMENTS = 32_000_000


class _GrowableMatrix:
    """A row-appendable 2-D array with amortized-doubling storage."""

    __slots__ = ("_buffer", "_size")

    def __init__(self, columns: int, dtype) -> None:
        self._buffer = np.empty((_INITIAL_CAPACITY, columns), dtype=dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def view(self) -> np.ndarray:
        return self._buffer[: self._size]

    def append(self, row: Sequence[float]) -> None:
        if self._size == len(self._buffer):
            self._grow(self._size + 1)
        self._buffer[self._size] = row
        self._size += 1

    def extend(self, block: np.ndarray) -> None:
        """Bulk-append a whole (rows, columns) block in one copy."""
        needed = self._size + len(block)
        if needed > len(self._buffer):
            self._grow(needed)
        self._buffer[self._size : needed] = block
        self._size = needed

    def _grow(self, needed: int) -> None:
        capacity = len(self._buffer)
        while capacity < needed:
            capacity *= 2
        grown = np.empty((capacity, self._buffer.shape[1]), dtype=self._buffer.dtype)
        grown[: self._size] = self.view
        self._buffer = grown

    def compress(self, keep: np.ndarray) -> None:
        kept = self.view[keep]
        self._size = len(kept)
        self._buffer[: self._size] = kept


def _pref_matrices(tables: RecordTables | TDominanceTables) -> list[np.ndarray]:
    """Boolean preferred-or-equal matrices, cached on the tables object."""
    cached = tables.scratch.get("numpy_pref")
    if cached is None:
        cached = [
            np.array(table.pref_or_equal, dtype=bool) for table in tables.attributes
        ]
        tables.scratch["numpy_pref"] = cached
    return cached


def _block_dominated(
    prefs: list[np.ndarray],
    dom_to: np.ndarray,
    dom_codes: np.ndarray,
    tgt_to: np.ndarray,
    tgt_codes: np.ndarray,
) -> np.ndarray:
    """Per target: dominated by any dominator?  (dominators, targets) blocks.

    Targets are processed in chunks so the (dominators, chunk, dims)
    comparison temporaries stay around 32 MB regardless of block sizes.
    """
    num_to = dom_to.shape[1]
    num_po = dom_codes.shape[1] if len(prefs) else 0
    chunk = max(1, _BLOCK_MASK_ELEMENTS // max(1, len(dom_to) * max(1, num_to)))
    out = np.zeros(len(tgt_to), dtype=bool)
    for low in range(0, len(tgt_to), chunk):
        high = min(low + chunk, len(tgt_to))
        to_block = tgt_to[None, low:high, :]
        weak = (dom_to[:, None, :] <= to_block).all(axis=2)
        strict = (dom_to[:, None, :] < to_block).any(axis=2)
        for po_index in range(num_po):
            codes = dom_codes[:, po_index][:, None]
            target_codes = tgt_codes[low:high, po_index][None, :]
            preferred = prefs[po_index][codes, target_codes]
            weak &= preferred
            strict |= preferred & (codes != target_codes)
        out[low:high] = (weak & strict).any(axis=0)
    return out


def _mbi_arrays(tables: TDominanceTables) -> tuple[list[np.ndarray], list[np.ndarray]]:
    cached = tables.scratch.get("numpy_mbi")
    if cached is None:
        cached = (
            [np.array(low, dtype=np.int64) for low in tables.mbi_low],
            [np.array(high, dtype=np.int64) for high in tables.mbi_high],
        )
        tables.scratch["numpy_mbi"] = cached
    return cached


def _as_to_block(rows, num_to: int) -> np.ndarray:
    # The explicit row count matters when num_to == 0 (PO-only schemas):
    # reshape(-1, 0) cannot infer it from a size-0 array.
    return np.asarray(rows, dtype=np.float64).reshape(len(rows), num_to)


def _target_chunks(members: int, dims: int, targets: int):
    """``(low, high)`` target slices keeping (members, chunk, dims)
    broadcast temporaries within the :data:`_BLOCK_MASK_ELEMENTS` budget."""
    chunk = max(1, _BLOCK_MASK_ELEMENTS // max(1, members * max(1, dims)))
    for low in range(0, targets, chunk):
        yield low, min(low + chunk, targets)


def _as_code_block(rows, num_po: int, length: int) -> np.ndarray:
    if num_po:
        return np.asarray(rows, dtype=np.int64).reshape(-1, num_po)
    return np.zeros((length, 1), dtype=np.int64)


class NumpyVectorStore(VectorStore):
    def __init__(self, dimensions: int) -> None:
        self.dimensions = dimensions
        self._rows = _GrowableMatrix(dimensions, dtype=np.float64)

    def append(self, vector: Sequence[float]) -> None:
        self._rows.append(vector)

    def extend(self, rows) -> None:
        self._rows.extend(_as_to_block(rows, self.dimensions))

    def __len__(self) -> int:
        return len(self._rows)

    def compress(self, keep: Sequence[bool]) -> None:
        self._rows.compress(np.asarray(keep, dtype=bool))

    def _any_member_mask(self, targets, counter, compare) -> list[bool]:
        """Chunked per-target "any member matches" mask shared by the block
        queries; ``compare(members, chunk)`` returns the (members, chunk)
        match matrix for one broadcast pair."""
        block = self._rows.view
        targets = _as_to_block(targets, self.dimensions)
        charge(counter, len(block) * len(targets))
        if not len(block) or not len(targets):
            return [False] * len(targets)
        out = np.zeros(len(targets), dtype=bool)
        for low, high in _target_chunks(len(block), self.dimensions, len(targets)):
            sub = targets[None, low:high, :]
            out[low:high] = compare(block[:, None, :], sub).any(axis=0)
        return out.tolist()

    def block_dominated_mask(self, targets, counter=None) -> list[bool]:
        def strictly_dominated(members, sub):
            return (members <= sub).all(axis=2) & (members < sub).any(axis=2)

        return self._any_member_mask(targets, counter, strictly_dominated)

    def any_dominates(
        self, candidate: Sequence[float], counter=None, *, start: int = 0
    ) -> bool:
        block = self._rows.view[start:] if start else self._rows.view
        charge(counter, len(block))
        if not len(block):
            return False
        q = np.asarray(candidate, dtype=np.float64)
        le = block <= q
        return bool(np.any(le.all(axis=1) & (block < q).any(axis=1)))

    def any_weakly_dominates(
        self,
        corner: Sequence[float],
        counter=None,
        *,
        exclude_equal: bool = False,
        start: int = 0,
    ) -> bool:
        block = self._rows.view[start:] if start else self._rows.view
        charge(counter, len(block))
        if not len(block):
            return False
        q = np.asarray(corner, dtype=np.float64)
        weak = (block <= q).all(axis=1)
        if exclude_equal:
            weak &= (block != q).any(axis=1)
        return bool(weak.any())

    def mbr_block_dominated(
        self, corners, counter=None, *, exclude_equal: bool = False
    ) -> list[bool]:
        def weakly_dominated(members, sub):
            weak = (members <= sub).all(axis=2)
            if exclude_equal:
                weak &= (members != sub).any(axis=2)
            return weak

        return self._any_member_mask(corners, counter, weakly_dominated)


class NumpyRecordStore(RecordStore):
    def __init__(self, tables: RecordTables) -> None:
        self.tables = tables
        self._pref = _pref_matrices(tables)
        self._to = _GrowableMatrix(tables.num_total_order, dtype=np.float64)
        self._codes = _GrowableMatrix(max(1, tables.num_partial_order), dtype=np.int64)
        self._num_po = tables.num_partial_order

    def append(self, to_values: Sequence[float], po_codes: Sequence[int]) -> None:
        self._to.append(to_values)
        self._codes.append(po_codes if self._num_po else (0,))

    def extend(self, to_rows, code_rows) -> None:
        to_block = _as_to_block(to_rows, self.tables.num_total_order)
        self._to.extend(to_block)
        self._codes.extend(_as_code_block(code_rows, self._num_po, len(to_block)))

    def __len__(self) -> int:
        return len(self._to)

    def compress(self, keep: Sequence[bool]) -> None:
        mask = np.asarray(keep, dtype=bool)
        self._to.compress(mask)
        self._codes.compress(mask)

    def _masks_against(self, to_values, po_codes) -> tuple[np.ndarray, np.ndarray]:
        """(members dominate candidate, candidate dominates members)."""
        block_to = self._to.view
        block_codes = self._codes.view
        q_to = np.asarray(to_values, dtype=np.float64)
        to_weak_fwd = (block_to <= q_to).all(axis=1)
        to_strict_fwd = (block_to < q_to).any(axis=1)
        to_weak_bwd = (block_to >= q_to).all(axis=1)
        to_strict_bwd = (block_to > q_to).any(axis=1)
        po_ok_fwd = np.ones(len(block_to), dtype=bool)
        po_strict_fwd = np.zeros(len(block_to), dtype=bool)
        po_ok_bwd = np.ones(len(block_to), dtype=bool)
        po_strict_bwd = np.zeros(len(block_to), dtype=bool)
        for po_index in range(self._num_po):
            matrix = self._pref[po_index]
            codes = block_codes[:, po_index]
            q_code = int(po_codes[po_index])
            fwd = matrix[codes, q_code]
            bwd = matrix[q_code, codes]
            differs = codes != q_code
            po_ok_fwd &= fwd
            po_ok_bwd &= bwd
            po_strict_fwd |= fwd & differs
            po_strict_bwd |= bwd & differs
        forward = to_weak_fwd & po_ok_fwd & (to_strict_fwd | po_strict_fwd)
        backward = to_weak_bwd & po_ok_bwd & (to_strict_bwd | po_strict_bwd)
        return forward, backward

    def any_dominates(
        self, to_values: Sequence[float], po_codes: Sequence[int], counter=None
    ) -> bool:
        charge(counter, len(self))
        if not len(self):
            return False
        forward, _ = self._masks_against(to_values, po_codes)
        return bool(forward.any())

    def dominance_masks(
        self, to_values: Sequence[float], po_codes: Sequence[int], counter=None
    ) -> tuple[bool, list[bool]]:
        charge(counter, 2 * len(self))
        if not len(self):
            return False, []
        forward, backward = self._masks_against(to_values, po_codes)
        return bool(forward.any()), backward.tolist()

    def block_dominated_mask(
        self,
        targets: Sequence[tuple[Sequence[float], Sequence[int]]],
        counter=None,
    ) -> list[bool]:
        charge(counter, len(self) * len(targets))
        if not len(self) or not targets:
            return [False] * len(targets)
        tgt_to = np.array([t[0] for t in targets], dtype=np.float64).reshape(
            len(targets), self.tables.num_total_order
        )
        tgt_codes = np.array(
            [t[1] if self._num_po else (0,) for t in targets], dtype=np.int64
        ).reshape(len(targets), max(1, self._num_po))
        mask = _block_dominated(
            self._pref[: self._num_po],
            self._to.view,
            self._codes.view,
            tgt_to,
            tgt_codes,
        )
        return mask.tolist()

    def block_dominated_columns(self, to_rows, code_rows, counter=None) -> list[bool]:
        tgt_to = _as_to_block(to_rows, self.tables.num_total_order)
        charge(counter, len(self) * len(tgt_to))
        if not len(self) or not len(tgt_to):
            return [False] * len(tgt_to)
        mask = _block_dominated(
            self._pref[: self._num_po],
            self._to.view,
            self._codes.view,
            tgt_to,
            _as_code_block(code_rows, self._num_po, len(tgt_to)),
        )
        return mask.tolist()


class NumpyTDominanceStore(TDominanceStore):
    """T-dominance over bitset-packed closures.

    PO preference is answered from the uint64 bitset rows of
    :mod:`repro.kernels.bitsets` — one word gather plus shift-AND per
    attribute — instead of gathering from the boolean preference matrices.
    """

    def __init__(self, tables: TDominanceTables) -> None:
        self.tables = tables
        self._bits = attribute_word_arrays(tables)
        self._mbi_low, self._mbi_high = _mbi_arrays(tables)
        self._to = _GrowableMatrix(tables.num_total_order, dtype=np.float64)
        self._codes = _GrowableMatrix(max(1, tables.num_partial_order), dtype=np.int64)
        self._num_po = tables.num_partial_order

    def append(self, to_values: Sequence[float], po_codes: Sequence[int]) -> None:
        self._to.append(to_values)
        self._codes.append(po_codes if self._num_po else (0,))

    def extend(self, to_rows, code_rows) -> None:
        to_block = _as_to_block(to_rows, self.tables.num_total_order)
        self._to.extend(to_block)
        self._codes.extend(_as_code_block(code_rows, self._num_po, len(to_block)))

    def __len__(self) -> int:
        return len(self._to)

    def block_weakly_dominated(self, to_rows, code_rows, counter=None) -> list[bool]:
        tgt_to = _as_to_block(to_rows, self.tables.num_total_order)
        charge(counter, len(self) * len(tgt_to))
        if not len(self) or not len(tgt_to):
            return [False] * len(tgt_to)
        block_to = self._to.view
        block_codes = self._codes.view
        tgt_codes = _as_code_block(code_rows, self._num_po, len(tgt_to))
        out = np.zeros(len(tgt_to), dtype=bool)
        dims = self.tables.num_total_order
        for low, high in _target_chunks(len(block_to), dims, len(tgt_to)):
            weak = (block_to[:, None, :] <= tgt_to[None, low:high, :]).all(axis=2)
            for po_index in range(self._num_po):
                words = self._bits[po_index]
                target_codes = tgt_codes[low:high, po_index]
                gathered = words[
                    block_codes[:, po_index][:, None],
                    (target_codes >> 6)[None, :],
                ]
                bits = (target_codes & 63).astype(np.uint64)[None, :]
                weak &= ((gathered >> bits) & np.uint64(1)).astype(bool)
            out[low:high] = weak.any(axis=0)
        return out.tolist()

    def any_weakly_dominates(
        self,
        to_values: Sequence[float],
        po_codes: Sequence[int],
        counter=None,
        *,
        start: int = 0,
    ) -> bool:
        block_to = self._to.view[start:] if start else self._to.view
        charge(counter, len(block_to))
        if not len(block_to):
            return False
        block_codes = self._codes.view[start:] if start else self._codes.view
        mask = (block_to <= np.asarray(to_values, dtype=np.float64)).all(axis=1)
        for po_index in range(self._num_po):
            if not mask.any():
                return False
            code = int(po_codes[po_index])
            rows = self._bits[po_index][block_codes[:, po_index], code >> 6]
            mask &= ((rows >> np.uint64(code & 63)) & np.uint64(1)).astype(bool)
        return bool(mask.any())

    def mbb_candidates(
        self,
        to_low: Sequence[float],
        ordinal_low: Sequence[float],
        range_mbis: Sequence[tuple[float, float]],
        counter=None,
        *,
        start: int = 0,
    ) -> list[int]:
        block_to = self._to.view[start:] if start else self._to.view
        charge(counter, len(block_to))
        if not len(block_to):
            return []
        block_codes = self._codes.view[start:] if start else self._codes.view
        mask = (block_to <= np.asarray(to_low, dtype=np.float64)).all(axis=1)
        for po_index in range(self._num_po):
            codes = block_codes[:, po_index]
            mbi_low, mbi_high = range_mbis[po_index]
            mask &= codes + 1 <= ordinal_low[po_index]
            mask &= self._mbi_low[po_index][codes] <= mbi_low
            mask &= self._mbi_high[po_index][codes] >= mbi_high
        survivors = np.flatnonzero(mask)
        if start:
            survivors = survivors + start
        return survivors.tolist()

    def mbb_block_candidates(
        self,
        to_lows,
        ordinal_lows,
        range_mbis_list,
        counter=None,
    ) -> list[list[int]]:
        num_mbbs = len(to_lows)
        charge(counter, len(self) * num_mbbs)
        if not len(self) or not num_mbbs:
            return [[] for _ in range(num_mbbs)]
        block_to = self._to.view
        block_codes = self._codes.view
        lows = _as_to_block(to_lows, self.tables.num_total_order)
        # (members, mbbs) survivor matrix; fanout is node-capacity bounded,
        # so the broadcast stays small even against a large skyline store.
        mask = (block_to[:, None, :] <= lows[None, :, :]).all(axis=2)
        if self._num_po:
            ordinals = np.asarray(ordinal_lows, dtype=np.float64).reshape(
                num_mbbs, self._num_po
            )
            mbis = np.asarray(range_mbis_list, dtype=np.float64).reshape(
                num_mbbs, self._num_po, 2
            )
            for po_index in range(self._num_po):
                codes = block_codes[:, po_index]
                mask &= (codes[:, None] + 1) <= ordinals[:, po_index][None, :]
                mask &= self._mbi_low[po_index][codes][:, None] <= mbis[:, po_index, 0][None, :]
                mask &= self._mbi_high[po_index][codes][:, None] >= mbis[:, po_index, 1][None, :]
        return [np.flatnonzero(mask[:, column]).tolist() for column in range(num_mbbs)]


class NumpyKernel(DominanceKernel):
    """Vectorized backend (requires NumPy)."""

    name = "numpy"

    def vector_store(self, dimensions: int) -> VectorStore:
        return NumpyVectorStore(dimensions)

    def record_store(self, tables: RecordTables) -> RecordStore:
        return NumpyRecordStore(tables)

    def tdominance_store(self, tables: TDominanceTables) -> TDominanceStore:
        return NumpyTDominanceStore(tables)

    #: Points processed per vectorized step of :meth:`pareto_mask`.
    PARETO_CHUNK = 512
    #: Kept-front rows compared per sub-step.  Small on purpose: the front is
    #: kept in sum order, so most points are killed by its first rows and the
    #: shrinking-active-set loop regains the early-exit a scalar scan enjoys.
    PARETO_KEPT_CHUNK = 64

    def pareto_mask(self, rows: Sequence[Sequence[float]]) -> list[bool]:
        matrix = np.asarray(rows, dtype=np.float64)
        if matrix.ndim != 2 or not len(matrix):
            return [True] * len(matrix)
        if matrix.shape[1] == 1:
            # One dimension: exactly the minima survive (duplicates included).
            return (matrix[:, 0] == matrix[:, 0].min()).tolist()
        if matrix.shape[1] == 2:
            return self._pareto_mask_2d(matrix)
        # Sweep in monotone (sum) order: strict dominance implies a strictly
        # smaller coordinate sum, so a point can only be dominated by an
        # earlier one.  Chunks are resolved with two broadcast tests — chunk
        # vs the kept front, and chunk vs itself (upper triangle; transitivity
        # makes testing against dominated chunk members harmless).
        order = np.argsort(matrix.sum(axis=1), kind="stable")
        ordered = matrix[order]
        total = len(ordered)
        kept_rows = np.empty_like(matrix)
        num_kept = 0
        mask = np.zeros(total, dtype=bool)
        for start in range(0, total, self.PARETO_CHUNK):
            chunk = ordered[start : start + self.PARETO_CHUNK]
            size = len(chunk)
            dominated = np.zeros(size, dtype=bool)
            active = np.arange(size)
            for kept_start in range(0, num_kept, self.PARETO_KEPT_CHUNK):
                if not len(active):
                    break
                block = kept_rows[kept_start : min(kept_start + self.PARETO_KEPT_CHUNK, num_kept)]
                sub = chunk[active]
                le = block[:, None, :] <= sub[None, :, :]
                lt = block[:, None, :] < sub[None, :, :]
                newly = (le.all(axis=2) & lt.any(axis=2)).any(axis=0)
                dominated[active[newly]] = True
                active = active[~newly]
            # Within-chunk pass over the points the front did not kill.  A
            # chunk member dominated by the front cannot create new verdicts:
            # anything it dominates is dominated by its dominator too.
            undominated = np.flatnonzero(~dominated)
            if len(undominated) > 1:
                sub = chunk[undominated]
                le = sub[:, None, :] <= sub[None, :, :]
                lt = sub[:, None, :] < sub[None, :, :]
                within = le.all(axis=2) & lt.any(axis=2)
                # Only earlier members (strictly smaller sum) can be
                # dominators; the triangle restriction also removes self-pairs.
                within &= np.tri(len(sub), len(sub), -1, dtype=bool).T
                dominated[undominated[within.any(axis=0)]] = True
            survivors = chunk[~dominated]
            kept_rows[num_kept : num_kept + len(survivors)] = survivors
            num_kept += len(survivors)
            mask[start : start + size] = ~dominated
        result = np.zeros(total, dtype=bool)
        result[order] = mask
        return result.tolist()

    @staticmethod
    def _pareto_mask_2d(matrix: np.ndarray) -> list[bool]:
        """Two dimensions: one lexicographic sort, no pairwise comparisons.

        After sorting by ``(x, y)``, a point is dominated iff some earlier
        ``x``-run reaches a ``y`` no larger than its own (x strictly better),
        or its own ``x``-run starts at a strictly smaller ``y`` (y strictly
        better).  Exact duplicates survive together, matching the reference
        semantics.
        """
        order = np.lexsort((matrix[:, 1], matrix[:, 0]))
        x = matrix[order, 0]
        y = matrix[order, 1]
        run_starts = np.empty(len(x), dtype=bool)
        run_starts[0] = True
        np.not_equal(x[1:], x[:-1], out=run_starts[1:])
        run_ids = np.cumsum(run_starts) - 1
        # y is ascending within an x-run, so each run's minimum is its first y.
        run_min_y = y[run_starts]
        best_y_upto = np.minimum.accumulate(run_min_y)
        best_y_before = np.empty_like(best_y_upto)
        best_y_before[0] = np.inf
        best_y_before[1:] = best_y_upto[:-1]
        dominated = (best_y_before[run_ids] <= y) | (run_min_y[run_ids] < y)
        result = np.empty(len(x), dtype=bool)
        result[order] = ~dominated
        return result.tolist()

    def record_block_dominated_mask(
        self,
        tables: RecordTables,
        dominators: Sequence[tuple[Sequence[float], Sequence[int]]],
        targets: Sequence[tuple[Sequence[float], Sequence[int]]],
        counter=None,
    ) -> list[bool]:
        charge(counter, len(dominators) * len(targets))
        if not dominators or not targets:
            return [False] * len(targets)
        num_to = tables.num_total_order
        num_po = tables.num_partial_order
        prefs = _pref_matrices(tables)
        dom_to = np.array([d[0] for d in dominators], dtype=np.float64).reshape(
            len(dominators), num_to
        )
        tgt_to = np.array([t[0] for t in targets], dtype=np.float64).reshape(
            len(targets), num_to
        )
        dom_codes = np.array(
            [d[1] if num_po else (0,) for d in dominators], dtype=np.int64
        ).reshape(len(dominators), max(1, num_po))
        tgt_codes = np.array(
            [t[1] if num_po else (0,) for t in targets], dtype=np.int64
        ).reshape(len(targets), max(1, num_po))
        out = _block_dominated(prefs[:num_po], dom_to, dom_codes, tgt_to, tgt_codes)
        return out.tolist()

    def record_block_dominated_columns(
        self,
        tables: RecordTables,
        dominator_to,
        dominator_codes,
        target_to,
        target_codes,
        counter=None,
    ) -> list[bool]:
        num_po = tables.num_partial_order
        dom_to = _as_to_block(dominator_to, tables.num_total_order)
        tgt_to = _as_to_block(target_to, tables.num_total_order)
        charge(counter, len(dom_to) * len(tgt_to))
        if not len(dom_to) or not len(tgt_to):
            return [False] * len(tgt_to)
        out = _block_dominated(
            _pref_matrices(tables)[:num_po],
            dom_to,
            _as_code_block(dominator_codes, num_po, len(dom_to)),
            tgt_to,
            _as_code_block(target_codes, num_po, len(tgt_to)),
        )
        return out.tolist()

    def covers_many(
        self, cover_sets: Sequence[IntervalSet], target: IntervalSet
    ) -> list[bool]:
        if not cover_sets:
            return []
        target_lows = np.array([iv.low for iv in target.intervals], dtype=np.int64)
        target_highs = np.array([iv.high for iv in target.intervals], dtype=np.int64)
        if not len(target_lows):
            return [True] * len(cover_sets)
        lows: list[int] = []
        highs: list[int] = []
        owners: list[int] = []
        for owner, cover in enumerate(cover_sets):
            for interval in cover.intervals:
                lows.append(interval.low)
                highs.append(interval.high)
                owners.append(owner)
        if not lows:
            return [False] * len(cover_sets)
        low_arr = np.array(lows, dtype=np.int64)[:, None]
        high_arr = np.array(highs, dtype=np.int64)[:, None]
        owner_arr = np.array(owners, dtype=np.int64)
        contains = (low_arr <= target_lows[None, :]) & (
            target_highs[None, :] <= high_arr
        )
        covered = np.zeros((len(cover_sets), len(target_lows)), dtype=bool)
        np.logical_or.at(covered, owner_arr, contains)
        return covered.all(axis=1).tolist()
