"""Pluggable dominance kernels (pure-Python reference, NumPy, numba JIT).

Every hot dominance path in the library — tuple dominance in the scan
algorithms, t-dominance in sTSS/dTSS, m-dominance and cross-examination in
the baselines — dispatches through a :class:`~repro.kernels.base.DominanceKernel`
obtained from :func:`get_kernel`.

Backend selection, in decreasing priority:

1. an explicit ``name`` argument (or a kernel instance passed straight to the
   consuming algorithm),
2. a process-wide override installed with :func:`set_default_kernel`
   (the CLI's ``--kernel`` flag uses this),
3. the ``REPRO_KERNEL`` environment variable,
4. automatic: ``numpy`` when NumPy is importable, else ``purepython``.

NumPy and numba are optional dependencies; the pure-Python backend is always
available and defines the semantics every other backend must reproduce.
Requesting ``jit`` without numba installed degrades gracefully: a warning
names the ``[jit]`` extra and the best available backend (numpy, else
purepython) is returned, so ``REPRO_KERNEL=jit`` is safe to bake into
configs that run on heterogeneous machines.
"""

from __future__ import annotations

import warnings

from repro.config import KERNEL_ENV_VAR  # noqa: F401  (historical home)
from repro.config import env_kernel_name
from repro.exceptions import ExperimentError
from repro.kernels.base import (
    DominanceKernel,
    RecordStore,
    TDominanceStore,
    VectorStore,
)
from repro.kernels.purepython import PurePythonKernel
from repro.kernels.tables import PreferenceTable, RecordTables, TDominanceTables

__all__ = [
    "DominanceKernel",
    "PreferenceTable",
    "PurePythonKernel",
    "RecordStore",
    "RecordTables",
    "TDominanceStore",
    "TDominanceTables",
    "VectorStore",
    "available_kernels",
    "get_kernel",
    "resolve_kernel",
    "set_default_kernel",
]

_ALIASES = {
    "purepython": "purepython",
    "python": "purepython",
    "pure": "purepython",
    "numpy": "numpy",
    "np": "numpy",
    "jit": "jit",
    "numba": "jit",
}

_instances: dict[str, DominanceKernel] = {}
_default_override: str | None = None


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def available_kernels() -> tuple[str, ...]:
    """Canonical names of the backends usable in this environment.

    ``jit`` is listed only when it can actually compile (numba + NumPy
    importable); requesting it anyway falls back with a warning, see
    :func:`get_kernel`.
    """
    names = ["purepython"]
    if _numpy_available():
        names.append("numpy")
        if _numba_available():
            names.append("jit")
    return tuple(names)


def _canonical(name: str) -> str:
    try:
        return _ALIASES[name.strip().lower()]
    except KeyError:
        raise ExperimentError(
            f"unknown dominance kernel {name!r}; known: {sorted(set(_ALIASES))}"
        ) from None


def _build(name: str) -> DominanceKernel:
    if name == "purepython":
        return PurePythonKernel()
    if name == "numpy":
        if not _numpy_available():
            raise ExperimentError(
                "the 'numpy' dominance kernel requires NumPy; install the "
                "[numpy] extra or select REPRO_KERNEL=purepython"
            )
        from repro.kernels.numpy_kernel import NumpyKernel

        return NumpyKernel()
    if name == "jit":
        if _numpy_available() and _numba_available():
            from repro.kernels.jit_kernel import JitKernel

            return JitKernel()
        fallback = "numpy" if _numpy_available() else "purepython"
        warnings.warn(
            "the 'jit' dominance kernel requires numba (pip install "
            f"'repro[jit]'); falling back to the {fallback!r} kernel",
            RuntimeWarning,
            stacklevel=3,
        )
        return get_kernel(fallback)
    raise ExperimentError(f"unknown dominance kernel {name!r}")  # pragma: no cover


def get_kernel(name: str | None = None) -> DominanceKernel:
    """The kernel instance for ``name`` (or the process default, see above)."""
    if name is None:
        if _default_override is not None:
            name = _default_override
        else:
            name = env_kernel_name() or (
                "numpy" if _numpy_available() else "purepython"
            )
    canonical = _canonical(name)
    instance = _instances.get(canonical)
    if instance is None:
        instance = _instances[canonical] = _build(canonical)
    return instance


def resolve_kernel(kernel: DominanceKernel | str | None) -> DominanceKernel:
    """Coerce an algorithm's ``kernel`` argument (instance, name or None)."""
    if isinstance(kernel, DominanceKernel):
        return kernel
    return get_kernel(kernel)


def set_default_kernel(name: str | None) -> None:
    """Install (or clear, with ``None``) a process-wide backend override."""
    global _default_override
    _default_override = None if name is None else _canonical(name)
