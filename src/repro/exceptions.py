"""Exception hierarchy for the TSS reproduction library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Specific subclasses signal malformed partial
orders, schema/data mismatches and index misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PartialOrderError(ReproError):
    """A partial-order specification is invalid (cycle, unknown value, ...)."""


class CycleError(PartialOrderError):
    """The preference graph contains a cycle and is therefore not a DAG."""


class UnknownValueError(PartialOrderError, KeyError):
    """A value was referenced that does not belong to the domain."""


class SchemaError(ReproError):
    """A schema definition is inconsistent or incompatible with a dataset."""


class DatasetError(ReproError):
    """A dataset is malformed (ragged rows, out-of-domain values, ...)."""


class IndexError_(ReproError):
    """An R-tree or page-store operation was used incorrectly."""


class QueryError(ReproError):
    """A (dynamic) skyline query specification is invalid."""


class ExperimentError(ReproError):
    """A benchmark/experiment configuration is invalid."""


class ServiceError(ReproError):
    """A query-service request failed (connection, protocol or server side)."""


class StoreError(ReproError):
    """A persisted dataset store is unreadable, corrupt or incompatible.

    Messages name the offending file and, for format mismatches, the format
    version this build expects — the store analogue of the env-var resolver
    errors (REPRO_WORKERS/REPRO_MERGE) that name their source.
    """
