"""Exception hierarchy for the TSS reproduction library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Specific subclasses signal malformed partial
orders, schema/data mismatches and index misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PartialOrderError(ReproError):
    """A partial-order specification is invalid (cycle, unknown value, ...)."""


class CycleError(PartialOrderError):
    """The preference graph contains a cycle and is therefore not a DAG."""


class UnknownValueError(PartialOrderError, KeyError):
    """A value was referenced that does not belong to the domain."""


class SchemaError(ReproError):
    """A schema definition is inconsistent or incompatible with a dataset."""


class DatasetError(ReproError):
    """A dataset is malformed (ragged rows, out-of-domain values, ...)."""


class IndexError_(ReproError):
    """An R-tree or page-store operation was used incorrectly."""


class QueryError(ReproError):
    """A (dynamic) skyline query specification is invalid."""


class ExperimentError(ReproError):
    """A benchmark/experiment configuration is invalid."""


class ServiceError(ReproError):
    """A query-service request failed (connection, protocol or server side)."""


class DeadlineExceededError(ReproError):
    """A request's deadline elapsed before the work completed.

    Raised by the engine between query phases, by the service when the
    per-request ``deadline_ms`` budget runs out server-side, and surfaced to
    :class:`~repro.service.client.ServiceClient` callers as the same type, so
    one ``except DeadlineExceededError`` covers local and remote execution.
    """


class RetryExhaustedError(ServiceError):
    """Every retry attempt of an idempotent service request failed.

    Carries the per-attempt failure history in :attr:`attempts` (one message
    per attempt, in order) so callers and logs can see what each try hit.
    """

    def __init__(self, message: str, attempts: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.attempts = attempts


class InjectedFaultError(ReproError):
    """A deterministic fault injected by :mod:`repro.faults` fired.

    Only ever raised when a ``REPRO_FAULTS`` spec (or an explicit
    :func:`repro.faults.install`) is active; production paths without fault
    injection never see it.
    """


class StoreError(ReproError):
    """A persisted dataset store is unreadable, corrupt or incompatible.

    Messages name the offending file and, for format mismatches, the format
    version this build expects — the store analogue of the env-var resolver
    errors (REPRO_WORKERS/REPRO_MERGE) that name their source.
    """
