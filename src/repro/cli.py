"""Command-line interface: run the paper's experiments and print their tables.

Examples
--------
Run one figure with the quick profile::

    python -m repro fig7

Run everything with the larger profile and write a combined report::

    python -m repro all --profile full --output results.txt
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import render_tables
from repro.bench.runner import BenchProfile


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tss-bench",
        description="Reproduce the tables and figures of 'Topologically Sorted Skylines "
        "for Partially Ordered Domains' (ICDE 2009).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids to run, or 'all'; available: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--profile",
        choices=("quick", "full"),
        default=None,
        help="parameter grid size (default: REPRO_BENCH_PROFILE env var or 'quick')",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the rendered tables to this file",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="render tables as markdown instead of fixed-width text",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="additionally render each experiment as a text bar chart",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.profile is None:
        profile = BenchProfile.from_env()
    else:
        profile = BenchProfile.full() if args.profile == "full" else BenchProfile.quick()

    requested = list(args.experiments)
    if any(item == "all" for item in requested):
        requested = sorted(EXPERIMENTS)

    unknown = [item for item in requested if item not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2

    tables = []
    for experiment_id in requested:
        print(f"running {experiment_id} (profile={profile.name}) ...", file=sys.stderr)
        tables.append(run_experiment(experiment_id, profile))

    if args.markdown:
        rendered = "\n\n".join(table.to_markdown() for table in tables)
    else:
        rendered = render_tables(tables)
    if args.chart:
        from repro.bench.charts import render_experiment_chart

        rendered += "\n\n" + "\n\n".join(render_experiment_chart(table) for table in tables)
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
