"""Command-line interface: experiments, batch queries and kernel inspection.

Subcommands
-----------
``run`` (default)
    Reproduce the paper's tables and figures.  For backward compatibility the
    subcommand name may be omitted: ``python -m repro fig7`` works.
``batch-query``
    Evaluate a batch of dynamic-preference skyline queries over one synthetic
    workload through :class:`~repro.engine.batch.BatchQueryEngine`.
``kernels``
    List the available dominance kernel backends.

Examples
--------
Run one figure with the quick profile::

    python -m repro fig7

Run everything with the larger profile and write a combined report::

    python -m repro all --profile full --output results.txt

Answer 20 random preference queries over a 5k-tuple workload, forcing the
pure-Python kernel::

    python -m repro batch-query --cardinality 5000 --queries 20 --kernel purepython
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import render_tables
from repro.bench.runner import BenchProfile
from repro.exceptions import ExperimentError
from repro.kernels import available_kernels, get_kernel, set_default_kernel


def _select_kernel(name: str | None) -> int:
    """Install the CLI kernel override; returns an exit code (0 = ok)."""
    if not name:
        return 0
    try:
        set_default_kernel(name)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        print(f"available kernels: {', '.join(available_kernels())}", file=sys.stderr)
        return 2
    return 0


def _add_kernel_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        default=None,
        help="dominance kernel backend (purepython/numpy; default: REPRO_KERNEL "
        "env var, else numpy when available)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tss-bench",
        description="Reproduce the tables and figures of 'Topologically Sorted Skylines "
        "for Partially Ordered Domains' (ICDE 2009).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids to run, or 'all'; available: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--profile",
        choices=("quick", "full"),
        default=None,
        help="parameter grid size (default: REPRO_BENCH_PROFILE env var or 'quick')",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the rendered tables to this file",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="render tables as markdown instead of fixed-width text",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="additionally render each experiment as a text bar chart",
    )
    _add_kernel_option(parser)
    return parser


def build_batch_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tss-bench batch-query",
        description="Evaluate a batch of dynamic-preference skyline queries over one "
        "synthetic workload with shared dominance work and per-topology caching.",
    )
    parser.add_argument("--cardinality", type=int, default=2000, help="dataset size N")
    parser.add_argument("--to", type=int, default=2, dest="num_total_order", help="|TO| attributes")
    parser.add_argument("--po", type=int, default=1, dest="num_partial_order", help="|PO| attributes")
    parser.add_argument("--height", type=int, default=6, help="PO lattice height h")
    parser.add_argument("--density", type=float, default=0.8, help="PO lattice density d")
    parser.add_argument(
        "--distribution",
        choices=("independent", "anticorrelated", "correlated"),
        default="independent",
    )
    parser.add_argument("--queries", type=int, default=10, help="number of random queries")
    parser.add_argument("--repeat", type=int, default=1, help="repeat the query list this many times (exercises the cache)")
    parser.add_argument("--seed", type=int, default=7, help="workload / query seed")
    parser.add_argument(
        "--no-prefilter",
        action="store_true",
        help="disable the shared per-PO-group TO-Pareto prefilter",
    )
    parser.add_argument("--json", default=None, help="write results as JSON to this file")
    _add_kernel_option(parser)
    return parser


def batch_query_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``batch-query`` subcommand."""
    from repro.data.workloads import WorkloadSpec
    from repro.engine.batch import BatchQuery, BatchQueryEngine, queries_from_seeds

    args = build_batch_query_parser().parse_args(argv)
    if (code := _select_kernel(args.kernel)) != 0:
        return code

    spec = WorkloadSpec(
        name="batch-query",
        distribution=args.distribution,
        cardinality=args.cardinality,
        num_total_order=args.num_total_order,
        num_partial_order=args.num_partial_order,
        dag_height=args.height,
        dag_density=args.density,
        seed=args.seed,
    )
    schema, dataset = spec.build()
    engine = BatchQueryEngine(dataset, prefilter=not args.no_prefilter)

    queries = [BatchQuery("base")]
    queries += queries_from_seeds(schema, range(args.seed, args.seed + args.queries))
    queries = queries * max(1, args.repeat)

    rows = []
    for result in engine.run(queries):
        rows.append(
            {
                "query": result.name,
                "skyline_size": len(result.skyline_ids),
                "from_cache": result.from_cache,
                "seconds": result.seconds,
            }
        )
        source = "cache" if result.from_cache else f"{result.seconds * 1000:8.1f} ms"
        print(f"{result.name:>8}  |skyline|={len(result.skyline_ids):<5d}  {source}")

    summary = engine.summary()
    print(
        f"\n{summary['dataset_size']} tuples, {summary['candidates_after_prefilter']} "
        f"after prefilter; {summary['queries_evaluated']} evaluated, "
        f"{summary['cache_hits']} served from cache "
        f"({summary['unique_topologies']} unique topologies, kernel={summary['kernel']})"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"summary": summary, "results": rows}, handle, indent=2)
            handle.write("\n")
    return 0


def kernels_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``kernels`` subcommand."""
    argparse.ArgumentParser(
        prog="tss-bench kernels",
        description="List the available dominance kernel backends.",
    ).parse_args(argv)
    try:
        default = get_kernel().name
    except ExperimentError as error:  # e.g. a bogus REPRO_KERNEL env var
        print(f"error: {error}", file=sys.stderr)
        default = None
    for name in available_kernels():
        marker = " (default)" if name == default else ""
        print(f"{name}{marker}")
    return 0 if default is not None else 2


def main(argv: Sequence[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "batch-query":
        return batch_query_main(arguments[1:])
    if arguments and arguments[0] == "kernels":
        return kernels_main(arguments[1:])
    if arguments and arguments[0] == "run":
        arguments = arguments[1:]

    args = build_parser().parse_args(arguments)
    if (code := _select_kernel(args.kernel)) != 0:
        return code
    if args.profile is None:
        profile = BenchProfile.from_env()
    else:
        profile = BenchProfile.full() if args.profile == "full" else BenchProfile.quick()

    requested = list(args.experiments)
    if any(item == "all" for item in requested):
        requested = sorted(EXPERIMENTS)

    unknown = [item for item in requested if item not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2

    tables = []
    for experiment_id in requested:
        print(f"running {experiment_id} (profile={profile.name}) ...", file=sys.stderr)
        tables.append(run_experiment(experiment_id, profile))

    if args.markdown:
        rendered = "\n\n".join(table.to_markdown() for table in tables)
    else:
        rendered = render_tables(tables)
    if args.chart:
        from repro.bench.charts import render_experiment_chart

        rendered += "\n\n" + "\n\n".join(render_experiment_chart(table) for table in tables)
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
