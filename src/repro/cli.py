"""Command-line interface: experiments, batch queries, service and kernels.

Subcommands
-----------
``run`` (default)
    Reproduce the paper's tables and figures.  For backward compatibility the
    subcommand name may be omitted: ``python -m repro fig7`` works.
``batch-query``
    Evaluate a batch of dynamic-preference skyline queries over one synthetic
    workload — or a packed store (``--store``) — through
    :class:`~repro.engine.batch.BatchQueryEngine`.
``serve``
    Start the long-running JSON-over-TCP skyline query service
    (:mod:`repro.service`) over one synthetic workload or a packed store.
``query``
    Send one request (query / ping / stats / shutdown) to a running service.
``mutate``
    Send live mutations (insert / delete / compact) to a running service's
    delta plane.
``pack``
    Pack one synthetic workload into a single mmap-able dataset store file
    for instant cold starts (``--store`` on batch-query/serve).
``kernels``
    List the available dominance kernel backends.
``lint``
    Run the ``reprolint`` architectural-invariant checks (``tools/reprolint``)
    over the source tree — see README "Static analysis & invariants".

Examples
--------
Run one figure with the quick profile::

    python -m repro fig7

Answer 20 random preference queries over a 5k-tuple workload, forcing the
pure-Python kernel::

    python -m repro batch-query --cardinality 5000 --queries 20 --kernel purepython

Serve a 50k-tuple workload on 4 worker processes and query it::

    python -m repro serve --cardinality 50000 --workers 4 &
    python -m repro query --wait 30 --seed 3
    python -m repro query --stats
    python -m repro query --shutdown

Pack the same workload once, then serve it with a zero-copy mmap cold start::

    python -m repro pack --cardinality 50000 --out catalog.rpro
    python -m repro serve --store catalog.rpro --workers 4

Apply live updates to the served store through the delta plane::

    python -m repro mutate --insert-json rows.json
    python -m repro mutate --delete 17 42
    python -m repro mutate --compact
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import render_tables
from repro.bench.runner import BenchProfile
from repro.config import RuntimeConfig
from repro.exceptions import ExperimentError, ReproError
from repro.index.registry import available_indexes, resolve_index, set_default_index
from repro.kernels import available_kernels, get_kernel, set_default_kernel


def _select_kernel(name: str | None) -> int:
    """Install the CLI kernel override; returns an exit code (0 = ok)."""
    if not name:
        return 0
    try:
        set_default_kernel(name)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        print(f"available kernels: {', '.join(available_kernels())}", file=sys.stderr)
        return 2
    return 0


def _select_index(name: str | None) -> int:
    """Install the CLI spatial-index override; returns an exit code (0 = ok)."""
    if not name:
        return 0
    try:
        set_default_index(name)
        resolve_index(None)  # fail fast on e.g. 'flat' without NumPy
    except ExperimentError as error:
        set_default_index(None)
        print(f"error: {error}", file=sys.stderr)
        print(f"available indexes: {', '.join(available_indexes())}", file=sys.stderr)
        return 2
    return 0


def _add_kernel_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        default=None,
        help="dominance kernel backend (purepython/numpy/jit; default: "
        "REPRO_KERNEL env var, else numpy when available; jit needs the "
        "[jit] extra and falls back to numpy with a warning without it)",
    )
    parser.add_argument(
        "--index",
        default=None,
        help="spatial index backend (flat/pointer; default: REPRO_INDEX env "
        "var, else flat when NumPy is available)",
    )


def _add_sharding_options(parser: argparse.ArgumentParser) -> None:
    """``--workers`` mirrors ``--kernel``: flag, then REPRO_WORKERS, then 0."""
    parser.add_argument(
        "--workers",
        default=None,
        help="worker processes for sharded execution (default: REPRO_WORKERS "
        "env var, else 0 = single process)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="number of data shards (default: one per worker)",
    )
    parser.add_argument(
        "--partitioner",
        choices=("round-robin", "po-group"),
        default="round-robin",
        help="dataset sharding strategy",
    )
    parser.add_argument(
        "--merge-strategy",
        choices=("sort-merge", "all-pairs"),
        default=None,
        help="cross-shard merge strategy (default: REPRO_MERGE env var, else "
        "sort-merge; all-pairs is the legacy batched sweep kept for A/B runs)",
    )
    parser.add_argument(
        "--frame",
        choices=("on", "off"),
        default=None,
        help="columnar frame data plane (default: REPRO_FRAME env var, else "
        "on when NumPy is available; off falls back to record-at-a-time)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="open this packed dataset store (written by 'repro pack') instead "
        "of generating a synthetic workload (default: REPRO_STORE env var)",
    )
    parser.add_argument(
        "--mmap",
        choices=("on", "off"),
        default=None,
        help="memory-map packed store arrays zero-copy instead of loading "
        "them into process memory (default: REPRO_MMAP env var, else on "
        "when NumPy is available)",
    )
    parser.add_argument(
        "--crc",
        choices=("eager", "lazy"),
        default=None,
        help="store checksum mode: verify every section at open (eager) or "
        "each section on first touch (lazy; default: REPRO_CRC env var, "
        "else eager)",
    )
    parser.add_argument(
        "--compact-threshold",
        type=int,
        default=None,
        metavar="N",
        help="fold the delta plane into a fresh base after N pending "
        "mutations; 0 disables auto-compaction (default: "
        "REPRO_COMPACT_THRESHOLD env var, else 8192)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault-injection spec, e.g. "
        "'store.section_read:raise' or 'pool.worker_task:delay:ms=50' "
        "(chaos testing; default: REPRO_FAULTS env var, else off)",
    )


def _add_workload_options(parser: argparse.ArgumentParser) -> None:
    """The synthetic-workload knobs shared by batch-query and serve."""
    parser.add_argument("--cardinality", type=int, default=2000, help="dataset size N")
    parser.add_argument("--to", type=int, default=2, dest="num_total_order", help="|TO| attributes")
    parser.add_argument("--po", type=int, default=1, dest="num_partial_order", help="|PO| attributes")
    parser.add_argument("--height", type=int, default=6, help="PO lattice height h")
    parser.add_argument("--density", type=float, default=0.8, help="PO lattice density d")
    parser.add_argument(
        "--distribution",
        choices=("independent", "anticorrelated", "correlated"),
        default="independent",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload / query seed")
    parser.add_argument(
        "--no-prefilter",
        action="store_true",
        help="disable the shared per-PO-group TO-Pareto prefilter",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="LRU bound of the per-topology result/encoding caches "
        f"(default {_default_cache_size()})",
    )


def _default_cache_size() -> int:
    from repro.engine.batch import DEFAULT_CACHE_SIZE

    return DEFAULT_CACHE_SIZE


def _build_workload(args, name: str):
    from repro.data.workloads import WorkloadSpec

    spec = WorkloadSpec(
        name=name,
        distribution=args.distribution,
        cardinality=args.cardinality,
        num_total_order=args.num_total_order,
        num_partial_order=args.num_partial_order,
        dag_height=args.height,
        dag_density=args.density,
        seed=args.seed,
    )
    return spec.build()


def _runtime_config(args) -> RuntimeConfig:
    """One resolved :class:`RuntimeConfig` from the CLI flags.

    Unset flags fall through to their ``REPRO_*`` environment variables.
    Kernel and index are process-wide overrides (``_select_kernel`` /
    ``_select_index`` install them before any engine is built), so they are
    deliberately left unset here.
    """
    return RuntimeConfig.resolve(
        frame=args.frame,
        workers=args.workers,
        shards=args.shards,
        partitioner=args.partitioner,
        merge=args.merge_strategy,
        prefilter=not args.no_prefilter,
        cache_size=args.cache_size,
        store=args.store,
        mmap=args.mmap,
        crc=args.crc,
        compact_threshold=args.compact_threshold,
        faults=args.faults,
    )


def _open_engine(args, name: str):
    """The configured engine: a packed store when given, else a fresh workload."""
    from repro.api import open_dataset

    config = _runtime_config(args)
    if config.store is not None:
        return open_dataset(config.store, config=config)
    _, dataset = _build_workload(args, name)
    return open_dataset(dataset, config=config)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tss-bench",
        description="Reproduce the tables and figures of 'Topologically Sorted Skylines "
        "for Partially Ordered Domains' (ICDE 2009).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids to run, or 'all'; available: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--profile",
        choices=("quick", "full"),
        default=None,
        help="parameter grid size (default: REPRO_BENCH_PROFILE env var or 'quick')",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the rendered tables to this file",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="render tables as markdown instead of fixed-width text",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="additionally render each experiment as a text bar chart",
    )
    _add_kernel_option(parser)
    return parser


def build_batch_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tss-bench batch-query",
        description="Evaluate a batch of dynamic-preference skyline queries over one "
        "synthetic workload with shared dominance work and per-topology caching.",
    )
    _add_workload_options(parser)
    parser.add_argument("--queries", type=int, default=10, help="number of random queries")
    parser.add_argument("--repeat", type=int, default=1, help="repeat the query list this many times (exercises the cache)")
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase timings (encode / build / index_build / query / "
        "merge) with the summary",
    )
    parser.add_argument("--json", default=None, help="write results as JSON to this file")
    _add_kernel_option(parser)
    _add_sharding_options(parser)
    return parser


def batch_query_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``batch-query`` subcommand."""
    from repro.engine.batch import BatchQuery, queries_from_seeds

    args = build_batch_query_parser().parse_args(argv)
    if (code := _select_kernel(args.kernel)) != 0:
        return code
    if (code := _select_index(args.index)) != 0:
        return code

    try:
        with _open_engine(args, "batch-query") as engine:
            schema = engine.schema
            queries = [BatchQuery("base")]
            queries += queries_from_seeds(schema, range(args.seed, args.seed + args.queries))
            queries = queries * max(1, args.repeat)

            rows = []
            for result in engine.run(queries):
                rows.append(
                    {
                        "query": result.name,
                        "skyline_size": len(result.skyline_ids),
                        "from_cache": result.from_cache,
                        "seconds": result.seconds,
                    }
                )
                source = "cache" if result.from_cache else f"{result.seconds * 1000:8.1f} ms"
                print(f"{result.name:>8}  |skyline|={len(result.skyline_ids):<5d}  {source}")

            summary = engine.summary()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    workers = summary["workers"]
    sharded = f", workers={workers}" if workers else ""
    print(
        f"\n{summary['dataset_size']} tuples, {summary['candidates_after_prefilter']} "
        f"after prefilter; {summary['queries_evaluated']} evaluated, "
        f"{summary['cache_hits']} served from cache "
        f"({summary['cached_topologies']} cached topologies, kernel={summary['kernel']}"
        f"{sharded})"
    )
    if args.profile:
        phases = summary["phase_seconds"]
        total = sum(phases.values())
        rendered = " | ".join(
            f"{name} {phases[name] * 1000:.1f} ms"
            for name in (
                "kernel_warmup",
                "encode",
                "build",
                "index_build",
                "query",
                "merge",
            )
        )
        print(f"phases: {rendered} | total {total * 1000:.1f} ms")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"summary": summary, "results": rows}, handle, indent=2)
            handle.write("\n")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tss-bench serve",
        description="Serve dynamic-preference skyline queries over one synthetic "
        "workload: JSON over TCP, shared result cache, optional sharded "
        "parallel execution.",
    )
    parser.add_argument("--host", default=None, help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default 7409; 0 picks an ephemeral port)",
    )
    _add_workload_options(parser)
    _add_kernel_option(parser)
    _add_sharding_options(parser)
    return parser


def serve_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``serve`` subcommand."""
    import asyncio

    from repro.service import DEFAULT_HOST, DEFAULT_PORT, QueryService

    args = build_serve_parser().parse_args(argv)
    if (code := _select_kernel(args.kernel)) != 0:
        return code
    if (code := _select_index(args.index)) != 0:
        return code

    async def _serve() -> None:
        service = QueryService(_open_engine(args, "serve"))
        # SIGTERM/SIGINT drain in-flight requests and close the pool, then
        # exit 0 — the same path a client 'shutdown' op takes.
        service.install_signal_handlers()
        host, port = await service.start(
            args.host if args.host is not None else DEFAULT_HOST,
            args.port if args.port is not None else DEFAULT_PORT,
        )
        summary = service.engine.summary()
        print(
            f"repro serve: listening on {host}:{port} "
            f"({summary['dataset_size']} tuples, "
            f"{summary['candidates_after_prefilter']} candidates, "
            f"kernel={summary['kernel']}, workers={summary['workers']})",
            flush=True,
        )
        await service.serve_until_shutdown()
        stats = service.stats()
        print(
            f"repro serve: shut down cleanly after {stats['queries']} queries "
            f"({stats['requests_served']} requests, "
            f"{stats['connections_served']} connections)",
            flush=True,
        )

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: interrupted", file=sys.stderr)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def build_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tss-bench query",
        description="Send one request to a running 'repro serve' instance.",
    )
    parser.add_argument("--host", default=None, help="service address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None, help="service port (default 7409)")
    parser.add_argument(
        "--wait",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="wait up to this long for the service to become ready first",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-response socket timeout (raise it for big cold queries)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="send the query this many times (exercises the cache)"
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-request server-side deadline in milliseconds (expiry "
        "answers a typed deadline_exceeded error, never partial results)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="transport-failure retries for idempotent requests (default 2)",
    )
    parser.add_argument("--json", default=None, help="write the raw response(s) to this file")
    what = parser.add_mutually_exclusive_group()
    what.add_argument(
        "--seed",
        type=int,
        default=None,
        help="query with server-side random preferences drawn from this seed",
    )
    what.add_argument(
        "--overrides-json",
        default=None,
        metavar="FILE",
        help="query with explicit DAG overrides read from a JSON file "
        '({"po1": {"values": [...], "edges": [[u, v], ...]}})',
    )
    what.add_argument("--stats", action="store_true", help="fetch service statistics")
    what.add_argument("--ping", action="store_true", help="liveness probe")
    what.add_argument("--shutdown", action="store_true", help="stop the service cleanly")
    return parser


def query_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``query`` subcommand."""
    from repro.service import DEFAULT_HOST, DEFAULT_PORT, ServiceClient, wait_for_service

    args = build_query_parser().parse_args(argv)
    host = args.host if args.host is not None else DEFAULT_HOST
    port = args.port if args.port is not None else DEFAULT_PORT

    overrides = None
    if args.overrides_json is not None:
        try:
            with open(args.overrides_json, encoding="utf-8") as handle:
                overrides = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: cannot read overrides file: {error}", file=sys.stderr)
            return 2

    try:
        if args.wait > 0:
            wait_for_service(host, port, timeout=args.wait)
        responses: list[dict] = []
        with ServiceClient(
            host, port, timeout=args.timeout, retries=args.retries
        ) as client:
            if args.ping:
                responses.append(client.ping())
                print(f"pong (protocol {responses[-1]['protocol']})")
            elif args.stats:
                stats = client.stats()
                responses.append({"ok": True, "stats": stats})
                print(json.dumps(stats, indent=2))
            elif args.shutdown:
                responses.append(client.shutdown())
                print("service stopping")
            else:
                payload: dict[str, object] = {"op": "query", "omit_ids": True}
                if args.seed is not None:
                    payload["seed"] = args.seed
                elif overrides is not None:
                    payload["overrides"] = overrides
                if args.deadline_ms is not None:
                    payload["deadline_ms"] = args.deadline_ms
                for _ in range(max(1, args.repeat)):
                    response = client.checked_request(payload)
                    responses.append(response)
                    source = (
                        "cache"
                        if response["from_cache"]
                        else f"{float(response['seconds']) * 1000:8.1f} ms"
                    )
                    print(
                        f"{response['name']:>8}  |skyline|={response['skyline_size']:<5d}  {source}"
                    )
    except ReproError as error:
        # Covers ServiceError (connection/protocol) and server-relayed store
        # failures — e.g. '--stats'/'--shutdown' against a service whose
        # packed store went stale: the StoreError text names the store path
        # and the format version this build reads.
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(responses if len(responses) > 1 else responses[0], handle, indent=2)
            handle.write("\n")
    return 0


def build_mutate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tss-bench mutate",
        description="Apply live mutations (insert / delete / compact) to a "
        "running 'repro serve' instance's delta plane.",
    )
    parser.add_argument("--host", default=None, help="service address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None, help="service port (default 7409)")
    parser.add_argument(
        "--wait",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="wait up to this long for the service to become ready first",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-response socket timeout (raise it for big compactions)",
    )
    parser.add_argument(
        "--token",
        default=None,
        metavar="TOKEN",
        help="idempotency token: makes --insert-json/--delete retry-safe "
        "(the server replays the remembered response on re-delivery)",
    )
    parser.add_argument("--json", default=None, help="write the raw response(s) to this file")
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument(
        "--insert-json",
        default=None,
        metavar="FILE",
        help="insert the rows read from a JSON file: a list of attribute-value "
        "lists in schema order ([[1.5, 2.0, \"a\"], ...])",
    )
    what.add_argument(
        "--delete",
        type=int,
        nargs="+",
        default=None,
        metavar="ID",
        help="tombstone these stable record ids",
    )
    what.add_argument(
        "--compact",
        action="store_true",
        help="fold the delta plane into a fresh base now",
    )
    return parser


def mutate_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``mutate`` subcommand."""
    from repro.service import DEFAULT_HOST, DEFAULT_PORT, ServiceClient, wait_for_service

    args = build_mutate_parser().parse_args(argv)
    host = args.host if args.host is not None else DEFAULT_HOST
    port = args.port if args.port is not None else DEFAULT_PORT

    rows = None
    if args.insert_json is not None:
        try:
            with open(args.insert_json, encoding="utf-8") as handle:
                rows = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: cannot read rows file: {error}", file=sys.stderr)
            return 2

    response: dict[str, object]
    try:
        if args.wait > 0:
            wait_for_service(host, port, timeout=args.wait)
        with ServiceClient(host, port, timeout=args.timeout) as client:
            token = {"token": args.token} if args.token else {}
            if rows is not None:
                response = client.checked_request(
                    {"op": "insert", "rows": rows, **token}
                )
                ids = response["ids"]
                print(f"inserted {response['inserted']} rows -> ids {ids}")
            elif args.delete is not None:
                response = client.checked_request(
                    {"op": "delete", "ids": args.delete, **token}
                )
                print(f"deleted {response['deleted']} of {len(args.delete)} ids")
            else:
                response = client.checked_request({"op": "compact"})
                summary = response["compaction"]
                if summary.get("compacted"):
                    print(
                        f"compacted {summary['folded_mutations']} mutations into "
                        f"{summary['rows']} rows "
                        f"(generation {summary.get('generation', '-')}, "
                        f"{summary['seconds'] * 1000:.1f} ms)"
                    )
                else:
                    print("nothing to compact")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(response, handle, indent=2)
            handle.write("\n")
    return 0


def build_pack_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tss-bench pack",
        description="Pack one synthetic workload into a single mmap-able "
        "dataset store file: encoded columns, prefiltered survivors, the "
        "base-topology mapping and its bulk-loaded spatial index.",
    )
    _add_workload_options(parser)
    parser.add_argument(
        "--out", required=True, metavar="PATH", help="store file to write"
    )
    parser.add_argument(
        "--max-entries",
        type=int,
        default=32,
        help="R-tree fanout persisted for the base topology (default 32)",
    )
    _add_kernel_option(parser)
    return parser


def pack_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``pack`` subcommand."""
    from repro.api import pack

    args = build_pack_parser().parse_args(argv)
    if (code := _select_kernel(args.kernel)) != 0:
        return code
    if (code := _select_index(args.index)) != 0:
        return code

    _, dataset = _build_workload(args, "pack")
    try:
        summary = pack(dataset, args.out, max_entries=args.max_entries)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    base = summary["base"]
    artifacts = "frame"
    if base["has_mapping"]:
        artifacts += "+mapping"
    if base["has_index"]:
        artifacts += "+index"
    print(
        f"packed {summary['rows']} tuples -> {summary['path']} "
        f"({summary['bytes']} bytes, format v{summary['format_version']}, "
        f"{summary['survivors']} survivors, {artifacts})"
    )
    return 0


def lint_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``lint`` subcommand — delegates to tools/reprolint.

    The linter is a dev tool shipped in the source checkout (not the wheel);
    it is importable either directly (``PYTHONPATH=tools``) or by resolving
    ``tools/`` relative to this file / the working directory.
    """
    try:
        from reprolint.cli import main as reprolint_main
    except ImportError:
        import pathlib

        for base in (pathlib.Path(__file__).resolve().parents[2], pathlib.Path.cwd()):
            candidate = base / "tools"
            if (candidate / "reprolint" / "__init__.py").is_file():
                sys.path.insert(0, str(candidate))
                break
        try:
            from reprolint.cli import main as reprolint_main
        except ImportError:
            print(
                "error: reprolint not found — 'repro lint' needs the "
                "tools/reprolint package of a source checkout",
                file=sys.stderr,
            )
            return 2
    return reprolint_main(list(argv) if argv is not None else [])


def kernels_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``kernels`` subcommand."""
    argparse.ArgumentParser(
        prog="tss-bench kernels",
        description="List the available dominance kernel backends.",
    ).parse_args(argv)
    try:
        default = get_kernel().name
    except ExperimentError as error:  # e.g. a bogus REPRO_KERNEL env var
        print(f"error: {error}", file=sys.stderr)
        default = None
    for name in available_kernels():
        marker = " (default)" if name == default else ""
        print(f"{name}{marker}")
    return 0 if default is not None else 2


def main(argv: Sequence[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "batch-query":
        return batch_query_main(arguments[1:])
    if arguments and arguments[0] == "serve":
        return serve_main(arguments[1:])
    if arguments and arguments[0] == "query":
        return query_main(arguments[1:])
    if arguments and arguments[0] == "mutate":
        return mutate_main(arguments[1:])
    if arguments and arguments[0] == "pack":
        return pack_main(arguments[1:])
    if arguments and arguments[0] == "kernels":
        return kernels_main(arguments[1:])
    if arguments and arguments[0] == "lint":
        return lint_main(arguments[1:])
    if arguments and arguments[0] == "run":
        arguments = arguments[1:]

    args = build_parser().parse_args(arguments)
    if (code := _select_kernel(args.kernel)) != 0:
        return code
    if (code := _select_index(args.index)) != 0:
        return code
    if args.profile is None:
        profile = BenchProfile.from_env()
    else:
        profile = BenchProfile.full() if args.profile == "full" else BenchProfile.quick()

    requested = list(args.experiments)
    if any(item == "all" for item in requested):
        requested = sorted(EXPERIMENTS)

    unknown = [item for item in requested if item not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2

    tables = []
    for experiment_id in requested:
        print(f"running {experiment_id} (profile={profile.name}) ...", file=sys.stderr)
        tables.append(run_experiment(experiment_id, profile))

    if args.markdown:
        rendered = "\n\n".join(table.to_markdown() for table in tables)
    else:
        rendered = render_tables(tables)
    if args.chart:
        from repro.bench.charts import render_experiment_chart

        rendered += "\n\n" + "\n\n".join(render_experiment_chart(table) for table in tables)
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
