"""The fault-injection registry behind :mod:`repro.faults`.

Spec grammar (the value of ``REPRO_FAULTS`` / ``--faults``)::

    spec    := clause (";" clause)*
    clause  := point ":" mode (":" option ("," option)*)?
    option  := key "=" value

``point`` is one of :data:`FAULT_POINTS`; ``mode`` is ``raise`` (raise the
site's exception type, default :class:`~repro.exceptions.InjectedFaultError`),
``delay`` (sleep ``ms`` milliseconds at the site), ``corrupt`` (flip one
deterministic byte of the site's payload; sites with no payload treat it as
``raise``) or ``exit`` (``os._exit`` — process-death simulation for the pool
worker and crash-matrix tests).  Options:

``prob``   fire probability per hit (default ``1.0``)
``seed``   seed for the per-clause RNG deciding probabilistic fires and the
           corrupted byte (default ``0``) — same seed, same decisions
``ms``     delay duration in milliseconds (default ``10``)
``times``  maximum number of fires, then the clause goes dormant (default
           unlimited)
``after``  number of matching hits to skip before the clause may fire
           (default ``0``)
``stage``  only match trips declaring this stage (e.g. the ``pre``/``post``
           sides of an fsync or ``os.replace``)

Example::

    REPRO_FAULTS="pool.worker_task:raise:times=1;client.socket:delay:ms=50,prob=0.5,seed=7"

Every decision is a pure function of the spec, its seed, and the per-process
hit counter, so a seeded chaos run replays exactly.  When nothing is
installed, :func:`trip` is one global load and one ``if`` — zero overhead.
"""

from __future__ import annotations

import asyncio
import os
import random
import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.exceptions import ExperimentError, InjectedFaultError

__all__ = [
    "FAULT_MODES",
    "FAULT_POINTS",
    "FaultRegistry",
    "FaultSpec",
    "describe",
    "install",
    "installed_registry",
    "parse_faults_spec",
    "reset",
    "trip",
    "trip_async",
    "uninstall",
]

#: The named fault points compiled into the serving stack.
FAULT_POINTS = (
    "store.section_read",
    "delta.log_append",
    "delta.compact_replace",
    "pool.worker_task",
    "service.handler",
    "client.socket",
)

#: The recognized fault modes.
FAULT_MODES = ("raise", "delay", "corrupt", "exit")

#: Exit status used by ``exit``-mode faults (recognizable in waitpid output).
FAULT_EXIT_CODE = 117


@dataclass(frozen=True)
class FaultSpec:
    """One parsed clause of a ``REPRO_FAULTS`` spec."""

    point: str
    mode: str
    probability: float = 1.0
    seed: int = 0
    delay_ms: float = 10.0
    times: int | None = None
    after: int = 0
    stage: str | None = None


class _ClauseState:
    """Mutable per-process counters for one spec clause."""

    __slots__ = ("fires", "hits", "rng", "spec")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.hits = 0
        self.fires = 0

    def decide(self) -> bool:
        """Record one matching hit; True when the clause fires on it."""
        self.hits += 1
        if self.hits <= self.spec.after:
            return False
        if self.spec.times is not None and self.fires >= self.spec.times:
            return False
        if self.spec.probability < 1.0 and self.rng.random() >= self.spec.probability:
            return False
        self.fires += 1
        return True


class FaultRegistry:
    """A set of fault clauses with deterministic per-process counters."""

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        for spec in specs:
            _validate_spec(spec)
        self._states = [_ClauseState(spec) for spec in specs]
        self._by_point: dict[str, list[_ClauseState]] = {}
        for state in self._states:
            self._by_point.setdefault(state.spec.point, []).append(state)
        self._lock = threading.Lock()

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        return tuple(state.spec for state in self._states)

    def hit(self, point: str, stage: str | None = None) -> FaultSpec | None:
        """Record a hit at ``point``; the firing clause's spec, or ``None``."""
        states = self._by_point.get(point)
        if not states:
            return None
        fired: FaultSpec | None = None
        with self._lock:
            for state in states:
                want = state.spec.stage
                if want is not None and want != stage:
                    continue
                if state.decide() and fired is None:
                    fired = state.spec
        return fired

    def corrupt_bytes(self, spec: FaultSpec, data: bytes) -> bytes:
        """``data`` with one byte flipped, chosen by the clause's seed."""
        if not data:
            return data
        position = random.Random(spec.seed * 1_000_003 + len(data)).randrange(len(data))
        mutated = bytearray(data)
        mutated[position] ^= 0xFF
        return bytes(mutated)

    def describe(self) -> list[dict[str, object]]:
        """Per-clause counters (for tests, ``stats`` ops and summaries)."""
        with self._lock:
            return [
                {
                    "point": state.spec.point,
                    "mode": state.spec.mode,
                    "stage": state.spec.stage,
                    "hits": state.hits,
                    "fires": state.fires,
                }
                for state in self._states
            ]


def _validate_spec(spec: FaultSpec) -> None:
    if spec.point not in FAULT_POINTS:
        known = ", ".join(FAULT_POINTS)
        raise ExperimentError(
            f"unknown fault point {spec.point!r}; fault points are {known}"
        )
    if spec.mode not in FAULT_MODES:
        raise ExperimentError(
            f"unknown fault mode {spec.mode!r} for {spec.point}; "
            f"modes are {', '.join(FAULT_MODES)}"
        )
    if not 0.0 <= spec.probability <= 1.0:
        raise ExperimentError(
            f"fault probability must be in [0, 1], got {spec.probability}"
        )


def parse_faults_spec(text: str) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` spec string into clause tuples.

    Raises :class:`~repro.exceptions.ExperimentError` on malformed input,
    naming the offending clause.
    """
    specs: list[FaultSpec] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":", 2)
        if len(parts) < 2:
            raise ExperimentError(
                f"malformed fault clause {clause!r}: expected "
                "point:mode[:key=value,...]"
            )
        point, mode = parts[0].strip(), parts[1].strip().lower()
        options: dict[str, str] = {}
        if len(parts) == 3 and parts[2].strip():
            for item in parts[2].split(","):
                key, separator, value = item.partition("=")
                if not separator or not key.strip():
                    raise ExperimentError(
                        f"malformed fault option {item!r} in clause {clause!r}: "
                        "expected key=value"
                    )
                options[key.strip().lower()] = value.strip()
        times_raw = options.pop("times", None)
        try:
            spec = FaultSpec(
                point=point,
                mode=mode,
                probability=float(options.pop("prob", 1.0)),
                seed=int(options.pop("seed", 0)),
                delay_ms=float(options.pop("ms", 10.0)),
                times=None if times_raw is None else int(times_raw),
                after=int(options.pop("after", 0)),
                stage=options.pop("stage", None),
            )
        except ValueError:
            raise ExperimentError(
                f"malformed numeric option in fault clause {clause!r}"
            ) from None
        if options:
            unknown = ", ".join(sorted(options))
            raise ExperimentError(
                f"unknown fault option(s) {unknown} in clause {clause!r}; "
                "options are prob, seed, ms, times, after, stage"
            )
        _validate_spec(spec)
        specs.append(spec)
    return tuple(specs)


# The installed registry.  ``None`` + ``_env_resolved`` False means the
# environment has not been consulted yet; ``None`` + True means faults are
# genuinely off, making the disabled path one load and one ``if``.
_registry: FaultRegistry | None = None
_env_resolved = False
_install_lock = threading.Lock()


def _resolve_from_env() -> FaultRegistry | None:
    global _registry, _env_resolved
    with _install_lock:
        if _env_resolved:
            return _registry
        from repro.config import resolve_faults

        text = resolve_faults()
        _registry = FaultRegistry(parse_faults_spec(text)) if text else None
        _env_resolved = True
        return _registry


def install(spec: str | Sequence[FaultSpec] | FaultRegistry | None) -> None:
    """Install a fault spec for this process (overriding the environment).

    Accepts a spec string, parsed clauses, a prebuilt registry, or ``None``
    (equivalent to :func:`uninstall`).
    """
    global _registry, _env_resolved
    if isinstance(spec, str):
        registry: FaultRegistry | None = FaultRegistry(parse_faults_spec(spec))
    elif isinstance(spec, FaultRegistry) or spec is None:
        registry = spec
    else:
        registry = FaultRegistry(spec)
    with _install_lock:
        _registry = registry
        _env_resolved = True


def uninstall() -> None:
    """Disable fault injection for this process (environment stays ignored)."""
    install(None)


def reset() -> None:
    """Forget the installed registry *and* re-arm environment resolution."""
    global _registry, _env_resolved
    with _install_lock:
        _registry = None
        _env_resolved = False


def installed_registry() -> FaultRegistry | None:
    """The active registry (resolving ``REPRO_FAULTS`` once), or ``None``."""
    if _env_resolved:
        return _registry
    return _resolve_from_env()


def describe() -> list[dict[str, object]]:
    """Per-clause hit/fire counters of the active registry (``[]`` if off)."""
    registry = installed_registry()
    return [] if registry is None else registry.describe()


def _apply(
    registry: FaultRegistry,
    spec: FaultSpec,
    point: str,
    exc: Callable[[str], BaseException] | None,
    data: bytes | None,
) -> bytes | None:
    if spec.mode == "delay":
        time.sleep(spec.delay_ms / 1000.0)
        return data
    if spec.mode == "corrupt" and data is not None:
        return registry.corrupt_bytes(spec, data)
    if spec.mode == "exit":
        os._exit(FAULT_EXIT_CODE)
    if exc is not None:
        raise exc(point)
    raise InjectedFaultError(f"injected fault at {point}")


def trip(
    point: str,
    *,
    stage: str | None = None,
    exc: Callable[[str], BaseException] | None = None,
    data: bytes | None = None,
) -> bytes | None:
    """One fault point: may raise, sleep, or corrupt ``data``.

    Returns ``data`` (corrupted when a ``corrupt`` clause fired, otherwise
    unchanged) so payload sites can write ``payload = trip(..., data=payload)``.
    ``exc`` lets a site substitute a realistic exception type (e.g. a socket
    error) for ``raise``-mode clauses; ``corrupt`` clauses at payload-less
    sites degrade to ``raise`` so no mode is ever silently ignored.
    """
    registry = _registry if _env_resolved else _resolve_from_env()
    if registry is None:
        return data
    spec = registry.hit(point, stage)
    if spec is None:
        return data
    return _apply(registry, spec, point, exc, data)


async def trip_async(
    point: str,
    *,
    stage: str | None = None,
    exc: Callable[[str], BaseException] | None = None,
) -> None:
    """:func:`trip` for coroutine sites: ``delay`` awaits instead of sleeping."""
    registry = _registry if _env_resolved else _resolve_from_env()
    if registry is None:
        return
    spec = registry.hit(point, stage)
    if spec is None:
        return
    if spec.mode == "delay":
        await asyncio.sleep(spec.delay_ms / 1000.0)
        return
    _apply(registry, spec, point, exc, None)
