"""Deterministic, seeded fault injection for the serving stack.

Named fault points are compiled into the hot paths (store section reads,
delta-log appends, compaction swaps, pool worker tasks, service handlers,
client sockets) and stay dormant — a single ``None`` check — until a
``REPRO_FAULTS`` spec is installed, either explicitly via :func:`install`
or resolved from the environment through :class:`repro.config.RuntimeConfig`.
See :mod:`repro.faults.registry` for the spec grammar and semantics.
"""

from repro.faults.registry import (
    FAULT_POINTS,
    FaultRegistry,
    FaultSpec,
    describe,
    install,
    installed_registry,
    parse_faults_spec,
    reset,
    trip,
    trip_async,
    uninstall,
)

__all__ = [
    "FAULT_POINTS",
    "FaultRegistry",
    "FaultSpec",
    "describe",
    "install",
    "installed_registry",
    "parse_faults_spec",
    "reset",
    "trip",
    "trip_async",
    "uninstall",
]
