"""The sidecar delta log: crash-safe mutation persistence for packed stores.

A packed store file is immutable by design (mmap views, page-cache sharing),
so live mutations persist *next to* it, LSM-style, in ``<store>.delta`` — an
append-only log replayed into the engine's in-memory
:class:`~repro.delta.frame.DeltaFrame` at open and folded into a fresh base
by compaction.

Layout::

    header:  8-byte magic ``RPRODLOG`` + ``<Q`` generation
    entry:   1-byte kind (``I``/``D``) + ``<I`` crc32(kind+payload)
             + ``<Q`` payload length + payload
    insert payload: ``<Q`` count, ``<Q`` num_to, ``<Q`` num_po,
             count ``<q`` record ids, count*num_to ``<d`` canonical TO
             values, count*num_po ``<i`` canonical PO codes
    delete payload: ``<Q`` count, count ``<q`` record ids

Two invariants make every crash point recoverable:

* **Per-entry checksums + torn-tail tolerance.**  Loading stops at the first
  incomplete or checksum-failing entry and keeps the valid prefix; the next
  append overwrites the torn tail.  A mutation is durable exactly when its
  entry was fully written.
* **Generation fencing.**  The log's header carries the store generation it
  was written against; compaction writes the new store (``os.replace``,
  atomic) *before* resetting the log, so a crash between the two leaves a
  stale-generation log that loaders simply discard — mutations are never
  applied twice.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections.abc import Sequence

from repro.exceptions import StoreError

LOG_MAGIC = b"RPRODLOG"
_HEADER = struct.Struct("<8sQ")
_FRAME = struct.Struct("<cIQ")

#: Default sidecar suffix: ``catalog.rpro`` logs to ``catalog.rpro.delta``.
LOG_SUFFIX = ".delta"


def delta_log_path(store_path) -> str:
    return os.fspath(store_path) + LOG_SUFFIX


def _encode_insert_payload(ids, to_rows, code_rows) -> bytes:
    count = len(ids)
    num_to = len(to_rows[0]) if count else 0
    num_po = len(code_rows[0]) if count else 0
    parts = [struct.pack("<QQQ", count, num_to, num_po)]
    parts.append(struct.pack(f"<{count}q", *[int(i) for i in ids]))
    flat_to = [float(v) for row in to_rows for v in row]
    parts.append(struct.pack(f"<{len(flat_to)}d", *flat_to))
    flat_codes = [int(c) for row in code_rows for c in row]
    parts.append(struct.pack(f"<{len(flat_codes)}i", *flat_codes))
    return b"".join(parts)


def _decode_insert_payload(payload: bytes):
    count, num_to, num_po = struct.unpack_from("<QQQ", payload, 0)
    offset = 24
    ids = list(struct.unpack_from(f"<{count}q", payload, offset))
    offset += 8 * count
    flat_to = struct.unpack_from(f"<{count * num_to}d", payload, offset)
    offset += 8 * count * num_to
    flat_codes = struct.unpack_from(f"<{count * num_po}i", payload, offset)
    to_rows = [
        tuple(flat_to[r * num_to : (r + 1) * num_to]) for r in range(count)
    ]
    code_rows = [
        tuple(flat_codes[r * num_po : (r + 1) * num_po]) for r in range(count)
    ]
    return ids, to_rows, code_rows


class DeltaLog:
    """One sidecar mutation log, loaded once and then append-only."""

    def __init__(self, path: str, generation: int, entries: list, valid_end: int) -> None:
        self.path = path
        self.generation = int(generation)
        #: Entries recovered at load: ``("insert", ids, to_rows, code_rows)``
        #: or ``("delete", ids)`` tuples, in append order.
        self.entries = entries
        self._valid_end = valid_end

    # ------------------------------------------------------------------ #
    # Loading / creation
    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path) -> "DeltaLog | None":
        """Read a log (``None`` when absent), keeping the valid entry prefix.

        A torn tail — an entry cut short or failing its checksum, the
        signature of a crash mid-append — ends the scan silently; everything
        before it is intact (per-entry CRCs).  A malformed *header* raises
        :class:`~repro.exceptions.StoreError`: that is not a crash artifact.
        """
        path = os.fspath(path)
        try:
            handle = open(path, "rb")  # noqa: SIM115 -- entered via `with handle:` below
        except FileNotFoundError:
            return None
        with handle:
            raw = handle.read(_HEADER.size)
            if len(raw) < _HEADER.size or raw[: len(LOG_MAGIC)] != LOG_MAGIC:
                raise StoreError(f"'{path}' is not a delta log (bad magic)")
            _, generation = _HEADER.unpack(raw)
            entries: list = []
            valid_end = _HEADER.size
            while True:
                frame = handle.read(_FRAME.size)
                if len(frame) < _FRAME.size:
                    break
                kind, crc, length = _FRAME.unpack(frame)
                payload = handle.read(length)
                if len(payload) < length:
                    break
                if (zlib.crc32(kind + payload) & 0xFFFFFFFF) != crc:
                    break
                try:
                    if kind == b"I":
                        ids, to_rows, code_rows = _decode_insert_payload(payload)
                        entries.append(("insert", ids, to_rows, code_rows))
                    elif kind == b"D":
                        (count,) = struct.unpack_from("<Q", payload, 0)
                        ids = list(struct.unpack_from(f"<{count}q", payload, 8))
                        entries.append(("delete", ids))
                    else:
                        break
                except struct.error:
                    break
                valid_end = handle.tell()
        return cls(path, generation, entries, valid_end)

    @classmethod
    def create(cls, path, generation: int) -> "DeltaLog":
        """Write a fresh (empty) log for ``generation``, replacing any file."""
        path = os.fspath(path)
        with open(path, "wb") as handle:
            handle.write(_HEADER.pack(LOG_MAGIC, int(generation)))
            handle.flush()
            os.fsync(handle.fileno())
        return cls(path, generation, [], _HEADER.size)

    @classmethod
    def ensure(cls, path, generation: int) -> "DeltaLog":
        """The log for ``generation``: loaded when it matches, else recreated.

        A stale-generation log (compaction replaced the store but crashed
        before the reset) is discarded here — its mutations are already in
        the new base.
        """
        log = cls.load(path)
        if log is None or log.generation != int(generation):
            return cls.create(path, generation)
        return log

    def reset(self, generation: int) -> None:
        """Drop every entry and re-stamp the log (post-compaction)."""
        fresh = self.create(self.path, generation)
        self.generation = fresh.generation
        self.entries = []
        self._valid_end = fresh._valid_end

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def _append(self, kind: bytes, payload: bytes) -> None:
        frame = _FRAME.pack(
            kind, zlib.crc32(kind + payload) & 0xFFFFFFFF, len(payload)
        )
        with open(self.path, "r+b") as handle:
            handle.seek(self._valid_end)
            handle.write(frame)
            handle.write(payload)
            handle.truncate()
            handle.flush()
            os.fsync(handle.fileno())
            self._valid_end = handle.tell()

    def append_inserts(self, ids: Sequence[int], to_rows, code_rows) -> None:
        if len(ids):
            self._append(b"I", _encode_insert_payload(ids, to_rows, code_rows))

    def append_deletes(self, ids: Sequence[int]) -> None:
        if len(ids):
            payload = struct.pack("<Q", len(ids)) + struct.pack(
                f"<{len(ids)}q", *[int(i) for i in ids]
            )
            self._append(b"D", payload)
