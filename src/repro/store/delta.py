"""The sidecar delta log: crash-safe mutation persistence for packed stores.

A packed store file is immutable by design (mmap views, page-cache sharing),
so live mutations persist *next to* it, LSM-style, in ``<store>.delta`` — an
append-only log replayed into the engine's in-memory
:class:`~repro.delta.frame.DeltaFrame` at open and folded into a fresh base
by compaction.

Layout::

    header:  8-byte magic ``RPRODLOG`` + ``<Q`` generation
    entry:   1-byte kind (``I``/``D``) + ``<I`` crc32(kind+payload)
             + ``<Q`` payload length + payload
    insert payload: ``<Q`` count, ``<Q`` num_to, ``<Q`` num_po,
             count ``<q`` record ids, count*num_to ``<d`` canonical TO
             values, count*num_po ``<i`` canonical PO codes
    delete payload: ``<Q`` count, count ``<q`` record ids

Two invariants make every crash point recoverable:

* **Per-entry checksums + torn-tail tolerance.**  Loading stops at the first
  incomplete or checksum-failing entry and keeps the valid prefix; the next
  append overwrites the torn tail.  A mutation is durable exactly when its
  entry was fully written.
* **Generation fencing.**  The log's header carries the store generation it
  was written against; compaction writes the new store (``os.replace``,
  atomic) *before* resetting the log, so a crash between the two leaves a
  stale-generation log that loaders simply discard — mutations are never
  applied twice.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections.abc import Sequence

from repro.exceptions import StoreError
from repro.faults.registry import trip as _fault_trip

LOG_MAGIC = b"RPRODLOG"
_HEADER = struct.Struct("<8sQ")
_FRAME = struct.Struct("<cIQ")

#: Default sidecar suffix: ``catalog.rpro`` logs to ``catalog.rpro.delta``.
LOG_SUFFIX = ".delta"


def delta_log_path(store_path) -> str:
    return os.fspath(store_path) + LOG_SUFFIX


def _encode_insert_payload(ids, to_rows, code_rows) -> bytes:
    count = len(ids)
    num_to = len(to_rows[0]) if count else 0
    num_po = len(code_rows[0]) if count else 0
    parts = [struct.pack("<QQQ", count, num_to, num_po)]
    parts.append(struct.pack(f"<{count}q", *[int(i) for i in ids]))
    flat_to = [float(v) for row in to_rows for v in row]
    parts.append(struct.pack(f"<{len(flat_to)}d", *flat_to))
    flat_codes = [int(c) for row in code_rows for c in row]
    parts.append(struct.pack(f"<{len(flat_codes)}i", *flat_codes))
    return b"".join(parts)


def _decode_insert_payload(payload: bytes):
    count, num_to, num_po = struct.unpack_from("<QQQ", payload, 0)
    offset = 24
    ids = list(struct.unpack_from(f"<{count}q", payload, offset))
    offset += 8 * count
    flat_to = struct.unpack_from(f"<{count * num_to}d", payload, offset)
    offset += 8 * count * num_to
    flat_codes = struct.unpack_from(f"<{count * num_po}i", payload, offset)
    to_rows = [
        tuple(flat_to[r * num_to : (r + 1) * num_to]) for r in range(count)
    ]
    code_rows = [
        tuple(flat_codes[r * num_po : (r + 1) * num_po]) for r in range(count)
    ]
    return ids, to_rows, code_rows


class DeltaLog:
    """One sidecar mutation log, loaded once and then append-only."""

    def __init__(self, path: str, generation: int, entries: list, valid_end: int) -> None:
        self.path = path
        self.generation = int(generation)
        #: Entries recovered at load: ``("insert", ids, to_rows, code_rows)``
        #: or ``("delete", ids)`` tuples, in append order.
        self.entries = entries
        self._valid_end = valid_end

    # ------------------------------------------------------------------ #
    # Loading / creation
    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path) -> "DeltaLog | None":
        """Read a log (``None`` when absent), keeping the valid entry prefix.

        A torn tail — an entry cut short or failing its checksum, the
        signature of a crash mid-append — ends the scan silently; everything
        before it is intact (per-entry CRCs).  A malformed *header* raises
        :class:`~repro.exceptions.StoreError`: that is not a crash artifact.
        For corruption *beyond* the torn-tail rule (a bad entry with valid
        entries after it) use :meth:`recover`, which quarantines instead of
        silently dropping the suffix.
        """
        path = os.fspath(path)
        try:
            handle = open(path, "rb")  # noqa: SIM115 -- entered via `with handle:` below
        except FileNotFoundError:
            return None
        with handle:
            raw = handle.read(_HEADER.size)
            if len(raw) < _HEADER.size or raw[: len(LOG_MAGIC)] != LOG_MAGIC:
                raise StoreError(f"'{path}' is not a delta log (bad magic)")
            _, generation = _HEADER.unpack(raw)
            entries, valid_end, _ = cls._scan_entries(handle)
        return cls(path, generation, entries, valid_end)

    @staticmethod
    def _scan_entries(handle) -> tuple[list, int, str]:
        """Scan entries from the current offset: ``(entries, valid_end, stop)``.

        ``stop`` says why the scan ended: ``"eof"`` (clean), ``"torn"`` (an
        entry cut short — the crash-mid-append signature), or ``"corrupt"``
        (a complete entry whose checksum fails or whose checksummed content
        is malformed — not explainable by a torn write alone).
        """
        entries: list = []
        valid_end = handle.tell()
        stop = "eof"
        while True:
            frame = handle.read(_FRAME.size)
            if not frame:
                break
            if len(frame) < _FRAME.size:
                stop = "torn"
                break
            kind, crc, length = _FRAME.unpack(frame)
            payload = handle.read(length)
            if len(payload) < length:
                stop = "torn"
                break
            if (zlib.crc32(kind + payload) & 0xFFFFFFFF) != crc:
                stop = "corrupt" if handle.read(1) else "torn"
                break
            try:
                if kind == b"I":
                    ids, to_rows, code_rows = _decode_insert_payload(payload)
                    entries.append(("insert", ids, to_rows, code_rows))
                elif kind == b"D":
                    (count,) = struct.unpack_from("<Q", payload, 0)
                    ids = list(struct.unpack_from(f"<{count}q", payload, 8))
                    entries.append(("delete", ids))
                else:
                    stop = "corrupt"
                    break
            except struct.error:
                stop = "corrupt"
                break
            valid_end = handle.tell()
        return entries, valid_end, stop

    @classmethod
    def recover(
        cls, path, generation: int
    ) -> "tuple[DeltaLog | None, dict | None]":
        """Load the log for ``generation``, quarantining real corruption.

        Returns ``(log, report)``.  ``log`` is ``None`` when the file is
        absent or fenced off (stale generation); ``report`` is ``None``
        unless the file was quarantined.  Three ladders:

        * torn tail → handled by :meth:`load` (silent prefix keep, as ever);
        * unreadable header, or a corrupt entry *followed by more data*
          (beyond the torn-tail rule — a crash truncates, it does not
          rewrite the middle) → the file is renamed to
          ``<path>.quarantined-<generation>``, a fresh log is written with
          the CRC-valid prefix re-appended, and the report names what was
          saved and what was set aside — never a refusal to open, never a
          silent drop;
        * stale generation → discarded exactly like :meth:`ensure` does
          (its mutations already live in the compacted base).
        """
        path = os.fspath(path)
        try:
            handle = open(path, "rb")  # noqa: SIM115 -- entered via `with handle:` below
        except FileNotFoundError:
            return None, None
        with handle:
            raw = handle.read(_HEADER.size)
            header_ok = (
                len(raw) >= _HEADER.size and raw[: len(LOG_MAGIC)] == LOG_MAGIC
            )
            if header_ok:
                _, log_generation = _HEADER.unpack(raw)
                entries, valid_end, stop = cls._scan_entries(handle)
            else:
                log_generation = None
                entries, valid_end, stop = [], 0, "corrupt"
            file_size = os.fstat(handle.fileno()).st_size
        if stop != "corrupt":
            log = cls(path, log_generation, entries, valid_end)
            if log.generation != int(generation):
                return None, None
            return log, None
        # Corruption beyond the torn-tail rule: set the file aside under a
        # deterministic name, then rebuild a clean log from the recovered
        # prefix so those mutations stay durable.
        stamp = int(generation) if log_generation is None else int(log_generation)
        quarantine_path = f"{path}.quarantined-{stamp}"
        os.replace(path, quarantine_path)
        report = {
            "quarantined": quarantine_path,
            "reason": "bad header" if not header_ok else "corrupt entry mid-log",
            "log_generation": log_generation,
            "entries_recovered": len(entries),
            "bytes_quarantined": file_size - valid_end,
        }
        if log_generation != int(generation):
            # Stale (or unknown) generation: the recovered prefix is already
            # folded into the compacted base — nothing to rebuild.
            report["entries_recovered"] = 0
            return None, report
        log = cls.create(path, generation)
        for entry in entries:
            if entry[0] == "insert":
                log.append_inserts(entry[1], entry[2], entry[3])
            else:
                log.append_deletes(entry[1])
        log.entries = entries
        return log, report

    @classmethod
    def create(cls, path, generation: int) -> "DeltaLog":
        """Write a fresh (empty) log for ``generation``, replacing any file."""
        path = os.fspath(path)
        with open(path, "wb") as handle:
            handle.write(_HEADER.pack(LOG_MAGIC, int(generation)))
            handle.flush()
            os.fsync(handle.fileno())
        return cls(path, generation, [], _HEADER.size)

    @classmethod
    def ensure(cls, path, generation: int) -> "DeltaLog":
        """The log for ``generation``: loaded when it matches, else recreated.

        A stale-generation log (compaction replaced the store but crashed
        before the reset) is discarded here — its mutations are already in
        the new base.
        """
        log = cls.load(path)
        if log is None or log.generation != int(generation):
            return cls.create(path, generation)
        return log

    def reset(self, generation: int) -> None:
        """Drop every entry and re-stamp the log (post-compaction)."""
        fresh = self.create(self.path, generation)
        self.generation = fresh.generation
        self.entries = []
        self._valid_end = fresh._valid_end

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def _injected(self, point: str) -> StoreError:
        return StoreError(f"injected fault at {point} appending to '{self.path}'")

    def _append(self, kind: bytes, payload: bytes) -> None:
        frame = _FRAME.pack(
            kind, zlib.crc32(kind + payload) & 0xFFFFFFFF, len(payload)
        )
        # Fault stages: ``pre`` fails before any byte reaches the file (the
        # mutation is not durable), ``write`` corrupts the payload *after*
        # its checksum was computed (what a bad disk write looks like), and
        # ``post`` fails after the fsync (durable, but the caller sees an
        # error — the at-least-once window idempotency tokens exist for).
        _fault_trip("delta.log_append", stage="pre", exc=self._injected)
        payload = _fault_trip("delta.log_append", stage="write", data=payload)
        with open(self.path, "r+b") as handle:
            handle.seek(self._valid_end)
            handle.write(frame)
            handle.write(payload)
            handle.truncate()
            handle.flush()
            os.fsync(handle.fileno())
            _fault_trip("delta.log_append", stage="post", exc=self._injected)
            self._valid_end = handle.tell()

    def append_inserts(self, ids: Sequence[int], to_rows, code_rows) -> None:
        if len(ids):
            self._append(b"I", _encode_insert_payload(ids, to_rows, code_rows))

    def append_deletes(self, ids: Sequence[int]) -> None:
        if len(ids):
            payload = struct.pack("<Q", len(ids)) + struct.pack(
                f"<{len(ids)}q", *[int(i) for i in ids]
            )
            self._append(b"D", payload)
