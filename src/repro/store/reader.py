"""Open a packed store and reconstruct zero-copy views of its artifacts.

:class:`DatasetStore` maps the array sections of a file written by
:func:`repro.store.writer.pack_dataset` back into the objects the query
engine consumes — the :class:`~repro.data.columns.EncodedFrame`, the
prefilter survivor list, the base-preference :class:`~repro.core.mapping.
TSSMapping` and the bulk-loaded :class:`~repro.index.flat.FlatRTree` —
without re-encoding, re-filtering, re-mapping or re-bulk-loading anything.

With NumPy the sections become read-only ``np.memmap`` views (the default),
so several processes opening the same file share one copy of the bytes
through the OS page cache; ``mmap=False`` (or ``REPRO_MMAP=off``) reads them
into private in-memory arrays instead.  Without NumPy the same bytes are
unpacked into the tuple-backed column layout, so the pure-Python backend
answers queries from the identical file.

Every failure mode — missing file, truncation, bad magic, wrong format
version, malformed header, checksum mismatch — raises a typed
:class:`~repro.exceptions.StoreError` naming the file and the format version
this build expects.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib

from repro.config import resolve_crc_mode, resolve_mmap_mode
from repro.data.columns import ColumnCodec, EncodedFrame
from repro.data.dataset import Dataset
from repro.exceptions import StoreError
from repro.faults.registry import trip as _fault_trip
from repro.store.format import (
    DTYPES,
    FORMAT_VERSION,
    MAGIC,
    SectionSpec,
    decode_schema,
)

_CHUNK = 1 << 20

#: "Not loaded yet" marker for cached optionals (a loaded value may be None).
_UNSET = object()


def _numpy_or_none():
    try:
        import numpy
    except ImportError:
        return None
    return numpy


class DatasetStore:
    """A read-only view over one packed store file."""

    def __init__(
        self, path: str, header: dict, *, mmap: bool, crc: str = "eager"
    ) -> None:
        self.path = path
        self.format_version: int = header["format_version"]
        self._header = header
        self._np = _numpy_or_none()
        self._mmap = bool(mmap) and self._np is not None
        self._crc_mode = crc
        # Sections whose checksum has been confirmed; in lazy mode each is
        # verified on its first touch and remembered here.
        self._verified: set[str] = set()
        self._lazy_verify = False
        self._sections = {
            name: SectionSpec.from_json(name, payload, path=path)
            for name, payload in header["sections"].items()
        }
        self.schema = decode_schema(header["schema"], path=path)
        self._lock = threading.RLock()  # dataset() -> frame() re-enters
        # Sections served from a copying re-read after a first-touch mmap
        # checksum failure (degradation ladder: mmap -> load before raising).
        self._degraded_sections: set[str] = set()
        self._frame = None
        self._survivors = None
        self._row_ids = _UNSET
        self._dataset = None

    # ------------------------------------------------------------------ #
    # Opening
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        path,
        *,
        mmap: bool | str | None = None,
        verify: bool = True,
        crc: str | None = None,
    ) -> "DatasetStore":
        """Open ``path``, validate magic/version/checksums, return a store.

        ``mmap`` follows :func:`repro.config.resolve_mmap_mode` (explicit
        argument > ``REPRO_MMAP`` > on when NumPy is available).  ``crc``
        follows :func:`repro.config.resolve_crc_mode`: ``"eager"`` (default)
        verifies every section checksum here — reading each section once,
        which doubles as a page-cache warm-up for the mmap path — while
        ``"lazy"`` only bounds-checks the layout at open and defers each
        section's checksum to its first touch (replica cold start below the
        CRC pass).  ``verify=False`` skips checksums entirely (pool workers
        re-opening a file the parent already verified).
        """
        path = os.fspath(path)
        use_mmap = resolve_mmap_mode(mmap)
        crc_mode = resolve_crc_mode(crc)
        try:
            handle = open(path, "rb")  # noqa: SIM115 -- entered via `with handle:` below
        except OSError as exc:
            raise StoreError(
                f"cannot open store '{path}': {exc.strerror or exc} "
                f"(expected format version {FORMAT_VERSION})"
            ) from None
        with handle:
            prefix = handle.read(len(MAGIC) + 8)
            if len(prefix) < len(MAGIC) + 8 or prefix[: len(MAGIC)] != MAGIC:
                raise StoreError(
                    f"'{path}' is not a packed dataset store (bad magic; "
                    f"expected format version {FORMAT_VERSION})"
                )
            (header_length,) = struct.unpack("<Q", prefix[len(MAGIC):])
            file_size = os.fstat(handle.fileno()).st_size
            if header_length > file_size - len(prefix):
                raise StoreError(
                    f"store '{path}' is truncated: header claims "
                    f"{header_length} bytes but only "
                    f"{file_size - len(prefix)} remain "
                    f"(expected format version {FORMAT_VERSION})"
                )
            raw_header = handle.read(header_length)
            if len(raw_header) != header_length:
                raise StoreError(
                    f"store '{path}' is truncated inside its header "
                    f"(expected format version {FORMAT_VERSION})"
                )
            try:
                header = json.loads(raw_header.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise StoreError(
                    f"store '{path}' has a corrupt header: {exc} "
                    f"(expected format version {FORMAT_VERSION})"
                ) from None
            version = header.get("format_version")
            if version != FORMAT_VERSION:
                raise StoreError(
                    f"store '{path}' has format version {version!r}; this "
                    f"build reads format version {FORMAT_VERSION} — re-pack "
                    f"the dataset with 'repro pack'"
                )
            for key in ("schema", "counts", "base", "sections"):
                if key not in header:
                    raise StoreError(
                        f"store '{path}' header is missing its {key!r} entry "
                        f"(expected format version {FORMAT_VERSION})"
                    )
            store = cls(path, header, mmap=use_mmap, crc=crc_mode)
            if verify and crc_mode == "eager":
                store._verify_checksums(handle, file_size)
            elif verify:
                store._check_bounds(file_size)
                store._lazy_verify = True
        return store

    def _check_bounds(self, file_size: int) -> None:
        """Cheap layout validation (no section reads): every section fits."""
        for spec in self._sections.values():
            if spec.offset + spec.nbytes > file_size:
                raise StoreError(
                    f"store '{self.path}' is truncated: section "
                    f"{spec.name!r} needs bytes "
                    f"[{spec.offset}, {spec.offset + spec.nbytes}) but the "
                    f"file has {file_size} "
                    f"(expected format version {FORMAT_VERSION})"
                )

    def _verify_checksums(self, handle, file_size: int) -> None:
        for spec in self._sections.values():
            if spec.offset + spec.nbytes > file_size:
                raise StoreError(
                    f"store '{self.path}' is truncated: section "
                    f"{spec.name!r} needs bytes "
                    f"[{spec.offset}, {spec.offset + spec.nbytes}) but the "
                    f"file has {file_size} "
                    f"(expected format version {FORMAT_VERSION})"
                )
            self._stream_verify(handle, spec)
            self._verified.add(spec.name)

    def _stream_verify(self, handle, spec: SectionSpec) -> None:
        handle.seek(spec.offset)
        remaining = spec.nbytes
        crc = 0
        while remaining:
            chunk = handle.read(min(_CHUNK, remaining))
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
            remaining -= len(chunk)
        if remaining or (crc & 0xFFFFFFFF) != spec.crc32:
            raise StoreError(
                f"store '{self.path}' failed its checksum for section "
                f"{spec.name!r}: the file is corrupt — re-pack the "
                f"dataset with 'repro pack'"
            )

    def _touch(self, spec: SectionSpec, data: bytes | None = None) -> None:
        """Lazy-mode first-touch checksum of one section (no-op otherwise).

        ``data`` passes the bytes a caller already read, so the load path
        verifies with zero extra IO; the mmap path streams the section from
        the file once (warming exactly the pages about to be mapped).
        """
        if not self._lazy_verify:
            return
        with self._lock:
            if spec.name in self._verified:
                return
            if data is not None:
                if (zlib.crc32(data) & 0xFFFFFFFF) != spec.crc32:
                    raise StoreError(
                        f"store '{self.path}' failed its checksum for section "
                        f"{spec.name!r}: the file is corrupt — re-pack the "
                        f"dataset with 'repro pack'"
                    )
            else:
                with open(self.path, "rb") as handle:
                    self._stream_verify(handle, spec)
            self._verified.add(spec.name)

    # ------------------------------------------------------------------ #
    # Header facts
    # ------------------------------------------------------------------ #
    @property
    def uses_mmap(self) -> bool:
        return self._mmap

    @property
    def generation(self) -> int:
        """Monotone compaction counter (0 for stores packed before deltas)."""
        return int(self._header.get("generation", 0))

    @property
    def crc_mode(self) -> str:
        return self._crc_mode

    @property
    def num_rows(self) -> int:
        return int(self._header["counts"]["rows"])

    @property
    def num_survivors(self) -> int:
        return int(self._header["counts"]["survivors"])

    @property
    def has_base_mapping(self) -> bool:
        return bool(self._header["base"].get("has_mapping"))

    @property
    def has_base_index(self) -> bool:
        return bool(self._header["base"].get("has_index"))

    @property
    def base_max_entries(self) -> int:
        return int(self._header["base"]["max_entries"])

    def __len__(self) -> int:
        return self.num_rows

    @property
    def degraded_sections(self) -> tuple[str, ...]:
        """Sections served by copying re-read after an mmap-path failure."""
        with self._lock:
            return tuple(sorted(self._degraded_sections))

    def describe(self) -> dict:
        """A JSON-safe summary for the CLI / service stats."""
        return {
            "path": self.path,
            "format_version": self.format_version,
            "generation": self.generation,
            "mmap": self._mmap,
            "crc": self._crc_mode,
            "rows": self.num_rows,
            "survivors": self.num_survivors,
            "base_mapping": self.has_base_mapping,
            "base_index": self.has_base_index and self._np is not None,
            "degraded_sections": list(self.degraded_sections),
            "sections": {
                name: spec.nbytes for name, spec in self._sections.items()
            },
        }

    # ------------------------------------------------------------------ #
    # Raw section access
    # ------------------------------------------------------------------ #
    def _spec(self, name: str) -> SectionSpec:
        try:
            return self._sections[name]
        except KeyError:
            raise StoreError(
                f"store '{self.path}' has no {name!r} section "
                f"(expected format version {FORMAT_VERSION})"
            ) from None

    def _injected(self, point: str) -> StoreError:
        return StoreError(
            f"injected fault at {point} reading store '{self.path}' "
            f"(format version {FORMAT_VERSION})"
        )

    def _array(self, name: str):
        """The section as a read-only NumPy array (memmap or loaded copy)."""
        spec = self._spec(name)
        np = self._np
        dtype = np.dtype(spec.dtype)
        if self._mmap and spec.nbytes:
            try:
                _fault_trip("store.section_read", exc=self._injected)
                self._touch(spec)
            except StoreError:
                if not self._lazy_verify:
                    raise
                # Degradation ladder: the mmap first-touch checksum failed —
                # before giving up, re-read the section into process memory
                # and verify the copy; a transient read fault stays an mmap
                # store, a genuinely corrupt section still raises below.
                return self._copy_fallback(spec, np, dtype)
            return np.memmap(
                self.path, dtype=dtype, mode="r", offset=spec.offset, shape=spec.shape
            )
        data = self._read_bytes(spec)
        array = np.frombuffer(data, dtype=dtype).reshape(spec.shape)
        return array

    def _copy_fallback(self, spec: SectionSpec, np, dtype):
        """Copying re-read of one section after an mmap checksum failure."""
        with open(self.path, "rb") as handle:
            handle.seek(spec.offset)
            data = handle.read(spec.nbytes)
        if len(data) != spec.nbytes or (zlib.crc32(data) & 0xFFFFFFFF) != spec.crc32:
            raise StoreError(
                f"store '{self.path}' failed its checksum for section "
                f"{spec.name!r}: the file is corrupt — re-pack the "
                f"dataset with 'repro pack'"
            )
        with self._lock:
            self._verified.add(spec.name)
            self._degraded_sections.add(spec.name)
        return np.frombuffer(data, dtype=dtype).reshape(spec.shape)

    def _read_bytes(self, spec: SectionSpec) -> bytes:
        with open(self.path, "rb") as handle:
            handle.seek(spec.offset)
            data = handle.read(spec.nbytes)
        if len(data) != spec.nbytes:
            raise StoreError(
                f"store '{self.path}' is truncated: section {spec.name!r} "
                f"ended early (expected format version {FORMAT_VERSION})"
            )
        data = _fault_trip("store.section_read", exc=self._injected, data=data)
        self._touch(spec, data)
        return data

    def _unpack(self, name: str):
        """The section as Python scalars: flat list (1-D) or tuple rows (2-D)."""
        spec = self._spec(name)
        data = self._read_bytes(spec)
        kind, itemsize = DTYPES[spec.dtype]
        fmt = "d" if kind == "f" else ("q" if itemsize == 8 else "i")
        count = spec.nbytes // itemsize
        flat = list(struct.unpack(f"<{count}{fmt}", data))
        if len(spec.shape) == 1:
            return flat
        rows, width = spec.shape
        return tuple(tuple(flat[r * width : (r + 1) * width]) for r in range(rows))

    # ------------------------------------------------------------------ #
    # Reconstructed artifacts
    # ------------------------------------------------------------------ #
    def frame(self) -> EncodedFrame:
        """The full encoded frame over the store's bytes (cached).

        NumPy builds it on zero-copy (or loaded) arrays; without NumPy the
        same bytes become the tuple-backed layout, so both backends answer
        queries from one file.
        """
        with self._lock:
            if self._frame is None:
                codec = ColumnCodec.from_schema(self.schema)
                if self._np is not None:
                    to = self._array("frame_to")
                    codes = self._array("frame_codes")
                else:
                    to = self._unpack("frame_to")
                    codes = self._unpack("frame_codes")
                self._frame = EncodedFrame(
                    self.schema, codec, to, codes, self.num_rows
                )
            return self._frame

    def survivors(self) -> list[int]:
        """Row ids of the packed prefilter's survivors (ascending, cached)."""
        with self._lock:
            if self._survivors is None:
                if self._np is not None:
                    self._survivors = [int(row) for row in self._array("survivors")]
                else:
                    self._survivors = [int(row) for row in self._unpack("survivors")]
            return list(self._survivors)

    def row_ids(self) -> list[int] | None:
        """The stable ``row -> record id`` mapping, or ``None`` (= identity).

        Written by delta-plane compaction (:func:`~repro.store.writer.
        pack_frame` with ``row_ids``) so surviving records keep the ids
        clients hold across compactions; stores packed straight from a
        dataset omit the section.
        """
        with self._lock:
            if self._row_ids is _UNSET:
                if "row_ids" not in self._sections:
                    self._row_ids = None
                elif self._np is not None:
                    self._row_ids = [int(i) for i in self._array("row_ids")]
                else:
                    self._row_ids = [int(i) for i in self._unpack("row_ids")]
            return None if self._row_ids is None else list(self._row_ids)

    def base_mapping(self, encodings=None):
        """The packed base-preference TSS mapping, rebuilt without re-mapping.

        ``encodings`` must be the schema's deterministic base encodings (the
        default); point record ids are positions into the packed survivor
        order, exactly as a fresh mapping over the reduced frame would yield.
        """
        from repro.core.mapping import TSSMapping
        from repro.order.encoding import encode_domain

        if not self.has_base_mapping:
            raise StoreError(
                f"store '{self.path}' was packed without a base mapping "
                f"(no PO attributes)"
            )
        if encodings is None:
            encodings = [
                encode_domain(attribute.dag)
                for attribute in self.schema.partial_order_attributes
            ]
        if self._np is not None:
            coords = self._array("mapped_coords")
            offsets = self._array("point_offsets")
            rows = self._array("point_rows")
            groups = [
                tuple(int(r) for r in rows[int(offsets[g]) : int(offsets[g + 1])])
                for g in range(len(offsets) - 1)
            ]
        else:
            coords = self._unpack("mapped_coords")
            offsets = self._unpack("point_offsets")
            rows = self._unpack("point_rows")
            groups = [
                tuple(rows[offsets[g] : offsets[g + 1]])
                for g in range(len(offsets) - 1)
            ]
        return TSSMapping.from_stored(self.schema, encodings, coords, groups)

    def base_tree(self, *, disk=None):
        """The packed flat R-tree over the base mapping's points."""
        from repro.index.flat import FlatRTree

        if not self.has_base_index:
            raise StoreError(
                f"store '{self.path}' was packed without a flat-tree section"
            )
        if self._np is None:
            raise StoreError(
                f"store '{self.path}' has a flat-tree section but this "
                f"environment lacks NumPy; rebuild the tree with the "
                f"'pointer' backend instead"
            )
        base = self._header["base"]
        return FlatRTree.from_arrays(
            dimensions=int(base["dimensions"]),
            max_entries=self.base_max_entries,
            points=self._array("tree_points"),
            payloads=self._array("tree_payloads"),
            node_low=self._array("tree_node_low"),
            node_high=self._array("tree_node_high"),
            child_start=self._array("tree_child_start"),
            child_end=self._array("tree_child_end"),
            entry_mindists=self._array("tree_entry_mindists"),
            node_mindists=self._array("tree_node_mindists"),
            num_leaves=int(base["num_leaves"]),
            height=int(base["height"]),
            disk=disk,
        )

    def dataset(self) -> Dataset:
        """The original records, materialized from the frame (cached).

        Canonical TO floats are negated back for ``best='max'`` attributes
        (binary round-trip exact) and PO codes decoded through the codec, so
        the records are value-identical to the packed dataset's.
        """
        with self._lock:
            if self._dataset is None:
                self._dataset = self._materialize_dataset()
            return self._dataset

    def _materialize_dataset(self) -> Dataset:
        frame = self.frame()
        schema = self.schema
        codec = frame.codec
        columns: list[list] = []
        to_index = 0
        po_index = 0
        for attribute in schema.attributes:
            if attribute.is_partial:
                domain = codec.domains[po_index]
                if frame.uses_numpy:
                    codes = frame.codes[:, po_index]
                    columns.append([domain[int(code)] for code in codes])
                else:
                    columns.append(
                        [domain[row[po_index]] for row in frame.codes]
                    )
                po_index += 1
            else:
                if frame.uses_numpy:
                    values = frame.to[:, to_index].tolist()
                else:
                    values = [row[to_index] for row in frame.to]
                if attribute.best == "max":
                    values = [-value for value in values]
                columns.append(values)
                to_index += 1
        rows = [tuple(column[r] for column in columns) for r in range(self.num_rows)]
        return Dataset(schema, rows, validate=False)
