"""Persistent single-file storage for encoded datasets.

``pack_dataset`` writes a dataset's encoded artifacts (frame, prefilter
survivors, base TSS mapping, bulk-loaded flat R-tree) into one page-aligned,
checksummed file; ``DatasetStore`` opens it and reconstructs zero-copy
``np.memmap`` views (or tuple-backed columns without NumPy).  See
:mod:`repro.store.format` for the byte layout.
"""

from repro.exceptions import StoreError
from repro.store.format import FORMAT_VERSION, MAGIC, PAGE_SIZE
from repro.store.reader import DatasetStore
from repro.store.writer import pack_dataset

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "PAGE_SIZE",
    "DatasetStore",
    "StoreError",
    "pack_dataset",
]
