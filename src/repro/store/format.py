"""The on-disk layout of a packed dataset store.

A store is one file::

    +------------------------------------------------------------------+
    | magic "RPROSTOR" (8 bytes) | header length (8 bytes, LE uint64)  |
    | header JSON (utf-8)  ...  zero padding to the next page boundary |
    +------------------------------------------------------------------+
    | section 0  (page-aligned, raw little-endian array bytes)         |
    | ...  zero padding to the next page boundary                      |
    | section 1  (page-aligned)                                        |
    | ...                                                              |
    +------------------------------------------------------------------+

The JSON header carries the format version, the serialized schema (attribute
order, TO ``best`` directions, PO DAG values + edges), per-PO ``dag_signature``
fingerprints, the counts needed to reconstruct views, and one entry per
section with its dtype, shape, byte offset, byte length and CRC-32.  Every
section starts on a :data:`PAGE_SIZE` boundary so ``np.memmap`` views are
page-aligned and shareable through the OS page cache across processes.

Only JSON-safe PO domain values round-trip: ints, floats, strings and bools,
carried as ``[tag, value]`` pairs so ``1`` and ``1.0`` and ``True`` stay
distinct.  Exotic domains (e.g. the frozensets of ``subset_lattice``) are
rejected at pack time with a :class:`~repro.exceptions.StoreError`.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from typing import Any

from repro.data.schema import (
    Attribute,
    PartialOrderAttribute,
    Schema,
    TotalOrderAttribute,
)
from repro.exceptions import StoreError
from repro.order.dag import PartialOrderDAG

Value = Hashable

#: File magic: the first 8 bytes of every packed store.
MAGIC = b"RPROSTOR"

#: Format version this build writes and reads.
FORMAT_VERSION = 1

#: Section alignment (bytes): one typical OS page.
PAGE_SIZE = 4096

#: dtype string -> (struct-ish element kind, itemsize).  All little-endian.
DTYPES = {
    "<f8": ("f", 8),
    "<i8": ("i", 8),
    "<i4": ("i", 4),
}


def align(offset: int, page: int = PAGE_SIZE) -> int:
    """The smallest page multiple >= ``offset``."""
    return (offset + page - 1) // page * page


@dataclass(frozen=True)
class SectionSpec:
    """One array section of the store, as described by the header."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int
    crc32: int

    def to_json(self) -> dict[str, Any]:
        return {
            "dtype": self.dtype,
            "shape": list(self.shape),
            "offset": self.offset,
            "nbytes": self.nbytes,
            "crc32": self.crc32,
        }

    @classmethod
    def from_json(cls, name: str, payload: dict[str, Any], *, path: str) -> "SectionSpec":
        try:
            dtype = payload["dtype"]
            shape = tuple(int(n) for n in payload["shape"])
            offset = int(payload["offset"])
            nbytes = int(payload["nbytes"])
            crc32 = int(payload["crc32"])
        except (KeyError, TypeError, ValueError):
            raise StoreError(
                f"store '{path}' has a malformed section entry {name!r} "
                f"(expected format version {FORMAT_VERSION})"
            ) from None
        if dtype not in DTYPES:
            raise StoreError(
                f"store '{path}' section {name!r} uses unsupported dtype "
                f"{dtype!r} (expected format version {FORMAT_VERSION})"
            )
        count = 1
        for dim in shape:
            count *= dim
        if count * DTYPES[dtype][1] != nbytes:
            raise StoreError(
                f"store '{path}' section {name!r} is inconsistent: shape "
                f"{shape} x dtype {dtype} does not cover {nbytes} bytes "
                f"(expected format version {FORMAT_VERSION})"
            )
        return cls(name, dtype, shape, offset, nbytes, crc32)


# --------------------------------------------------------------------- #
# Domain-value codec (tagged JSON pairs)
# --------------------------------------------------------------------- #
def encode_value(value: Value) -> list[Any]:
    """One JSON-safe ``[tag, payload]`` pair for a PO domain value."""
    if isinstance(value, bool):  # before int: bool is an int subclass
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value]
    if isinstance(value, str):
        return ["s", value]
    raise StoreError(
        f"cannot pack PO domain value {value!r} of type "
        f"{type(value).__name__}: stores serialize int/float/str/bool "
        f"domains only"
    )


def decode_value(pair: list[Any]) -> Value:
    try:
        tag, payload = pair
    except (TypeError, ValueError):
        raise StoreError(f"malformed domain value entry {pair!r}") from None
    if tag == "b":
        return bool(payload)
    if tag == "i":
        return int(payload)
    if tag == "f":
        return float(payload)
    if tag == "s":
        return str(payload)
    raise StoreError(f"unknown domain value tag {tag!r}")


# --------------------------------------------------------------------- #
# Schema codec
# --------------------------------------------------------------------- #
def encode_schema(schema: Schema) -> list[dict[str, Any]]:
    """The schema as a JSON-safe attribute list (order-preserving)."""
    spec: list[dict[str, Any]] = []
    for attribute in schema.attributes:
        if isinstance(attribute, PartialOrderAttribute):
            dag = attribute.dag
            spec.append(
                {
                    "kind": "po",
                    "name": attribute.name,
                    "values": [encode_value(value) for value in dag.values],
                    "edges": [
                        [encode_value(better), encode_value(worse)]
                        for better, worse in dag.edges
                    ],
                }
            )
        else:
            spec.append(
                {"kind": "to", "name": attribute.name, "best": attribute.best}
            )
    return spec


def decode_schema(spec: list[dict[str, Any]], *, path: str) -> Schema:
    attributes: list[Attribute] = []
    try:
        for entry in spec:
            if entry["kind"] == "to":
                attributes.append(
                    TotalOrderAttribute(entry["name"], best=entry["best"])
                )
            elif entry["kind"] == "po":
                dag = PartialOrderDAG(
                    [decode_value(value) for value in entry["values"]],
                    [
                        (decode_value(better), decode_value(worse))
                        for better, worse in entry["edges"]
                    ],
                )
                attributes.append(PartialOrderAttribute(entry["name"], dag))
            else:
                raise StoreError(
                    f"store '{path}' schema has unknown attribute kind "
                    f"{entry['kind']!r}"
                )
    except (KeyError, TypeError) as exc:
        raise StoreError(
            f"store '{path}' has a malformed schema entry: {exc!r} "
            f"(expected format version {FORMAT_VERSION})"
        ) from None
    return Schema(attributes)
