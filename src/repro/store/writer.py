"""Pack an encoded dataset into a single mmap-able store file.

Packing performs, once, exactly the work a fresh process would otherwise
repeat on every start: encode the dataset into an
:class:`~repro.data.columns.EncodedFrame`, run the query-independent
per-PO-group TO-Pareto prefilter, map the survivors into the TSS space under
the schema's *base* preferences, and bulk-load the flat data R-tree over the
mapped points.  All of it is written as page-aligned little-endian array
sections (see :mod:`repro.store.format`) so loaders reconstruct the same
objects as zero-copy ``np.memmap`` views — or, without NumPy, by reading the
very same bytes into tuple-backed columns.

The writer works under both backends: the frame and the mapped-point arrays
are backend-agnostic (the columnar and record paths are pinned to agree
bitwise), while the flat-tree sections are written only when NumPy is
available — a store packed without NumPy simply omits them and loaders
rebuild the tree from the mapped points.
"""

from __future__ import annotations

import json
import struct
import zlib

from repro.data.columns import EncodedFrame
from repro.data.dataset import Dataset
from repro.engine.prefilter import prefilter_survivors
from repro.exceptions import StoreError
from repro.kernels import resolve_kernel
from repro.order.encoding import encode_domain
from repro.store.format import (
    FORMAT_VERSION,
    MAGIC,
    PAGE_SIZE,
    align,
    encode_schema,
)


def _numpy_or_none():
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def _pack_floats(values) -> bytes:
    flat = list(values)
    return struct.pack(f"<{len(flat)}d", *flat)


def _pack_ints(values, fmt: str) -> bytes:
    flat = [int(v) for v in values]
    return struct.pack(f"<{len(flat)}{fmt}", *flat)


def _matrix_bytes(matrix, dtype: str) -> bytes:
    """Raw little-endian bytes of a 2-D array or tuple-of-row-tuples."""
    np = _numpy_or_none()
    if np is not None and not isinstance(matrix, (tuple, list)):
        return np.ascontiguousarray(matrix, dtype=np.dtype(dtype)).tobytes()
    flat = [value for row in matrix for value in row]
    if dtype == "<f8":
        return _pack_floats(flat)
    return _pack_ints(flat, {"<i4": "i", "<i8": "q"}[dtype])


def _vector_bytes(vector, dtype: str) -> bytes:
    np = _numpy_or_none()
    if np is not None and not isinstance(vector, (tuple, list)):
        return np.ascontiguousarray(vector, dtype=np.dtype(dtype)).tobytes()
    if dtype == "<f8":
        return _pack_floats(vector)
    return _pack_ints(vector, {"<i4": "i", "<i8": "q"}[dtype])


def pack_dataset(
    dataset: Dataset,
    path,
    *,
    kernel=None,
    max_entries: int = 32,
) -> dict:
    """Encode, prefilter, map, bulk-load and write ``dataset`` to ``path``.

    Returns a summary dict (path, section sizes, counts).  Raises
    :class:`~repro.exceptions.StoreError` for schemas whose PO domains are
    not JSON-serializable (e.g. frozenset lattices).
    """
    return pack_frame(
        EncodedFrame.from_dataset(dataset),
        path,
        kernel=kernel,
        max_entries=max_entries,
    )


def pack_frame(
    frame: EncodedFrame,
    path,
    *,
    kernel=None,
    max_entries: int = 32,
    row_ids=None,
    generation: int = 0,
) -> dict:
    """Prefilter, map, bulk-load and write an encoded frame to ``path``.

    The frame-first entry point :func:`pack_dataset` delegates to — and the
    one delta-plane compaction uses, since a compacted live frame has no
    record dataset behind it.  ``row_ids`` optionally persists a stable
    ``row -> record id`` mapping (omitted = identity) and ``generation`` a
    monotone compaction counter; both are backward-compatible additions
    readers may ignore.
    """
    schema = frame.schema
    schema_spec = encode_schema(schema)
    kernel = resolve_kernel(kernel)
    if max_entries < 4:
        raise StoreError(f"max_entries must be at least 4, got {max_entries}")

    survivors = prefilter_survivors(schema, None, frame, kernel)
    n = len(frame)
    reduced = frame if len(survivors) == n else frame.take(survivors)

    sections: list[tuple[str, str, tuple[int, ...], bytes]] = [
        (
            "frame_to",
            "<f8",
            (n, schema.num_total_order),
            _matrix_bytes(frame.to, "<f8"),
        ),
        (
            "frame_codes",
            "<i4",
            (n, schema.num_partial_order),
            _matrix_bytes(frame.codes, "<i4"),
        ),
        ("survivors", "<i8", (len(survivors),), _vector_bytes(survivors, "<i8")),
    ]
    if row_ids is not None:
        row_ids = [int(record_id) for record_id in row_ids]
        if len(row_ids) != n:
            raise StoreError(
                f"row_ids has {len(row_ids)} entries for a {n}-row frame"
            )
        sections.append(("row_ids", "<i8", (n,), _vector_bytes(row_ids, "<i8")))

    base: dict = {
        "max_entries": max_entries,
        "has_mapping": False,
        "has_index": False,
    }
    num_points = 0
    if schema.num_partial_order:
        from repro.core.mapping import TSSMapping

        encodings = [
            encode_domain(attribute.dag)
            for attribute in schema.partial_order_attributes
        ]
        mapping = TSSMapping(None, encodings, schema=schema, frame=reduced)
        offsets = [0]
        rows: list[int] = []
        for point in mapping.points:
            rows.extend(point.record_ids)
            offsets.append(len(rows))
        coords = (
            mapping.mapped_matrix()
            if reduced.uses_numpy
            else tuple(point.coords for point in mapping.points)
        )
        dimensions = mapping.dimensions
        num_points = len(mapping.points)
        sections += [
            (
                "mapped_coords",
                "<f8",
                (len(mapping.points), dimensions),
                _matrix_bytes(coords, "<f8"),
            ),
            ("point_offsets", "<i8", (len(offsets),), _vector_bytes(offsets, "<i8")),
            ("point_rows", "<i8", (len(rows),), _vector_bytes(rows, "<i8")),
        ]
        base.update({"has_mapping": True, "dimensions": dimensions})
        if reduced.uses_numpy:
            from repro.index.flat import FlatRTree

            tree = FlatRTree.bulk_load(
                dimensions, mapping.mapped_matrix(), max_entries=max_entries
            )
            nodes = tree.node_count()
            sections += [
                ("tree_points", "<f8", (len(tree.points), dimensions), _matrix_bytes(tree.points, "<f8")),
                ("tree_payloads", "<i8", (len(tree.payloads),), _vector_bytes(tree.payloads, "<i8")),
                ("tree_node_low", "<f8", (nodes, dimensions), _matrix_bytes(tree.node_low, "<f8")),
                ("tree_node_high", "<f8", (nodes, dimensions), _matrix_bytes(tree.node_high, "<f8")),
                ("tree_child_start", "<i4", (nodes,), _vector_bytes(tree.child_start, "<i4")),
                ("tree_child_end", "<i4", (nodes,), _vector_bytes(tree.child_end, "<i4")),
                ("tree_entry_mindists", "<f8", (len(tree.entry_mindists),), _vector_bytes(tree.entry_mindists, "<f8")),
                ("tree_node_mindists", "<f8", (nodes,), _vector_bytes(tree.node_mindists, "<f8")),
            ]
            base.update(
                {
                    "has_index": True,
                    "num_leaves": tree.num_leaves,
                    "height": tree.height,
                    "num_nodes": nodes,
                }
            )

    # Lay the sections out page-aligned after the header.  Header length is
    # not known before the offsets are, so lay out twice: once with a
    # worst-case header page count, then with the real one.
    def layout(header_bytes_len: int) -> list[dict]:
        placed = []
        offset = align(len(MAGIC) + 8 + header_bytes_len)
        for name, dtype, shape, payload in sections:
            placed.append(
                {
                    "name": name,
                    "dtype": dtype,
                    "shape": list(shape),
                    "offset": offset,
                    "nbytes": len(payload),
                    "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
                }
            )
            offset = align(offset + len(payload))
        return placed

    def header_json(placed: list[dict]) -> bytes:
        header = {
            "format_version": FORMAT_VERSION,
            "generation": int(generation),
            "schema": schema_spec,
            "counts": {
                "rows": n,
                "survivors": len(survivors),
                "points": num_points,
            },
            "base": base,
            "sections": {
                entry["name"]: {
                    key: entry[key]
                    for key in ("dtype", "shape", "offset", "nbytes", "crc32")
                }
                for entry in placed
            },
        }
        return json.dumps(header, separators=(",", ":")).encode("utf-8")

    placed = layout(0)
    encoded = header_json(placed)
    # Re-layout until the header size stabilizes (it grows only if the
    # offsets' digit count pushes it across a page boundary — at most twice).
    for _ in range(3):
        relaid = layout(len(encoded))
        re_encoded = header_json(relaid)
        if len(re_encoded) == len(encoded) and relaid == placed:
            placed, encoded = relaid, re_encoded
            break
        placed, encoded = relaid, re_encoded

    out_path = str(path)
    with open(out_path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<Q", len(encoded)))
        handle.write(encoded)
        position = len(MAGIC) + 8 + len(encoded)
        for entry, (_, _, _, payload) in zip(placed, sections):
            handle.write(b"\x00" * (entry["offset"] - position))
            handle.write(payload)
            position = entry["offset"] + len(payload)
        # Pad the tail to a page boundary so the last mmap view is covered.
        handle.write(b"\x00" * (align(position) - position))
        total_bytes = align(position)

    return {
        "path": out_path,
        "format_version": FORMAT_VERSION,
        "generation": int(generation),
        "bytes": total_bytes,
        "page_size": PAGE_SIZE,
        "rows": n,
        "survivors": len(survivors),
        "base": dict(base),
        "sections": {entry["name"]: entry["nbytes"] for entry in placed},
    }
