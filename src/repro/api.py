"""The public facade: open datasets (or packed stores) into query engines.

Two calls cover the whole lifecycle::

    import repro

    repro.pack(dataset, "catalog.rpro")              # once, offline
    engine = repro.open_dataset("catalog.rpro")      # per process: mmap, no re-encode
    result = engine.run_query(repro.BatchQuery(name="base"))

:func:`open_dataset` accepts anything the engine can query — an in-memory
:class:`~repro.data.dataset.Dataset`, an open
:class:`~repro.store.reader.DatasetStore`, or a packed-store path — and wires
it to a :class:`~repro.engine.batch.BatchQueryEngine` configured through one
:class:`~repro.config.RuntimeConfig` (explicit keywords > ``REPRO_*``
environment variables > defaults).  :func:`pack` is the writing half: it
persists a dataset's encoded artifacts into the single-file store format
(see :mod:`repro.store.format`).
"""

from __future__ import annotations

import os
from typing import Any

from repro.config import RuntimeConfig
from repro.data.dataset import Dataset
from repro.engine.batch import BatchQueryEngine
from repro.exceptions import ExperimentError


def _resolve_config(
    config: RuntimeConfig | None, overrides: dict[str, Any]
) -> RuntimeConfig:
    if config is None:
        return RuntimeConfig.resolve(**overrides)
    if overrides:
        return config.with_overrides(**overrides)
    return config


def open_dataset(
    source: "Dataset | object | str | os.PathLike[str] | None" = None,
    *,
    config: RuntimeConfig | None = None,
    **overrides: Any,
) -> BatchQueryEngine:
    """Open a dataset, store or store path as a ready-to-query engine.

    ``source`` may be a :class:`~repro.data.dataset.Dataset`, an open
    :class:`~repro.store.reader.DatasetStore`, a path to a packed store, or
    ``None`` — which uses the config's ``store`` (the ``REPRO_STORE``
    environment variable when not set explicitly).  ``config`` carries the
    runtime knobs; keyword overrides (the :meth:`RuntimeConfig.resolve
    <repro.config.RuntimeConfig.resolve>` fields — ``kernel``, ``index``,
    ``frame``, ``workers``, ``shards``, ``partitioner``, ``merge``,
    ``prefilter``, ``cache_size``, ``max_entries``, ``store``, ``mmap``,
    ``faults``) win over both.
    """
    config = _resolve_config(config, overrides)
    # Arm fault injection (``faults=`` / REPRO_FAULTS) before the engine
    # opens anything, so even the store-open path is injectable.
    config.install_faults()
    if source is None:
        if config.store is None:
            raise ExperimentError(
                "open_dataset needs a dataset, store or path — or a store "
                "configured via RuntimeConfig(store=...) / the "
                "REPRO_STORE environment variable"
            )
        source = config.store
    return BatchQueryEngine(source, **config.engine_options())


def pack(
    dataset: Dataset,
    out_path: "str | os.PathLike[str]",
    *,
    config: RuntimeConfig | None = None,
    **overrides: Any,
) -> dict[str, Any]:
    """Pack ``dataset`` into a single mmap-able store file at ``out_path``.

    The config's ``kernel`` runs the pack-time prefilter and its
    ``max_entries`` sets the persisted flat tree's fanout.  Returns the
    writer's summary dict (path, section sizes, counts).
    """
    from repro.store.writer import pack_dataset

    config = _resolve_config(config, overrides)
    return pack_dataset(
        dataset, out_path, kernel=config.kernel, max_entries=config.max_entries
    )
