"""reprolint — architectural-invariant static analysis for the repro codebase.

A stdlib-``ast`` linter that machine-checks the cross-plane invariants the
repository's correctness rests on (see ``README.md`` §"Static analysis &
invariants"):

``env-gateway``
    Every ``os.environ`` / ``os.getenv`` read lives in ``repro/config.py``.
``numpy-containment``
    ``import numpy`` stays behind the kernel/frame/index/store allowlist and
    is always guarded, so pure-Python checkouts import cleanly.
``typed-errors``
    Each plane raises its own typed :class:`~repro.exceptions.ReproError`
    subclass; bare ``except:`` and ``except Exception: pass`` are banned.
``no-record-hot-path``
    Columnar hot-path modules never touch ``.records`` or build per-record
    Python structures.
``lock-order``
    The lock-acquisition graph across the concurrent modules is cycle-free
    and state locks are not held across blocking calls.

Findings on a specific line can be waived with an explicit suppression
comment naming the rule::

    risky_line()  # reprolint: disable=rule-name -- justification

Use ``reprolint.run_paths`` programmatically, ``python -m reprolint`` or
``repro lint`` from a checkout.
"""

from __future__ import annotations

from reprolint.engine import Finding, LintReport, Module, lint_modules, load_modules
from reprolint.rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintReport",
    "Module",
    "get_rules",
    "lint_modules",
    "load_modules",
    "run_paths",
]


def run_paths(paths, rules=None) -> LintReport:
    """Lint ``paths`` (files or directories) with ``rules`` (default: all)."""
    modules = load_modules(paths)
    return lint_modules(modules, get_rules(rules))
