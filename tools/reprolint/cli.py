"""Command-line entry point: ``python -m reprolint`` / ``repro lint``.

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from reprolint.engine import lint_modules, load_modules
from reprolint.rules import ALL_RULES, get_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="architectural-invariant checks for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings waived by # reprolint: disable comments",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name}: {rule.description}")
        return 0
    try:
        rules = get_rules(args.rules)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    try:
        modules = load_modules(args.paths)
    except (OSError, SyntaxError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not modules:
        print("error: no python files found", file=sys.stderr)
        return 2
    report = lint_modules(modules, rules)
    if args.format == "json":
        print(json.dumps(report.as_json(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        if args.show_suppressed:
            for finding in report.suppressed:
                print(f"{finding.render()} [suppressed]")
        summary = (
            f"{len(report.findings)} finding(s), "
            f"{len(report.suppressed)} suppressed, "
            f"{report.modules_checked} module(s), "
            f"rules: {', '.join(report.rules_run)}"
        )
        print(summary, file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
