"""Core machinery: module loading, suppression parsing, rule running, reports.

A *rule* is a named check over parsed modules.  Per-module rules see one
:class:`Module` at a time; project rules (e.g. the lock-order analyzer) see
the whole module set at once so they can reason across files.  Findings are
plain data — the CLI renders them ruff-style (``path:line:col: rule message``)
or as JSON.

Suppressions are explicit and line-anchored: a ``# reprolint:
disable=<rule>[,<rule>...]`` comment on the finding's line waives exactly the
named rules (``disable=all`` waives every rule for that line).  Suppressed
findings are counted, never silently dropped.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

SUPPRESSION_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source line."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class Module:
    """One parsed source file plus everything rules need to inspect it."""

    path: Path
    relpath: str
    name: str  # dotted module name, e.g. "repro.engine.batch"
    source: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]]  # line -> waived rule names

    def is_suppressed(self, rule: str, line: int) -> bool:
        waived = self.suppressions.get(line)
        return waived is not None and (rule in waived or "all" in waived)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


@dataclass(frozen=True)
class Rule:
    """A named check.  Exactly one of ``check`` / ``project_check`` is set."""

    name: str
    description: str
    check: Callable[[Module], Iterable[Finding]] | None = None
    project_check: Callable[[Sequence[Module]], Iterable[Finding]] | None = None


@dataclass
class LintReport:
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    modules_checked: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_json(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "modules_checked": self.modules_checked,
            "rules": list(self.rules_run),
            "findings": [f.as_json() for f in self.findings],
            "suppressed": [f.as_json() for f in self.suppressed],
        }


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, rooted at the nearest ``src`` dir.

    ``src/repro/engine/batch.py`` -> ``repro.engine.batch``;
    ``repro/config.py`` (no src segment) -> ``repro.config``;
    a bare fixture file -> its stem.
    """
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [path.name]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    suppressions: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = SUPPRESSION_RE.search(line)
        if match is None:
            continue
        # An optional " -- justification" trailer follows the rule list.
        rule_list = match.group(1).split("--")[0]
        names = frozenset(
            token.strip() for token in rule_list.split(",") if token.strip()
        )
        if names:
            suppressions[lineno] = names
    return suppressions


def load_module(path: Path, root: Path | None = None) -> Module:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    relpath = str(path.relative_to(root)) if root is not None else str(path)
    return Module(
        path=path,
        relpath=relpath,
        name=module_name_for(path),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def iter_source_files(paths: Iterable[Path | str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield path


def load_modules(paths: Iterable[Path | str]) -> list[Module]:
    return [load_module(path) for path in iter_source_files(paths)]


def lint_modules(modules: Sequence[Module], rules: Sequence[Rule]) -> LintReport:
    report = LintReport(
        modules_checked=len(modules), rules_run=tuple(rule.name for rule in rules)
    )
    by_relpath = {module.relpath: module for module in modules}
    raw: list[Finding] = []
    for rule in rules:
        if rule.check is not None:
            for module in modules:
                raw.extend(rule.check(module))
        if rule.project_check is not None:
            raw.extend(rule.project_check(modules))
    for finding in sorted(set(raw)):
        module = by_relpath.get(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report
