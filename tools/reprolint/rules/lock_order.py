"""lock-order: the cross-module lock graph is consistent and non-blocking.

The concurrent planes (engine, LRU caches, sharded executor, store reader,
service) hold locks across calls into each other, so a deadlock needs no
single bad function — only two call chains that acquire the same two locks
in opposite orders.  This analyzer extracts the *lock-acquisition graph*
statically and checks it globally:

1. **Lock discovery** — ``self.X = threading.Lock()/RLock()`` (and
   ``asyncio.Lock()``) attribute assignments and module-level ``X = Lock()``
   bindings define named locks; a ``with``-ed local whose name ends in
   ``_lock`` (the engine's per-topology ``query_lock``) defines an anonymous
   per-call-site lock.
2. **Intra-procedural pass** — per function, a held-lock stack is threaded
   through ``with`` / ``async with`` blocks and paired
   ``.acquire()``/``.release()`` calls; each acquisition under held locks
   contributes ordered edges, and call/blocking sites record what was held.
3. **Inter-procedural propagation** — attribute types are inferred from
   ``self.attr = ClassName(...)`` constructor assignments (resolved through
   module-scope imports), then the set of locks each function may acquire —
   and whether it may block — is propagated to a fixed point over the call
   graph.  A call made while holding lock ``A`` into code that acquires
   ``B`` yields the edge ``A -> B``.
4. **Reporting** — a pair acquired in both orders is an inconsistency
   (deadlock candidate); re-acquiring a non-reentrant lock is a
   self-deadlock; and a *blocking* operation (file I/O, pool submits,
   ``compute()``-style bulk kernel work, sleeps, socket ops) made while a
   state lock is held is flagged.  Locks in :data:`IO_GUARD_LOCKS` exist to
   serialize I/O and are exempt from the blocking check; ``asyncio`` locks
   get the *event-loop starvation* variant of the same check — a blocking
   call under a held asyncio lock stalls every coroutine on the loop, not
   just the lock's waiters, so it is flagged even though the lock itself
   is cooperative.

The analysis is sound for the patterns this codebase uses (attribute locks,
``with`` acquisition, constructor-assigned collaborators) and is
deliberately conservative elsewhere: locks reached through containers other
than ``*_lock`` locals or calls behind function-scope imports are out of
scope and documented as such.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from reprolint.engine import Finding, Module, Rule

#: Locks whose job is to serialize I/O on a shared handle; holding them
#: across reads *is* the design, so the blocking-call check skips them.
IO_GUARD_LOCKS = frozenset({"repro.store.reader.DatasetStore._lock"})

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})
_BLOCKING_NAME_CALLS = frozenset({"open"})
_BLOCKING_OS_CALLS = frozenset(
    {"replace", "remove", "unlink", "rename", "fsync", "rmtree", "sleep"}
)
_BLOCKING_METHOD_CALLS = frozenset(
    {
        "submit",
        "apply_async",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap_async",
        "compute",
        "recv",
        "send",
        "sendall",
        "accept",
        "connect",
        "fsync",
        "flush",
    }
)


@dataclass(frozen=True)
class LockDef:
    lock_id: str
    reentrant: bool = False
    is_async: bool = False
    anonymous: bool = False

    @property
    def state_lock(self) -> bool:
        """Whether the blocking-call check applies while this lock is held."""
        return (
            not self.anonymous
            and not self.is_async
            and self.lock_id not in IO_GUARD_LOCKS
        )


@dataclass
class _Function:
    key: tuple[str, str | None, str]
    module: Module
    acquires: set[str] = field(default_factory=set)
    edges: list[tuple[str, str, ast.AST]] = field(default_factory=list)
    calls: list[tuple[tuple[str, str | None, str], tuple[str, ...], ast.AST]] = field(
        default_factory=list
    )
    blocking: list[tuple[str, tuple[str, ...], ast.AST]] = field(default_factory=list)


class _ModuleIndex:
    """Per-module symbol tables: imports, classes, lock attrs, attr types."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.imports: dict[str, str] = {}  # local name -> dotted target
        self.classes: dict[str, ast.ClassDef] = {}
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.locks: dict[tuple[str | None, str], LockDef] = {}
        self.attr_types: dict[tuple[str, str], str] = {}  # (class, attr) -> local cls
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(stmt, ast.ImportFrom) and stmt.module and not stmt.level:
                for alias in stmt.names:
                    self.imports[alias.asname or alias.name] = (
                        f"{stmt.module}.{alias.name}"
                    )
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = stmt
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign):
                self._scan_lock_assign(stmt, class_name=None)
        for cls in self.classes.values():
            for item in ast.walk(cls):
                if isinstance(item, ast.Assign):
                    self._scan_lock_assign(item, class_name=cls.name)

    def _scan_lock_assign(self, stmt: ast.Assign, class_name: str | None) -> None:
        value = stmt.value
        if not isinstance(value, ast.Call):
            return
        factory = _call_name(value.func)
        if factory is None:
            return
        head, _, tail = factory.rpartition(".")
        for target in stmt.targets:
            attr: str | None = None
            if (
                class_name is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attr = target.attr
            elif class_name is None and isinstance(target, ast.Name):
                attr = target.id
            if attr is None:
                continue
            if tail in _LOCK_FACTORIES:
                qualifier = f"{class_name}." if class_name else ""
                self.locks[(class_name, attr)] = LockDef(
                    lock_id=f"{self.module.name}.{qualifier}{attr}",
                    reentrant=tail == "RLock",
                    is_async=head == "asyncio"
                    or self.imports.get(head, head).startswith("asyncio"),
                )
            elif class_name is not None and tail[:1].isupper():
                self.attr_types[(class_name, attr)] = tail


def _call_name(func: ast.expr) -> str | None:
    """``a.b.C`` -> "a.b.C" for Name/Attribute chains, else None."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FunctionPass:
    """Walks one function body threading the held-lock stack."""

    def __init__(
        self,
        index: _ModuleIndex,
        indexes: dict[str, _ModuleIndex],
        class_name: str | None,
        info: _Function,
        anonymous: dict[str, LockDef],
    ) -> None:
        self.index = index
        self.indexes = indexes
        self.class_name = class_name
        self.info = info
        self.anonymous = anonymous
        self.lock_defs: dict[str, LockDef] = {}

    # -- lock expression resolution ------------------------------------- #
    def resolve_lock(self, expr: ast.expr) -> LockDef | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            lock = self.index.locks.get((self.class_name, expr.attr))
            if lock is None and expr.attr.endswith("_lock"):
                # A with-ed self attribute named like a lock but with no
                # visible factory assignment: treat as a named lock anyway.
                qualifier = f"{self.class_name}." if self.class_name else ""
                lock = LockDef(f"{self.index.module.name}.{qualifier}{expr.attr}")
            return lock
        if isinstance(expr, ast.Name):
            lock = self.index.locks.get((None, expr.id))
            if lock is not None:
                return lock
            if expr.id.endswith("_lock"):
                key = f"{self.index.module.name}.<{expr.id}>"
                if key not in self.anonymous:
                    self.anonymous[key] = LockDef(key, anonymous=True)
                return self.anonymous[key]
        return None

    def _record(self, lock: LockDef, held: list[LockDef], node: ast.AST) -> None:
        self.lock_defs[lock.lock_id] = lock
        self.info.acquires.add(lock.lock_id)
        for holder in held:
            self.info.edges.append((holder.lock_id, lock.lock_id, node))

    # -- statement walking ---------------------------------------------- #
    def walk(self, body: Sequence[ast.stmt], held: list[LockDef]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: list[LockDef] = []
                for item in stmt.items:
                    lock = self.resolve_lock(item.context_expr)
                    if lock is not None:
                        self._record(lock, held, item.context_expr)
                        held.append(lock)
                        acquired.append(lock)
                    else:
                        self.scan_calls(item.context_expr, held)
                self.walk(stmt.body, held)
                for lock in acquired:
                    held.remove(lock)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes analyzed on their own
            elif isinstance(stmt, ast.Try):
                self.walk(stmt.body, held)
                for handler in stmt.handlers:
                    self.walk(handler.body, held)
                self.walk(stmt.orelse, held)
                self.walk(stmt.finalbody, held)
            elif isinstance(stmt, (ast.If, ast.While)):
                self.scan_calls(stmt.test, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.scan_calls(stmt.iter, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
            else:
                self.scan_calls(stmt, held)

    # -- expression scanning -------------------------------------------- #
    def scan_calls(self, node: ast.AST, held: list[LockDef]) -> None:
        for call in [n for n in ast.walk(node) if isinstance(n, ast.Call)]:
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr in ("acquire", "release"):
                lock = self.resolve_lock(func.value)
                if lock is not None:
                    if func.attr == "acquire":
                        self._record(lock, held, call)
                        held.append(lock)
                    elif lock in held:
                        held.remove(lock)
                    continue
            callee = self._resolve_callee(func)
            if callee is not None:
                self.info.calls.append(
                    (callee, tuple(lock.lock_id for lock in held), call)
                )
            blocking = self._blocking_desc(func)
            if blocking is not None:
                self.info.blocking.append(
                    (blocking, tuple(lock.lock_id for lock in held), call)
                )

    def _resolve_callee(self, func: ast.expr) -> tuple[str, str | None, str] | None:
        if isinstance(func, ast.Name):
            if func.id in self.index.functions:
                return (self.index.module.name, None, func.id)
            target = self.index.imports.get(func.id)
            if target is not None and "." in target:
                mod, _, name = target.rpartition(".")
                if mod in self.indexes and name in self.indexes[mod].functions:
                    return (mod, None, name)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name) and base.id == "self":
            if self.class_name is not None:
                return (self.index.module.name, self.class_name, func.attr)
            return None
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and self.class_name is not None
        ):
            cls = self.index.attr_types.get((self.class_name, base.attr))
            if cls is None:
                return None
            if cls in self.index.classes:
                return (self.index.module.name, cls, func.attr)
            target = self.index.imports.get(cls)
            if target is not None and "." in target:
                mod, _, name = target.rpartition(".")
                if mod in self.indexes and name in self.indexes[mod].classes:
                    return (mod, name, func.attr)
        return None

    def _blocking_desc(self, func: ast.expr) -> str | None:
        name = _call_name(func)
        if name is None:
            return None
        if name in _BLOCKING_NAME_CALLS:
            return f"{name}()"
        head, _, tail = name.rpartition(".")
        if head in ("os", "shutil", "time") and tail in _BLOCKING_OS_CALLS:
            return f"{name}()"
        if tail in _BLOCKING_METHOD_CALLS and head not in ("", "self"):
            return f".{tail}()"
        if tail in _BLOCKING_METHOD_CALLS and head == "self":
            return None  # handled through the call graph if self.X blocks
        return None


def _collect_functions(
    indexes: dict[str, _ModuleIndex],
) -> dict[tuple[str, str | None, str], _Function]:
    functions: dict[tuple[str, str | None, str], _Function] = {}
    for index in indexes.values():
        anonymous: dict[str, LockDef] = {}
        scopes: list[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]] = [
            (None, fn) for fn in index.functions.values()
        ]
        for cls in index.classes.values():
            for item in cls.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scopes.append((cls.name, item))
        for class_name, fn in scopes:
            key = (index.module.name, class_name, fn.name)
            info = _Function(key=key, module=index.module)
            walker = _FunctionPass(index, indexes, class_name, info, anonymous)
            walker.walk(fn.body, [])
            functions[key] = info
    return functions


def _fixed_point(
    functions: dict[tuple[str, str | None, str], _Function],
) -> tuple[dict, dict]:
    """Transitive lock-acquisition and may-block sets per function."""
    acquires = {key: set(fn.acquires) for key, fn in functions.items()}
    blocks = {key: {desc for desc, _, _ in fn.blocking} for key, fn in functions.items()}
    changed = True
    while changed:
        changed = False
        for key, fn in functions.items():
            for callee, _, _ in fn.calls:
                if callee not in functions:
                    continue
                if not acquires[callee] <= acquires[key]:
                    acquires[key] |= acquires[callee]
                    changed = True
                if not blocks[callee] <= blocks[key]:
                    blocks[key] |= blocks[callee]
                    changed = True
    return acquires, blocks


def project_check(modules: Sequence[Module]) -> Iterable[Finding]:
    indexes = {module.name: _ModuleIndex(module) for module in modules}
    lock_defs: dict[str, LockDef] = {}
    for index in indexes.values():
        for lock in index.locks.values():
            lock_defs[lock.lock_id] = lock
    functions = _collect_functions(indexes)
    acquires, blocks = _fixed_point(functions)

    def lookup(lock_id: str) -> LockDef:
        return lock_defs.get(lock_id, LockDef(lock_id, anonymous="<" in lock_id))

    # Gather every ordered edge with a witness site.
    edges: dict[tuple[str, str], tuple[Module, ast.AST]] = {}
    findings: list[Finding] = []
    for fn in functions.values():
        for holder, acquired_id, node in fn.edges:
            if holder == acquired_id:
                if not lookup(holder).reentrant:
                    findings.append(
                        fn.module.finding(
                            RULE.name,
                            node,
                            f"non-reentrant lock {holder} acquired while "
                            "already held (self-deadlock)",
                        )
                    )
                continue
            edges.setdefault((holder, acquired_id), (fn.module, node))
        for callee, held, node in fn.calls:
            if callee not in functions:
                continue
            for acquired_id in acquires[callee]:
                for holder in held:
                    if holder == acquired_id:
                        lock = lookup(holder)
                        if not lock.reentrant and not lock.anonymous:
                            findings.append(
                                fn.module.finding(
                                    RULE.name,
                                    node,
                                    f"call into {'.'.join(p for p in callee if p)} "
                                    f"may re-acquire non-reentrant lock {holder} "
                                    "already held (self-deadlock)",
                                )
                            )
                        continue
                    edges.setdefault((holder, acquired_id), (fn.module, node))
            callee_blocks = blocks[callee]
            if callee_blocks:
                for holder in held:
                    lock = lookup(holder)
                    desc = ", ".join(sorted(callee_blocks))
                    if lock.state_lock:
                        findings.append(
                            fn.module.finding(
                                RULE.name,
                                node,
                                f"call into {'.'.join(p for p in callee if p)} "
                                f"(which may block: {desc}) while holding "
                                f"state lock {holder}",
                            )
                        )
                    elif lock.is_async:
                        findings.append(
                            fn.module.finding(
                                RULE.name,
                                node,
                                f"call into {'.'.join(p for p in callee if p)} "
                                f"(which may block: {desc}) while holding "
                                f"asyncio lock {holder} — a blocking call "
                                "under an asyncio lock starves the whole "
                                "event loop",
                            )
                        )
        for desc, held, node in fn.blocking:
            for holder in held:
                lock = lookup(holder)
                if lock.state_lock:
                    findings.append(
                        fn.module.finding(
                            RULE.name,
                            node,
                            f"blocking call {desc} while holding state lock "
                            f"{holder}",
                        )
                    )
                elif lock.is_async:
                    findings.append(
                        fn.module.finding(
                            RULE.name,
                            node,
                            f"blocking call {desc} while holding asyncio "
                            f"lock {holder} — a blocking call under an "
                            "asyncio lock starves the whole event loop",
                        )
                    )

    for (a, b), (module, node) in sorted(edges.items()):
        if a < b and (b, a) in edges:
            other_module, other_node = edges[(b, a)]
            findings.append(
                module.finding(
                    RULE.name,
                    node,
                    f"inconsistent lock order: {a} -> {b} here but "
                    f"{b} -> {a} at {other_module.relpath}:"
                    f"{getattr(other_node, 'lineno', '?')} (deadlock candidate)",
                )
            )
    return findings


RULE = Rule(
    name="lock-order",
    description="consistent cross-module lock acquisition; no blocking under state locks",
    project_check=project_check,
)
