"""numpy-containment: NumPy stays behind the kernel/frame/index/store planes.

The pure-Python fallback is a hard product requirement (the CI matrix runs
every suite without NumPy), so:

* Only modules in :data:`ALLOWED_PREFIXES` — the kernel, frame (columnar
  data/delta), index and store planes plus the ``repro.config`` probe — may
  import ``numpy`` at all.  Everything else routes array work through those
  planes (e.g. ``EncodedFrame`` ordering helpers, kernel bulk calls).
* Inside the allowlist, a module-scope ``import numpy`` must be *guarded*
  (``try: ... except ImportError`` or ``if TYPE_CHECKING``) so importing the
  module never fails on a NumPy-less checkout.  Function-scope imports are
  fine: they only run on NumPy-enabled code paths.
* :data:`NUMPY_REQUIRED` modules (the NumPy kernel, the JIT kernel, the flat
  R-tree) may import NumPy unguarded at module scope — but then *nothing
  outside that set may import them at module scope* either; they are loaded
  lazily behind the kernel/index registries' availability probes.
* ``numba`` is held to the same discipline as ``numpy``: it is an optional
  accelerator, so only allowlisted planes may import it, guarded — except in
  :data:`NUMPY_REQUIRED` modules (the JIT kernel imports it unguarded and is
  itself loaded lazily).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from reprolint.engine import Finding, Module, Rule

#: Modules that exist only on the NumPy path and are imported lazily behind a
#: registry availability probe; unguarded module-scope `import numpy` (and,
#: for the JIT kernel, `import numba`) is fine.
NUMPY_REQUIRED = frozenset(
    {
        "repro.kernels.numpy_kernel",
        "repro.kernels.jit_kernel",
        "repro.index.flat",
    }
)

#: Optional accelerator roots held to the containment discipline.
_ACCELERATOR_ROOTS = frozenset({"numpy", "numba"})

#: Plane prefixes allowed to import numpy (guarded at module scope).
ALLOWED_PREFIXES = (
    "repro.config",
    "repro.kernels",
    "repro.data",
    "repro.delta",
    "repro.store",
    "repro.index",
    # Frame-plane extensions: the TSS mapping and virtual R-tree build their
    # coordinate matrices columnar-side, and the dynamic group splitter is
    # the delta plane's columnar builder.
    "repro.core.mapping",
    "repro.core.virtual_rtree",
    "repro.dynamic.groups",
)

_IMPORT_ERRORS = frozenset({"ImportError", "ModuleNotFoundError", "Exception"})


def _allowed(name: str) -> bool:
    return any(
        name == prefix or name.startswith(prefix + ".") for prefix in ALLOWED_PREFIXES
    )


def _is_import_guard(node: ast.Try) -> bool:
    for handler in node.handlers:
        names: tuple[ast.expr, ...]
        if handler.type is None:
            return True
        if isinstance(handler.type, ast.Tuple):
            names = tuple(handler.type.elts)
        else:
            names = (handler.type,)
        for expr in names:
            if isinstance(expr, ast.Name) and expr.id in _IMPORT_ERRORS:
                return True
    return False


def _is_type_checking_if(node: ast.If) -> bool:
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _imports(node: ast.stmt) -> list[str]:
    """Top-level dotted names imported by an Import/ImportFrom statement."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
        return [node.module]
    return []


def _walk(body: Iterable[ast.stmt], *, guarded: bool, in_function: bool):
    """Yield ``(stmt, guarded, in_function)`` for every statement, tracking
    try/except-ImportError and TYPE_CHECKING guards and function scope."""
    for stmt in body:
        yield stmt, guarded, in_function
        if isinstance(stmt, ast.Try):
            inner = guarded or _is_import_guard(stmt)
            yield from _walk(stmt.body, guarded=inner, in_function=in_function)
            for handler in stmt.handlers:
                yield from _walk(handler.body, guarded=guarded, in_function=in_function)
            yield from _walk(stmt.orelse, guarded=guarded, in_function=in_function)
            yield from _walk(stmt.finalbody, guarded=guarded, in_function=in_function)
        elif isinstance(stmt, ast.If):
            inner = guarded or _is_type_checking_if(stmt)
            yield from _walk(stmt.body, guarded=inner, in_function=in_function)
            yield from _walk(stmt.orelse, guarded=guarded, in_function=in_function)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _walk(stmt.body, guarded=guarded, in_function=True)
        elif isinstance(stmt, (ast.ClassDef, ast.With, ast.AsyncWith)):
            yield from _walk(stmt.body, guarded=guarded, in_function=in_function)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            yield from _walk(stmt.body, guarded=guarded, in_function=in_function)
            yield from _walk(stmt.orelse, guarded=guarded, in_function=in_function)


def check(module: Module) -> Iterable[Finding]:
    if module.name in NUMPY_REQUIRED:
        return
    allowed = _allowed(module.name)
    for stmt, guarded, in_function in _walk(
        module.tree.body, guarded=False, in_function=False
    ):
        targets = _imports(stmt)
        for target in targets:
            root = target.split(".", 1)[0]
            if root in _ACCELERATOR_ROOTS:
                if not allowed:
                    yield module.finding(
                        RULE.name,
                        stmt,
                        f"{root} import in {module.name} — outside the "
                        "kernel/frame/index/store allowlist; route array work "
                        "through those planes",
                    )
                elif not guarded and not in_function:
                    yield module.finding(
                        RULE.name,
                        stmt,
                        f"unguarded module-scope {root} import — wrap in "
                        "try/except ImportError so pure-Python checkouts "
                        "import cleanly",
                    )
            elif (
                target in NUMPY_REQUIRED
                and not guarded
                and not in_function
            ):
                yield module.finding(
                    RULE.name,
                    stmt,
                    f"module-scope import of NumPy-required module {target} — "
                    "load it lazily behind the registry availability probe",
                )


RULE = Rule(
    name="numpy-containment",
    description="numpy imports only in allowlisted planes, always guarded",
    check=check,
)
