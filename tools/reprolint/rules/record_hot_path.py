"""no-record-hot-path: columnar hot paths never materialize Record objects.

The columnar planes carry data as contiguous typed columns end to end
(encode once, stream zero-copy blocks); one stray ``dataset.records`` walk
or per-record ``Record(...)`` construction silently reintroduces the
O(rows) Python-object path the plane exists to avoid — the benchmarks gate
the speedup but not *where* it came from.  Modules on the hot path
(:data:`HOT_MODULES`) therefore must not touch ``.records`` / ``.record``
attributes or name the ``Record`` class at all.

The two sanctioned crossings — the ingest boundary where records are encoded
into a frame exactly once, and the explicitly-chosen record fallback when no
frame exists — carry line-level suppressions naming this rule, so every
crossing is visible and justified in the source.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from reprolint.engine import Finding, Module, Rule

#: module names / package prefixes on the columnar hot path.
HOT_MODULES = (
    "repro.kernels",
    "repro.data.columns",
    "repro.engine.prefilter",
    "repro.parallel.executor",
)

RECORD_ATTRIBUTES = frozenset({"records", "record"})


def _hot(name: str) -> bool:
    return any(
        name == prefix or name.startswith(prefix + ".") for prefix in HOT_MODULES
    )


def check(module: Module) -> Iterable[Finding]:
    if not _hot(module.name):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and node.attr in RECORD_ATTRIBUTES:
            yield module.finding(
                RULE.name,
                node,
                f".{node.attr} on the columnar hot path — stream frame "
                "columns/row views instead of per-record objects",
            )
        elif isinstance(node, ast.Name) and node.id == "Record":
            yield module.finding(
                RULE.name,
                node,
                "Record on the columnar hot path — hot-path modules must "
                "not construct or type against per-record objects",
            )


RULE = Rule(
    name="no-record-hot-path",
    description="hot-path modules never touch .records / Record",
    check=check,
)
