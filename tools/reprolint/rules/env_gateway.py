"""env-gateway: every environment read goes through ``repro.config``.

``RuntimeConfig`` resolves every ``REPRO_*`` knob with a single documented
precedence (explicit arg > CLI flag > env var), and the service/CLI error
messages name the variable they came from.  A stray ``os.environ`` read
anywhere else silently bypasses that precedence, so the whole ``os`` env
surface (``environ``, ``environb``, ``getenv``, ``putenv``, ``unsetenv``) is
confined to the one gateway module.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from reprolint.engine import Finding, Module, Rule

ALLOWED_MODULES = frozenset({"repro.config"})
ENV_ATTRIBUTES = frozenset({"environ", "environb", "getenv", "putenv", "unsetenv"})


def check(module: Module) -> Iterable[Finding]:
    if module.name in ALLOWED_MODULES:
        return
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in ENV_ATTRIBUTES
            and isinstance(node.value, ast.Name)
            and node.value.id == "os"
        ):
            yield module.finding(
                RULE.name,
                node,
                f"os.{node.attr} outside repro/config.py — go through "
                "repro.config (RuntimeConfig / env_text)",
            )
        elif isinstance(node, ast.ImportFrom) and node.module == "os":
            for alias in node.names:
                if alias.name in ENV_ATTRIBUTES:
                    yield module.finding(
                        RULE.name,
                        node,
                        f"from os import {alias.name} outside repro/config.py — "
                        "go through repro.config (RuntimeConfig / env_text)",
                    )


RULE = Rule(
    name="env-gateway",
    description="os.environ/os.getenv only inside repro/config.py",
    check=check,
)
