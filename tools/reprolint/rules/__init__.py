"""Rule registry.  Adding a rule = write a module exposing ``RULE``, list it here."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from reprolint.engine import Rule
from reprolint.rules.env_gateway import RULE as ENV_GATEWAY
from reprolint.rules.lock_order import RULE as LOCK_ORDER
from reprolint.rules.numpy_containment import RULE as NUMPY_CONTAINMENT
from reprolint.rules.record_hot_path import RULE as RECORD_HOT_PATH
from reprolint.rules.typed_errors import RULE as TYPED_ERRORS

ALL_RULES: tuple[Rule, ...] = (
    ENV_GATEWAY,
    NUMPY_CONTAINMENT,
    TYPED_ERRORS,
    RECORD_HOT_PATH,
    LOCK_ORDER,
)

_BY_NAME = {rule.name: rule for rule in ALL_RULES}


def get_rules(names: Iterable[str] | None = None) -> Sequence[Rule]:
    """The rules matching ``names`` (default: every registered rule)."""
    if names is None:
        return ALL_RULES
    selected = []
    for name in names:
        if name not in _BY_NAME:
            known = ", ".join(sorted(_BY_NAME))
            raise KeyError(f"unknown rule {name!r} (known rules: {known})")
        selected.append(_BY_NAME[name])
    return tuple(selected)
