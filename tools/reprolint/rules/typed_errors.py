"""typed-errors: every plane raises its own typed ``ReproError`` subclass.

Callers dispatch on the exception hierarchy (``StoreError`` names the file
and format version, resolver errors name their ``REPRO_*`` variable, the
service maps error classes onto protocol error payloads), so a generic
``ValueError``/``RuntimeError``/bare ``ReproError`` from inside a plane
breaks that contract.  The rule enforces, per package prefix, the set of
error classes that plane is allowed to raise — plus, repo-wide:

* bare ``except:`` is banned outright;
* ``except Exception:`` (or ``BaseException``) whose body is only
  ``pass``/``...`` is banned — swallowing everything hides real failures
  (suppress explicitly on the rare interpreter-shutdown guard).

Always allowed anywhere: re-raising (``raise`` with no operand or raising a
caught/lowercase variable), ``NotImplementedError``, ``AssertionError``,
``SystemExit`` in CLI entry modules, and the mapping/iterator protocol
exceptions (``KeyError``/``IndexError``/``StopIteration``) inside the dunder
or ``pop``-family methods that implement those protocols.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from reprolint.engine import Finding, Module, Rule

#: Input-shape errors any *consumer* plane may surface while validating what
#: it was handed: they describe the caller's data/order spec, not the plane.
#: The producing planes themselves (store/service/index/...) keep strict sets.
CROSS_CUTTING = frozenset(
    {"SchemaError", "DatasetError", "PartialOrderError", "UnknownValueError",
     "CycleError"}
)

#: package prefix -> error class names that plane may raise.
PLANE_ERRORS: dict[str, frozenset[str]] = {
    "repro.store": frozenset({"StoreError"}),
    "repro.delta": frozenset({"StoreError", "QueryError"}) | CROSS_CUTTING,
    "repro.data": frozenset(
        {"DatasetError", "SchemaError", "ExperimentError", "PartialOrderError",
         "UnknownValueError"}
    ),
    "repro.order": frozenset(
        {"PartialOrderError", "CycleError", "UnknownValueError", "SchemaError"}
    ),
    # ExperimentError: the registry's bad-backend/REPRO_INDEX errors, matching
    # the kernel registry's contract.
    "repro.index": frozenset({"IndexError_", "ExperimentError"}),
    # QueryError: malformed query payloads; ServiceError (and its
    # RetryExhaustedError subclass): transport/server; DeadlineExceededError:
    # the typed answer of an expired per-request deadline.
    "repro.service": frozenset(
        {"ServiceError", "QueryError", "RetryExhaustedError",
         "DeadlineExceededError"}
    ),
    "repro.engine": frozenset(
        {"QueryError", "ExperimentError", "StoreError", "DeadlineExceededError"}
    )
    | CROSS_CUTTING,
    "repro.parallel": frozenset(
        {"QueryError", "ExperimentError", "DeadlineExceededError"}
    )
    | CROSS_CUTTING,
    # InjectedFaultError: the default error of a tripped fault point;
    # ExperimentError: malformed REPRO_FAULTS specs (config-shaped input).
    "repro.faults": frozenset({"InjectedFaultError", "ExperimentError"}),
    "repro.skyline": frozenset({"QueryError"}) | CROSS_CUTTING,
    "repro.core": frozenset({"QueryError"}) | CROSS_CUTTING,
    "repro.dynamic": frozenset({"QueryError", "IndexError_"}) | CROSS_CUTTING,
    "repro.baselines": frozenset({"QueryError", "IndexError_"}) | CROSS_CUTTING,
    "repro.bench": frozenset({"ExperimentError"}) | CROSS_CUTTING,
    "repro.kernels": frozenset({"ExperimentError"}),
    "repro.config": frozenset({"ExperimentError"}),
    "repro.api": frozenset({"ExperimentError", "StoreError", "QueryError"})
    | CROSS_CUTTING,
}

ALWAYS_ALLOWED = frozenset({"NotImplementedError", "AssertionError"})
CLI_MODULES = frozenset({"repro.cli", "repro.__main__"})

#: methods implementing a container/iterator protocol where the matching
#: builtin exception *is* the contract.
PROTOCOL_METHODS: dict[str, frozenset[str]] = {
    "KeyError": frozenset(
        {"__getitem__", "__delitem__", "__missing__", "pop", "popitem"}
    ),
    "IndexError": frozenset({"__getitem__", "__delitem__", "pop"}),
    "StopIteration": frozenset({"__next__"}),
    "StopAsyncIteration": frozenset({"__anext__"}),
}

#: Known-generic raises that are flagged even where no plane mapping exists.
GENERIC_ERRORS = frozenset(
    {"Exception", "BaseException", "RuntimeError", "ValueError", "TypeError",
     "KeyError", "IndexError", "OSError", "IOError", "ReproError"}
)


def _plane_for(name: str) -> frozenset[str] | None:
    best: str | None = None
    for prefix in PLANE_ERRORS:
        if (name == prefix or name.startswith(prefix + ".")) and (
            best is None or len(prefix) > len(best)
        ):
            best = prefix
    return PLANE_ERRORS[best] if best is not None else None


def _raised_class(node: ast.Raise) -> str | None:
    """The raised class name, or None for re-raise / variable / dynamic raise."""
    exc = node.exc
    if exc is None:
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return exc.attr if exc.attr[:1].isupper() else None
    if isinstance(exc, ast.Name):
        return exc.id if exc.id[:1].isupper() else None
    return None


def _body_only_passes(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


def _walk_with_method(tree: ast.Module):
    """Yield ``(node, enclosing_function_name)`` for every node."""

    def visit(node: ast.AST, func: str | None):
        for child in ast.iter_child_nodes(node):
            inner = func
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = child.name
            yield child, inner
            yield from visit(child, inner)

    yield from visit(tree, None)


def check(module: Module) -> Iterable[Finding]:
    plane = _plane_for(module.name)
    is_cli = module.name in CLI_MODULES
    for node, func in _walk_with_method(module.tree):
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                yield module.finding(
                    RULE.name,
                    node,
                    "bare except: — catch a concrete exception class",
                )
            elif (
                isinstance(node.type, ast.Name)
                and node.type.id in ("Exception", "BaseException")
                and _body_only_passes(node.body)
            ):
                yield module.finding(
                    RULE.name,
                    node,
                    f"except {node.type.id}: pass swallows every failure — "
                    "catch the concrete error or handle it explicitly",
                )
            continue
        if not isinstance(node, ast.Raise):
            continue
        raised = _raised_class(node)
        if raised is None or raised in ALWAYS_ALLOWED:
            continue
        if is_cli and raised == "SystemExit":
            continue
        protocol = PROTOCOL_METHODS.get(raised)
        if protocol is not None and func in protocol:
            continue
        if plane is not None:
            if raised in plane:
                continue
            allowed = ", ".join(sorted(plane))
            yield module.finding(
                RULE.name,
                node,
                f"raise {raised} in {module.name} — this plane raises "
                f"{allowed}",
            )
        elif raised in GENERIC_ERRORS:
            yield module.finding(
                RULE.name,
                node,
                f"raise {raised} — use the plane's typed ReproError subclass",
            )


RULE = Rule(
    name="typed-errors",
    description="planes raise their typed errors; broad excepts banned",
    check=check,
)
