#!/usr/bin/env python3
"""Product catalogue with set-valued and hierarchical attributes.

Partially ordered domains show up naturally whenever an attribute is a *set*
(feature bundles ordered by containment) or a *hierarchy* (categories ordered
by specialization).  This example builds a laptop catalogue where

* ``missing_features`` is a set-valued attribute: a laptop lacking fewer
  features is preferred (containment partial order, Section VI-A's lattice),
* ``brand_tier`` is a small hierarchy of brand reputations, and
* price and weight are ordinary totally ordered attributes.

Run with:  python examples/product_catalog.py
"""

import random

from repro import (
    Dataset,
    PartialOrderAttribute,
    Schema,
    TotalOrderAttribute,
    compute_skyline,
)
from repro.order.builders import tree_order
from repro.order.lattice import subset_lattice

FEATURES = ("oled", "wifi6e", "thunderbolt")


def build_schema():
    # Subsets of missing features, ordered by containment: missing {} is best,
    # missing {oled} is better than missing {oled, wifi6e}, and so on.
    missing_features = subset_lattice(FEATURES)

    # Brand hierarchy: the flagship tier is preferred over both mid tiers,
    # every named tier is preferred over "unknown".
    brand_tier = tree_order(
        {
            "mid-consumer": "flagship",
            "mid-business": "flagship",
            "budget": "mid-consumer",
            "unknown": "budget",
        }
    )

    schema = Schema(
        [
            TotalOrderAttribute("price"),
            TotalOrderAttribute("weight_kg"),
            PartialOrderAttribute("missing_features", missing_features),
            PartialOrderAttribute("brand_tier", brand_tier),
        ]
    )
    return schema, missing_features, brand_tier


def build_catalogue(schema, missing_features, brand_tier, size=2500, seed=3):
    rng = random.Random(seed)
    tiers = list(brand_tier.values)
    rows = []
    for _ in range(size):
        missing = frozenset(f for f in FEATURES if rng.random() < 0.45)
        tier = rng.choice(tiers)
        base_price = 900
        base_price += 350 * (len(FEATURES) - len(missing))           # more features cost more
        base_price += {"flagship": 500, "mid-consumer": 150, "mid-business": 250}.get(tier, 0)
        price = max(250, int(rng.gauss(base_price, 120)))
        weight = round(max(0.8, rng.gauss(1.9 - 0.1 * len(missing), 0.3)), 2)
        rows.append((price, weight, missing, tier))
    return Dataset(schema, rows)


def describe(record, schema):
    values = record.as_dict(schema)
    missing = ", ".join(sorted(values["missing_features"])) or "none"
    return (
        f"${values['price']:5d}  {values['weight_kg']:4.2f} kg  "
        f"tier={values['brand_tier']:13s}  missing: {missing}"
    )


def main() -> None:
    schema, missing_features, brand_tier = build_schema()
    catalogue = build_catalogue(schema, missing_features, brand_tier)
    result = compute_skyline(catalogue, algorithm="stss")

    print(f"Catalogue of {len(catalogue)} laptops -> {len(result)} skyline offers")
    print("A sample of the skyline (no other laptop is cheaper, lighter, better "
          "equipped AND from a better tier at the same time):")
    for record_id in result.skyline_ids[:12]:
        print("  " + describe(catalogue[record_id], schema))

    # Sanity: the baselines find exactly the same offers.
    baseline = compute_skyline(catalogue, algorithm="sdc+")
    assert baseline.skyline_set == result.skyline_set
    print(f"\nsTSS needed {result.stats.dominance_checks} dominance checks; "
          f"SDC+ needed {baseline.stats.dominance_checks} "
          f"(and discarded {baseline.stats.false_hits_removed} false hits).")


if __name__ == "__main__":
    main()
