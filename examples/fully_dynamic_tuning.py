#!/usr/bin/env python3
"""Fully dynamic skylines: per-query preferences AND per-query ideal values.

Section V-B of the paper sketches the fully dynamic case: besides a partial
order for every PO attribute, the query names an *ideal value* for every TO
attribute, and dominance becomes "at least as close to the ideal everywhere,
preferred-or-equal on every PO attribute, strictly better somewhere".

The scenario here is server procurement: a buyer states the capacity they
actually need (over-provisioning is as bad as under-provisioning), their
budget sweet spot, and how they rank the vendors.  The same catalogue then
yields a different shortlist for every buyer profile, and repeating a profile
is answered from the engine's cache.

Run with:  python examples/fully_dynamic_tuning.py
"""

import random

from repro import (
    Dataset,
    PartialOrderAttribute,
    PartialOrderDAG,
    Schema,
    TotalOrderAttribute,
)
from repro.dynamic.fully_dynamic import FullyDynamicEngine

VENDORS = ["northwind", "contoso", "fabrikam", "adventure"]


def build_catalogue(size=2000, seed=19):
    vendors = PartialOrderDAG(VENDORS, [])
    schema = Schema(
        [
            TotalOrderAttribute("price_eur"),
            TotalOrderAttribute("ram_gb"),
            TotalOrderAttribute("power_watts"),
            PartialOrderAttribute("vendor", vendors),
        ]
    )
    rng = random.Random(seed)
    rows = []
    for _ in range(size):
        ram = rng.choice([32, 64, 128, 256, 512])
        watts = int(rng.gauss(150 + ram * 0.8, 30))
        price = int(rng.gauss(800 + ram * 9, 150))
        rows.append((max(price, 200), ram, max(watts, 80), rng.choice(VENDORS)))
    return Dataset(schema, rows), schema


BUYER_PROFILES = {
    "small web shop": {
        "ideals": {"price_eur": 1000.0, "ram_gb": 64.0, "power_watts": 150.0},
        "preferences": PartialOrderDAG(VENDORS, [("northwind", "adventure"), ("contoso", "adventure")]),
    },
    "ml research lab": {
        "ideals": {"price_eur": 4000.0, "ram_gb": 512.0, "power_watts": 400.0},
        "preferences": PartialOrderDAG(VENDORS, [("fabrikam", "contoso"), ("fabrikam", "northwind")]),
    },
    "edge deployment": {
        "ideals": {"price_eur": 600.0, "ram_gb": 32.0, "power_watts": 90.0},
        "preferences": PartialOrderDAG(VENDORS, []),
    },
}


def main() -> None:
    catalogue, schema = build_catalogue()
    engine = FullyDynamicEngine(catalogue)

    print(f"Catalogue of {len(catalogue)} server configurations.\n")
    for profile, query in BUYER_PROFILES.items():
        result = engine.query({"vendor": query["preferences"]}, query["ideals"])
        print(f"profile '{profile}': {len(result)} shortlisted configurations "
              f"(ideals: {query['ideals']})")
        for record_id in result.skyline_ids[:5]:
            print(f"    {catalogue[record_id].as_dict(schema)}")
        print()

    # Asking again with an equivalent preference specification hits the cache.
    repeat = BUYER_PROFILES["small web shop"]
    engine.query({"vendor": repeat["preferences"]}, repeat["ideals"])
    print(f"cache: {engine.hits} hit(s), {engine.misses} miss(es), "
          f"hit rate {engine.hit_rate:.0%}")


if __name__ == "__main__":
    main()
