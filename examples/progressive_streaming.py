#!/usr/bin/env python3
"""Progressiveness: how quickly each method delivers its first answers.

The paper's Figure 11 measures the time needed to retrieve a given percentage
of the skyline.  sTSS is *optimally progressive* — every point it examines and
finds non-dominated is final and can be shown to the user immediately —
whereas SDC+ can only release a stratum once the whole stratum has been
processed, producing the staircase the paper plots.

Run with:  python examples/progressive_streaming.py
"""

from repro.bench.runner import PROGRESS_FRACTIONS, StaticRunner
from repro.data.workloads import WorkloadSpec


def main() -> None:
    spec = WorkloadSpec(
        name="progressive-demo",
        distribution="anticorrelated",
        cardinality=1500,
        num_total_order=2,
        num_partial_order=2,
        dag_height=5,
        dag_density=0.8,
        seed=13,
    )
    runner = StaticRunner(spec)
    runs = runner.compare(("SDC+", "TSS"), progress_fractions=PROGRESS_FRACTIONS)

    print(f"Workload: {spec.describe()}")
    print(f"Skyline size: {runs['TSS'].skyline_size}\n")
    print("results retrieved | SDC+ time (s) | TSS time (s)")
    print("------------------+---------------+-------------")
    for percent in sorted(runs["TSS"].progressive_times):
        sdc_time = runs["SDC+"].progressive_times[percent]
        tss_time = runs["TSS"].progressive_times[percent]
        print(f"      {percent:3d} %        |    {sdc_time:8.4f}   |   {tss_time:8.4f}")

    half = 50
    if runs["TSS"].progressive_times[half] > 0:
        factor = runs["SDC+"].progressive_times[half] / runs["TSS"].progressive_times[half]
        print(f"\nAt 50% of the skyline, TSS is {factor:.1f}x faster than SDC+ on this workload.")


if __name__ == "__main__":
    main()
