#!/usr/bin/env python3
"""Flight reservation system: static skylines under different airline preferences.

Reproduces Table I of the paper end to end and then scales the same scenario
up to a synthetic catalogue of several thousand tickets, comparing sTSS with
the SDC+ baseline under the paper's cost model (5 ms per simulated IO).

Run with:  python examples/flight_reservation.py
"""

import random

from repro import (
    Dataset,
    PartialOrderAttribute,
    PartialOrderDAG,
    Schema,
    TotalOrderAttribute,
    compute_skyline,
)
from repro.index.pager import DiskSimulator

TICKET_NAMES = [f"p{i}" for i in range(1, 11)]

PAPER_TICKETS = [
    (1800, 0, "a"), (2000, 0, "a"), (1800, 0, "b"), (1200, 1, "b"), (1400, 1, "a"),
    (1000, 1, "b"), (1000, 1, "d"), (1800, 1, "c"), (500, 2, "d"), (1200, 2, "c"),
]


def build_schema(airline_dag: PartialOrderDAG) -> Schema:
    return Schema(
        [
            TotalOrderAttribute("price"),
            TotalOrderAttribute("stops"),
            PartialOrderAttribute("airline", airline_dag),
        ]
    )


def table_one() -> None:
    """Compute the two rows of Table I."""
    preference_sets = {
        "a better than b and c, everything better than d": PartialOrderDAG(
            "abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        ),
        "only preference: b better than a": PartialOrderDAG("abcd", [("b", "a")]),
    }
    print("== Table I: skyline tickets under different airline partial orders ==")
    for label, dag in preference_sets.items():
        dataset = Dataset(build_schema(dag), PAPER_TICKETS)
        result = compute_skyline(dataset, algorithm="stss")
        names = sorted((TICKET_NAMES[i] for i in result.skyline_ids), key=lambda n: int(n[1:]))
        print(f"  {label:55s} -> {', '.join(names)}")


def large_catalogue() -> None:
    """A bigger synthetic ticket catalogue comparing sTSS with SDC+."""
    rng = random.Random(7)
    airlines = PartialOrderDAG(
        ["star", "oneworld", "skyteam", "lowcost1", "lowcost2", "charter"],
        [
            ("star", "lowcost1"), ("star", "lowcost2"),
            ("oneworld", "lowcost1"), ("oneworld", "charter"),
            ("skyteam", "lowcost2"), ("lowcost1", "charter"), ("lowcost2", "charter"),
        ],
    )
    schema = build_schema(airlines)
    carriers = list(airlines.values)
    rows = []
    for _ in range(4000):
        stops = rng.choice([0, 1, 1, 2, 2, 3])
        # Anti-correlation between price and stops: direct flights cost more.
        price = int(rng.gauss(1500 - 350 * stops, 150))
        rows.append((max(price, 80), stops, rng.choice(carriers)))
    catalogue = Dataset(schema, rows)

    print("\n== 4 000-ticket catalogue: sTSS vs SDC+ (5 ms per IO) ==")
    for algorithm in ("stss", "sdc+"):
        disk = DiskSimulator()
        result = compute_skyline(catalogue, algorithm=algorithm, disk=disk, max_entries=32)
        stats = result.stats
        print(
            f"  {algorithm:5s}: skyline={len(result):4d}  "
            f"dominance checks={stats.dominance_checks:7d}  "
            f"IOs={stats.total_ios:4d}  total time={stats.total_seconds:6.3f}s "
            f"(cpu {100 * stats.cpu_seconds / stats.total_seconds:4.1f}%)"
        )


if __name__ == "__main__":
    table_one()
    large_catalogue()
