#!/usr/bin/env python3
"""Quickstart: skyline queries over a mix of totally and partially ordered attributes.

This walks through the paper's running example (Section I): a flight
reservation system where tickets are characterized by price, number of stops
(both totally ordered, smaller is better) and airline (partially ordered by
user preference).

Run with:  python examples/quickstart.py
"""

import os
import tempfile

from repro import (
    BatchQuery,
    Dataset,
    PartialOrderAttribute,
    PartialOrderDAG,
    Schema,
    TotalOrderAttribute,
    compute_skyline,
    open_dataset,
    pack,
    skyline_records,
)

# --------------------------------------------------------------------- #
# 1. Describe the partially ordered domain: airline preferences.
#    An edge (x, y) means "x is preferred over y"; unrelated values are
#    equally acceptable (incomparable).
# --------------------------------------------------------------------- #
airlines = PartialOrderDAG(
    ["a", "b", "c", "d"],
    [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
)

# --------------------------------------------------------------------- #
# 2. Describe the schema: two TO attributes plus the PO airline attribute.
# --------------------------------------------------------------------- #
schema = Schema(
    [
        TotalOrderAttribute("price"),
        TotalOrderAttribute("stops"),
        PartialOrderAttribute("airline", airlines),
    ]
)

# --------------------------------------------------------------------- #
# 3. Load the tickets of Figure 1(a).
# --------------------------------------------------------------------- #
tickets = Dataset(
    schema,
    [
        (1800, 0, "a"),  # p1
        (2000, 0, "a"),  # p2
        (1800, 0, "b"),  # p3
        (1200, 1, "b"),  # p4
        (1400, 1, "a"),  # p5
        (1000, 1, "b"),  # p6
        (1000, 1, "d"),  # p7
        (1800, 1, "c"),  # p8
        (500, 2, "d"),   # p9
        (1200, 2, "c"),  # p10
    ],
)


def main() -> None:
    # The one-liner: the skyline records under the default algorithm (sTSS).
    best = skyline_records(tickets)
    print("Skyline tickets (price, stops, airline):")
    for record in sorted(best, key=lambda r: r.id):
        print(f"  p{record.id + 1}: {record.as_dict(schema)}")

    # The full result object exposes statistics and the progressiveness log.
    result = compute_skyline(tickets, algorithm="stss")
    print(f"\nsTSS examined {result.stats.points_examined} points, "
          f"performed {result.stats.dominance_checks} dominance checks and "
          f"reported {len(result)} skyline tickets.")

    # Every algorithm in the library returns the same skyline.
    for algorithm in ("bnl", "sfs", "bbs+", "sdc", "sdc+", "bruteforce"):
        other = compute_skyline(tickets, algorithm=algorithm)
        assert other.skyline_set == result.skyline_set
    print("BNL, SFS, BBS+, SDC, SDC+ and brute force all agree with sTSS.")

    # Pack once, reopen instantly: the storage plane persists the encoded
    # dataset into a single mmap-able file, and the unified facade opens it
    # as a ready-to-query engine without re-encoding anything.
    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "tickets.rpro")
        info = pack(tickets, store_path)
        with open_dataset(store_path) as engine:
            packed = engine.run_query(BatchQuery("base"))
        assert set(packed.skyline_ids) == result.skyline_set
    print(f"Packed {info['rows']} tickets into a {info['bytes']}-byte store; "
          f"the mmap-opened engine reports the same skyline.")


if __name__ == "__main__":
    main()
