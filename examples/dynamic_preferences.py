#!/usr/bin/env python3
"""Dynamic skylines: per-user preference specifications answered from one index.

The partial order over a categorical attribute is rarely universal — every
user ranks airlines, brands or vendors differently.  dTSS (Section V) builds
its per-group R-trees once and answers each user's preference specification
with only a fresh topological sort, while the SDC+ baseline has to re-map the
data and rebuild its indexes per query.

Run with:  python examples/dynamic_preferences.py
"""

import random
import time

from repro import (
    Dataset,
    DTSSIndex,
    PartialOrderAttribute,
    PartialOrderDAG,
    Schema,
    TotalOrderAttribute,
    sdc_plus_dynamic_skyline,
)
from repro.dynamic.cache import DynamicQueryCache
from repro.index.pager import DiskSimulator

VENDORS = ["acme", "globex", "initech", "umbrella", "wayne", "stark"]


def build_dataset(size=3000, seed=11):
    # The data-side DAG is irrelevant for dynamic queries: every query brings
    # its own preferences.  An antichain (no preferences) is the natural spec.
    vendors = PartialOrderDAG(VENDORS, [])
    schema = Schema(
        [
            TotalOrderAttribute("price"),
            TotalOrderAttribute("delivery_days"),
            TotalOrderAttribute("defect_rate"),
            PartialOrderAttribute("vendor", vendors),
        ]
    )
    rng = random.Random(seed)
    rows = []
    for _ in range(size):
        price = int(rng.gauss(120, 40))
        delivery = rng.randint(1, 14)
        defects = round(abs(rng.gauss(0.02, 0.02)), 4)
        rows.append((max(price, 5), delivery, defects, rng.choice(VENDORS)))
    return Dataset(schema, rows)


def user_preferences() -> dict[str, PartialOrderDAG]:
    """Three users with very different (and conflicting) vendor preferences."""
    return {
        "quality-first": PartialOrderDAG(
            VENDORS, [("stark", "acme"), ("stark", "globex"), ("wayne", "umbrella"), ("acme", "initech")]
        ),
        "anyone-but-umbrella": PartialOrderDAG(
            VENDORS, [(v, "umbrella") for v in VENDORS if v != "umbrella"]
        ),
        "strict-ranking": PartialOrderDAG(
            VENDORS, list(zip(["acme", "globex", "initech", "wayne", "stark", "umbrella"],
                              ["globex", "initech", "wayne", "stark", "umbrella", "acme"][:-1])),
        ),
    }


def main() -> None:
    dataset = build_dataset()
    index = DTSSIndex(dataset, precompute_local_skylines=True)
    cache = DynamicQueryCache(capacity=16)

    print(f"Catalogue: {len(dataset)} offers from {len(VENDORS)} vendors; "
          f"{index.grouped.num_groups} pre-built vendor groups.\n")

    for user, preference in user_preferences().items():
        cached = cache.get({"vendor": preference}, ["vendor"])
        started = time.perf_counter()
        if cached is None:
            result = index.query({"vendor": preference}, use_local_skylines=True)
            cache.put({"vendor": preference}, ["vendor"], result)
        else:
            result = cached
        elapsed = time.perf_counter() - started

        baseline_disk = DiskSimulator()
        baseline = sdc_plus_dynamic_skyline(dataset, {"vendor": preference}, disk=baseline_disk)

        print(f"user '{user}':")
        print(f"  dTSS      : {len(result):4d} skyline offers in {elapsed * 1000:6.1f} ms "
              f"({'cache hit' if cached is not None else 'computed'})")
        print(f"  SDC+ redo : {len(baseline):4d} skyline offers, "
              f"{baseline.stats.total_ios} IOs charged -> "
              f"{baseline.stats.total_seconds:6.3f} s simulated total time")
        assert frozenset(result.skyline_ids) == frozenset(baseline.skyline_ids)

    # Asking the same question twice is free.
    repeat = user_preferences()["quality-first"]
    assert cache.get({"vendor": repeat}, ["vendor"]) is not None
    print("\nRepeated preference specifications are answered from the cache.")


if __name__ == "__main__":
    main()
