"""Table I: skyline tickets of the flight example under two airline partial orders."""

from repro.bench.experiments import table1_flights


def test_table1_flight_example(benchmark, bench_profile, save_table, run_once):
    table = run_once(benchmark, table1_flights, bench_profile)
    save_table(table)
    assert table.rows[0]["skyline tickets"] == "p1, p5, p6, p9, p10"
    assert table.rows[1]["skyline tickets"] == "p3, p6, p7, p8, p9, p10"
