"""Figure 11: progressiveness — time to retrieve a given fraction of the skyline."""

import pytest

from repro.bench.experiments import static_progressiveness
from repro.bench.runner import PROGRESS_FRACTIONS


def test_fig11_series(benchmark, bench_profile, save_table, run_once):
    table = run_once(benchmark, static_progressiveness, bench_profile)
    save_table(table)
    assert len(table.rows) == 2 * len(PROGRESS_FRACTIONS)
    for distribution in ("independent", "anticorrelated"):
        rows = [r for r in table.rows if r["distribution"] == distribution]
        tss_times = [r["TSS time (s)"] for r in rows]
        sdc_times = [r["SDC+ time (s)"] for r in rows]
        # Retrieval times are non-decreasing in the fraction retrieved.
        assert tss_times == sorted(tss_times)
        assert sdc_times == sorted(sdc_times)
        # Shape check: SDC+ releases results per stratum, so its curve has
        # plateaus (consecutive percentages reached at the same time), whereas
        # TSS streams results and finishes the full skyline sooner.
        plateaus = sum(1 for a, b in zip(sdc_times, sdc_times[1:]) if b - a < 1e-3)
        assert plateaus >= 1
        assert tss_times[-1] <= sdc_times[-1]


@pytest.mark.parametrize("distribution", ["independent", "anticorrelated"])
def test_fig11_time_to_first_half(benchmark, static_default_runner, distribution):
    runner = static_default_runner[distribution]

    def first_half():
        run = runner.run("TSS", progress_fractions=(0.5,))
        return run.progressive_times[50]

    elapsed = benchmark.pedantic(first_half, rounds=1, iterations=1)
    assert elapsed >= 0.0
