"""Ablations of the design choices called out in DESIGN.md.

* Main-memory virtual-point R-tree vs plain skyline-list t-dominance checks
  (Section IV-B, second optimization).
* Dyadic-range pre-computation vs on-the-fly MBB interval sets (Section IV-B,
  first optimization).
* dTSS with vs without per-group local-skyline pre-computation (Section V-B).
"""

import pytest

from repro.bench.experiments import ablation_dtss_precompute, ablation_virtual_rtree
from repro.core.stss import stss_skyline


def test_ablation_virtual_rtree_series(benchmark, bench_profile, save_table, run_once):
    table = run_once(benchmark, ablation_virtual_rtree, bench_profile)
    save_table(table)
    assert len(table.rows) == 2


def test_ablation_dtss_precompute_series(benchmark, bench_profile, save_table, run_once):
    table = run_once(benchmark, ablation_dtss_precompute, bench_profile)
    save_table(table)
    assert len(table.rows) == 2
    for row in table.rows:
        # The local-skyline path examines no more points than the full traversal.
        assert row["dTSS+local points examined"] <= row["dTSS points examined"]


@pytest.fixture(scope="module")
def anticorrelated_dataset(bench_profile):
    _, dataset = bench_profile.static_spec("anticorrelated").build()
    return dataset


@pytest.mark.parametrize(
    "label, options",
    [
        ("list-scan", {"use_virtual_rtree": False, "use_dyadic_cache": False}),
        ("dyadic-only", {"use_virtual_rtree": False, "use_dyadic_cache": True}),
        ("virtual-rtree", {"use_virtual_rtree": True, "use_dyadic_cache": True}),
    ],
)
def test_ablation_stss_check_strategies(benchmark, anticorrelated_dataset, label, options):
    result = benchmark.pedantic(
        stss_skyline, args=(anticorrelated_dataset,), kwargs=options, rounds=3, iterations=1
    )
    assert len(result) > 0
