"""Figure 7: static total time vs data set cardinality (Independent / Anti-correlated).

The sweep regenerates the figure's series (written to benchmarks/results/);
the per-method benchmarks time one query each at the profile's default
setting so the pytest-benchmark summary shows the TSS vs SDC+ gap directly.
"""

import pytest

from repro.bench.experiments import static_cardinality


def test_fig07_series(benchmark, bench_profile, save_table, run_once):
    table = run_once(benchmark, static_cardinality, bench_profile)
    save_table(table)
    assert len(table.rows) == 2 * len(bench_profile.cardinalities)
    # Shape check: TSS never loses badly, and wins on the largest anti-correlated setting.
    last_anti = [r for r in table.rows if r["distribution"] == "anticorrelated"][-1]
    assert last_anti["TSS total (s)"] <= last_anti["SDC+ total (s)"] * 1.2


@pytest.mark.parametrize("distribution", ["independent", "anticorrelated"])
@pytest.mark.parametrize("method", ["TSS", "SDC+"])
def test_fig07_default_setting(benchmark, static_default_runner, distribution, method):
    runner = static_default_runner[distribution]
    run = benchmark.pedantic(runner.run, args=(method,), rounds=3, iterations=1)
    assert run.skyline_size > 0
